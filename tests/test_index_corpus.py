"""Corpus-scale read path: mmap float32 shards, persisted LSH, batched
top-k.

Covers the format-2 store (configurable dtype, memory-mapped ``.npy``
vector shards, zero-copy :class:`ShardedMatrix` view, v1 migration),
argpartition top-k selection (tie-for-tie identical to the lexsort
reference), batched multi-query scoring, and the persisted/incremental
LSH life cycle with its re-projection instrumentation counter.
"""

import json

import numpy as np
import pytest

from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.index.ann import (
    BruteForceIndex,
    LSHIndex,
    select_top_k,
)
from repro.index.search import SearchService
from repro.index.store import (
    ANN_STATE_NAME,
    FORMAT_VERSION,
    MANIFEST_NAME,
    EmbeddingStore,
    ShardedMatrix,
    StoreError,
)


def _encoding(i: int, dim: int = 8, vector=None) -> FunctionEncoding:
    rng = np.random.default_rng(i)
    return FunctionEncoding(
        name=f"sub_{i:x}",
        arch="x86",
        binary_name=f"bin-{i % 3}",
        vector=rng.normal(size=dim) if vector is None else vector,
        callee_count=i % 5,
        ast_size=10 + i,
    )


def _fill(store: EmbeddingStore, n: int, dim: int = 8) -> None:
    for i in range(n):
        store.add(_encoding(i, dim), image_id=f"img/{i % 4}")
    store.flush()


@pytest.fixture(scope="module")
def corpus_model():
    return Asteria(AsteriaConfig(hidden_dim=16, seed=4))


@pytest.fixture(scope="module")
def clustered():
    """Clustered vectors + aligned callee counts + one query per cluster."""
    rng = np.random.default_rng(11)
    dim = 16
    centers = rng.normal(size=(5, dim)) * 2.0
    vectors = np.concatenate(
        [c + rng.normal(scale=0.15, size=(24, dim)) for c in centers]
    )
    counts = np.repeat(np.arange(5, dtype=np.int64), 24)
    queries = [
        FunctionEncoding(
            name=f"q{i}", arch="x86", binary_name="query",
            vector=centers[i] + rng.normal(scale=0.1, size=dim),
            callee_count=i,
        )
        for i in range(5)
    ]
    return vectors, counts, queries


def _same_ranking(a, b, rel=1e-5):
    """Same rows in the same order; scores equal to float noise."""
    assert [n.row for n in a] == [n.row for n in b]
    assert [n.score for n in a] == pytest.approx(
        [n.score for n in b], rel=rel, abs=1e-7
    )


# -- ShardedMatrix ---------------------------------------------------------


class TestShardedMatrix:
    def test_view_concatenates_blocks(self):
        a = np.arange(12, dtype=np.float32).reshape(4, 3)
        b = np.arange(12, 21, dtype=np.float32).reshape(3, 3)
        view = ShardedMatrix(3, np.float32, [a, b])
        assert view.shape == (7, 3)
        assert len(view) == 7
        assert np.array_equal(np.asarray(view), np.concatenate([a, b]))

    def test_row_and_fancy_indexing_cross_shards(self):
        blocks = [np.full((2, 2), i, dtype=np.float64) for i in range(4)]
        view = ShardedMatrix(2, np.float64, blocks)
        assert view[5][0] == 2.0
        taken = view.take([0, 3, 7, 3])
        assert taken.shape == (4, 2)
        assert list(taken[:, 0]) == [0.0, 1.0, 3.0, 1.0]
        assert np.array_equal(view[1:4], np.asarray(view)[1:4])

    def test_append_extends_without_copy(self):
        a = np.ones((2, 2))
        view = ShardedMatrix(2, np.float64, [a])
        view.append_block(np.zeros((3, 2)))
        assert view.shape == (5, 2)
        # the first block is the exact same object: no re-stack happened
        assert next(view.iter_blocks())[1] is a

    def test_block_shape_checked(self):
        view = ShardedMatrix(4, np.float32)
        with pytest.raises(StoreError, match="does not fit"):
            view.append_block(np.zeros((2, 3)))

    def test_take_wraps_negative_and_rejects_out_of_range(self):
        blocks = [np.arange(8, dtype=np.float64).reshape(4, 2)]
        view = ShardedMatrix(2, np.float64, blocks)
        assert np.array_equal(view.take([-1])[0], blocks[0][3])
        assert np.array_equal(view[[-4]][0], blocks[0][0])
        with pytest.raises(IndexError, match="10 out of range"):
            view.take([0, 10])
        with pytest.raises(IndexError, match="-5 out of range"):
            view.take([-5])

    def test_snapshot_does_not_grow_with_source(self):
        view = ShardedMatrix(2, np.float64, [np.ones((2, 2))])
        frozen = view.snapshot()
        view.append_block(np.zeros((3, 2)))
        assert view.shape == (5, 2)
        assert frozen.shape == (2, 2)

    def test_resident_accounting_ignores_mmaps(self, tmp_path):
        heap = np.ones((4, 2))
        np.save(tmp_path / "b.npy", np.zeros((4, 2)))
        mapped = np.load(tmp_path / "b.npy", mmap_mode="r")
        view = ShardedMatrix(2, np.float64, [heap, mapped])
        assert view.resident_nbytes == heap.nbytes
        assert view.mmapped


# -- dtype round-trips & mmap ---------------------------------------------


class TestStoreDtype:
    def test_default_dtype_is_float32(self, tmp_path):
        store = EmbeddingStore.create(tmp_path / "idx", dim=8)
        assert store.dtype == np.float32
        _fill(store, 5)
        reopened = EmbeddingStore.open(tmp_path / "idx")
        assert reopened.dtype == np.float32
        assert reopened.vectors().dtype == np.float32

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_round_trip_within_cast_tolerance(self, tmp_path, dtype):
        store = EmbeddingStore.create(tmp_path / "idx", dim=8, dtype=dtype)
        originals = [_encoding(i) for i in range(7)]
        for encoding in originals:
            store.add(encoding)
        store.flush()
        reopened = EmbeddingStore.open(tmp_path / "idx")
        for i, original in enumerate(originals):
            got = reopened.vector_at(i)
            if dtype == "float64":
                assert np.array_equal(got, original.vector)
            else:
                np.testing.assert_allclose(
                    got, original.vector, rtol=1e-6, atol=1e-7
                )

    def test_unknown_dtype_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="dtype"):
            EmbeddingStore.create(tmp_path / "idx", dim=8, dtype="float16")

    def test_mmap_open_is_lazy_and_resident_free(self, tmp_path):
        store = EmbeddingStore.create(tmp_path / "idx", dim=8, shard_size=4)
        _fill(store, 12)
        reopened = EmbeddingStore.open(tmp_path / "idx")
        view = reopened.vectors()
        assert view.mmapped
        assert view.resident_nbytes == 0
        footprint = reopened.memory_footprint()
        assert footprint["mmap"]
        assert footprint["dtype"] == "float32"
        assert footprint["vector_bytes"] == 12 * 8 * 4

    def test_float32_resident_memory_at_least_4x_below_float64(
        self, tmp_path
    ):
        dim, n = 32, 64
        in_mem = EmbeddingStore.in_memory(dim=dim, dtype="float64")
        durable = EmbeddingStore.create(tmp_path / "idx32", dim=dim)
        for i in range(n):
            in_mem.add(_encoding(i, dim))
            durable.add(_encoding(i, dim))
        in_mem.flush()
        durable.flush()
        in_mem.vectors()
        baseline = in_mem.memory_footprint()["resident_bytes"]
        assert baseline >= n * dim * 8

        mapped = EmbeddingStore.open(tmp_path / "idx32")
        mapped.vectors()
        mapped.callee_counts()
        resident = mapped.memory_footprint()["resident_bytes"]
        # float32 halves the bytes and mmap keeps vectors off the heap:
        # well past the required 4x drop
        assert resident * 4 <= baseline

    def test_score_equivalence_float32_vs_float64(
        self, tmp_path, corpus_model, clustered
    ):
        vectors, counts, queries = clustered
        stores = {}
        for dtype in ("float32", "float64"):
            store = EmbeddingStore.create(
                tmp_path / dtype, dim=16, shard_size=32, dtype=dtype
            )
            for i in range(len(vectors)):
                store.add(_encoding(i, 16, vector=vectors[i]))
            store.flush()
            stores[dtype] = EmbeddingStore.open(tmp_path / dtype)
        idx32 = BruteForceIndex(
            corpus_model, stores["float32"].vectors(),
            stores["float32"].callee_counts(),
        )
        idx64 = BruteForceIndex(
            corpus_model, stores["float64"].vectors(),
            stores["float64"].callee_counts(),
        )
        for query in queries:
            a = idx32.top_k(query, k=10)
            b = idx64.top_k(query, k=10)
            assert [n.row for n in a] == [n.row for n in b]
            assert [n.score for n in a] == pytest.approx(
                [n.score for n in b], rel=1e-4, abs=1e-5
            )

    def test_mmap_vs_in_memory_equivalence(
        self, tmp_path, corpus_model, clustered
    ):
        vectors, counts, queries = clustered
        durable = EmbeddingStore.create(
            tmp_path / "idx", dim=16, shard_size=16
        )
        ephemeral = EmbeddingStore.in_memory(dim=16, shard_size=16)
        for i in range(len(vectors)):
            durable.add(_encoding(i, 16, vector=vectors[i]))
            ephemeral.add(_encoding(i, 16, vector=vectors[i]))
        durable.flush()
        ephemeral.flush()
        mapped = EmbeddingStore.open(tmp_path / "idx")
        assert mapped.vectors().mmapped
        assert not ephemeral.vectors().mmapped
        idx_m = BruteForceIndex(
            corpus_model, mapped.vectors(), mapped.callee_counts()
        )
        idx_e = BruteForceIndex(
            corpus_model, ephemeral.vectors(), ephemeral.callee_counts()
        )
        for query in queries:
            # identical bytes on both sides -> identical scores
            a, b = idx_m.top_k(query, k=10), idx_e.top_k(query, k=10)
            assert [(n.row, n.score) for n in a] \
                == [(n.row, n.score) for n in b]


# -- incremental append ----------------------------------------------------


class TestIncrementalAppend:
    def test_flush_appends_blocks_without_restacking(self):
        store = EmbeddingStore.in_memory(dim=8, shard_size=4)
        _fill(store, 8)
        view = store.vectors()
        first_block = next(view.iter_blocks())[1]
        counts = store.callee_counts()
        for i in range(8, 12):
            store.add(_encoding(i))
        store.flush()
        assert store.vectors() is view  # same view object, extended
        assert view.shape == (12, 8)
        assert next(view.iter_blocks())[1] is first_block  # untouched
        assert store.callee_counts().shape == (12,)
        assert np.array_equal(store.callee_counts()[:8], counts)

    def test_index_stays_consistent_when_store_grows(self, corpus_model):
        # an index snapshots the view at construction: rows flushed
        # afterwards must not leak into (or crash) its scoring
        store = EmbeddingStore.in_memory(dim=16, shard_size=8)
        _fill(store, 10, dim=16)
        index = BruteForceIndex(
            corpus_model, store.vectors(), store.callee_counts()
        )
        assert len(index) == 10
        for i in range(10, 15):
            store.add(_encoding(i, 16))
        store.flush()
        assert len(store) == 15
        assert len(index) == 10  # the snapshot did not grow
        query = _encoding(99, 16)
        neighbors = index.top_k(query, k=20)
        assert len(neighbors) == 10
        assert all(n.row < 10 for n in neighbors)

    def test_append_after_reopen_preserves_rows(self, tmp_path):
        store = EmbeddingStore.create(tmp_path / "idx", dim=8, shard_size=4)
        _fill(store, 6)
        reopened = EmbeddingStore.open(tmp_path / "idx")
        before = np.asarray(reopened.vectors()).copy()
        for i in range(6, 10):
            reopened.add(_encoding(i))
        reopened.flush()
        final = EmbeddingStore.open(tmp_path / "idx")
        assert len(final) == 10
        assert np.array_equal(np.asarray(final.vectors())[:6], before)
        assert final.metadata_at(9).name == _encoding(9).name


# -- argpartition selection ------------------------------------------------


class TestSelectTopK:
    def test_matches_lexsort_with_ties(self):
        scores = np.array([0.5, 0.9, 0.9, 0.1, 0.9, 0.5, 0.9])
        rows = np.arange(scores.size)
        for k in (1, 2, 3, 4, 5, 7, 10, None):
            want = np.lexsort((rows, -scores))
            want = want[: scores.size if k is None else k]
            got = select_top_k(scores, rows, k)
            assert list(got) == list(want), k

    def test_matches_lexsort_fuzz(self):
        rng = np.random.default_rng(3)
        for trial in range(50):
            n = int(rng.integers(1, 60))
            # quantised scores force plenty of exact ties
            scores = rng.integers(0, 5, size=n) / 4.0
            rows = rng.permutation(n * 2)[:n]
            k = int(rng.integers(1, n + 2))
            want = np.lexsort((rows, -scores))[:k]
            got = select_top_k(scores, rows, k)
            assert list(got) == list(want)

    def test_k_zero_and_empty(self):
        assert select_top_k(np.array([1.0]), np.array([0]), 0).size == 0

    def test_index_top_k_ties_break_by_row(self, corpus_model):
        # identical vectors -> identical scores -> row order decides
        vector = np.ones(16)
        vectors = np.stack([vector] * 6)
        counts = np.zeros(6, dtype=np.int64)
        index = BruteForceIndex(corpus_model, vectors, counts)
        query = FunctionEncoding(
            name="q", arch="x86", binary_name="b", vector=vector,
            callee_count=0,
        )
        neighbors = index.top_k(query, k=4)
        assert [n.row for n in neighbors] == [0, 1, 2, 3]


# -- batched multi-query top-k ---------------------------------------------


class TestTopKBatch:
    def test_brute_force_batch_matches_serial(self, corpus_model, clustered):
        vectors, counts, queries = clustered
        index = BruteForceIndex(corpus_model, vectors, counts)
        serial = [index.top_k(q, k=6) for q in queries]
        batched = index.top_k_batch(queries, k=6)
        for a, b in zip(serial, batched):
            _same_ranking(a, b)

    def test_lsh_batch_matches_serial(self, corpus_model, clustered):
        vectors, counts, queries = clustered
        index = LSHIndex(corpus_model, vectors, counts, seed=5)
        serial = [index.top_k(q, k=6) for q in queries]
        batched = index.top_k_batch(queries, k=6)
        for a, b in zip(serial, batched):
            _same_ranking(a, b)

    def test_batch_threshold_and_empty(self, corpus_model, clustered):
        vectors, counts, queries = clustered
        index = BruteForceIndex(corpus_model, vectors, counts)
        batched = index.top_k_batch(queries, k=None, threshold=0.5)
        for q, neighbors in zip(queries, batched):
            reference = index.top_k(q, k=None, threshold=0.5)
            _same_ranking(reference, neighbors)
        assert index.top_k_batch([], k=5) == []

    def test_batch_on_empty_index(self, corpus_model, clustered):
        _vectors, _counts, queries = clustered
        index = BruteForceIndex(
            corpus_model, np.zeros((0, 16)), np.zeros(0, dtype=np.int64)
        )
        assert index.top_k_batch(queries, k=5) == [[] for _ in queries]

    def test_service_query_batch_matches_query(
        self, corpus_model, clustered
    ):
        vectors, counts, queries = clustered
        store = EmbeddingStore.in_memory(dim=16, shard_size=32)
        for i in range(len(vectors)):
            store.add(
                _encoding(i, 16, vector=vectors[i]), image_id="img/a"
            )
        store.flush()
        service = SearchService(corpus_model, store)
        serial = [service.query(q, top_k=5) for q in queries]
        batched = service.query_batch(queries, top_k=5)
        for a, b in zip(serial, batched):
            assert [h.row for h in a] == [h.row for h in b]
            assert [h.name for h in a] == [h.name for h in b]
            assert [h.score for h in a] == pytest.approx(
                [h.score for h in b], rel=1e-5, abs=1e-7
            )


# -- persisted LSH ---------------------------------------------------------


class TestPersistedLSH:
    def _store(self, root, clustered) -> EmbeddingStore:
        vectors, _counts, _queries = clustered
        store = EmbeddingStore.create(root, dim=16, shard_size=32)
        for i in range(len(vectors)):
            store.add(_encoding(i, 16, vector=vectors[i]))
        store.flush()
        return EmbeddingStore.open(root)

    def test_persisted_equals_rebuilt_without_projection(
        self, tmp_path, corpus_model, clustered
    ):
        _vectors, _counts, queries = clustered
        store = self._store(tmp_path / "idx", clustered)
        built = LSHIndex(
            corpus_model, store.vectors(), store.callee_counts(), seed=7
        )
        assert built.rows_projected == len(store)
        assert not built.loaded_from_state
        params, arrays = built.state_dict()
        store.write_ann_state(params, arrays)
        assert (tmp_path / "idx" / ANN_STATE_NAME).exists()

        reopened = EmbeddingStore.open(tmp_path / "idx")
        restored = LSHIndex(
            corpus_model, reopened.vectors(), reopened.callee_counts(),
            seed=7, state=reopened.read_ann_state(),
        )
        # the whole point: zero corpus rows re-projected on open
        assert restored.loaded_from_state
        assert restored.rows_projected == 0
        for query in queries:
            a = built.top_k(query, k=8)
            b = restored.top_k(query, k=8)
            assert [n.row for n in a] == [n.row for n in b]

    def test_mismatched_params_force_rebuild(
        self, tmp_path, corpus_model, clustered
    ):
        store = self._store(tmp_path / "idx", clustered)
        built = LSHIndex(
            corpus_model, store.vectors(), store.callee_counts(), seed=7
        )
        store.write_ann_state(*built.state_dict())
        reopened = EmbeddingStore.open(tmp_path / "idx")
        other_seed = LSHIndex(
            corpus_model, reopened.vectors(), reopened.callee_counts(),
            seed=8, state=reopened.read_ann_state(),
        )
        assert not other_seed.loaded_from_state
        assert other_seed.rows_projected == len(store)

    def test_incremental_extend_projects_only_new_rows(
        self, tmp_path, corpus_model, clustered
    ):
        vectors, _counts, queries = clustered
        store = self._store(tmp_path / "idx", clustered)
        built = LSHIndex(
            corpus_model, store.vectors(), store.callee_counts(), seed=7
        )
        store.write_ann_state(*built.state_dict())
        state = store.read_ann_state()

        for i in range(20):
            store.add(_encoding(1000 + i, 16))
        store.flush()
        extended = LSHIndex(
            corpus_model, store.vectors(), store.callee_counts(),
            seed=7, state=state,
        )
        assert extended.loaded_from_state
        assert extended.rows_projected == 20
        rebuilt = LSHIndex(
            corpus_model, store.vectors(), store.callee_counts(), seed=7
        )
        for query in queries:
            assert [n.row for n in extended.top_k(query, k=8)] \
                == [n.row for n in rebuilt.top_k(query, k=8)]

    def test_service_round_trips_lsh_state(
        self, tmp_path, corpus_model, clustered
    ):
        _vectors, _counts, queries = clustered
        store = self._store(tmp_path / "idx", clustered)
        service = SearchService(
            corpus_model, store, backend="lsh", seed=3
        )
        first = service.index()
        assert first.rows_projected == len(store)
        manifest = json.loads(
            (tmp_path / "idx" / MANIFEST_NAME).read_text()
        )
        assert manifest["ann"]["kind"] == "lsh"
        assert manifest["ann"]["n_rows"] == len(store)

        reopened = SearchService(
            corpus_model, EmbeddingStore.open(tmp_path / "idx"),
            backend="lsh", seed=3,
        )
        second = reopened.index()
        assert second.loaded_from_state
        assert second.rows_projected == 0
        for query in queries:
            a = [h.row for h in service.query(query, top_k=8)]
            b = [h.row for h in reopened.query(query, top_k=8)]
            assert a == b


# -- v1 migration ----------------------------------------------------------


class TestV1Migration:
    def _v1_store(self, root, n: int = 10) -> None:
        store = EmbeddingStore.create(
            root, dim=8, shard_size=4, format_version=1
        )
        _fill(store, n)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == 1
        assert (root / "shard-00000.npz").exists()

    def test_v1_store_auto_migrates_on_open(self, tmp_path):
        root = tmp_path / "idx"
        self._v1_store(root)
        expected = [_encoding(i).vector for i in range(10)]
        migrated = EmbeddingStore.open(root)
        assert migrated.format_version == FORMAT_VERSION
        assert migrated.dtype == np.float64  # migration keeps the bytes
        assert migrated.vectors().mmapped
        assert np.array_equal(np.asarray(migrated.vectors()), expected)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert (root / "shard-00000.npy").exists()
        # metadata survived
        assert migrated.metadata_at(3).name == _encoding(3).name
        assert migrated.metadata_at(3).image_id == "img/3"

    def test_migration_reclaims_legacy_shards(self, tmp_path):
        root = tmp_path / "idx"
        self._v1_store(root)
        EmbeddingStore.open(root)
        # the float64 bytes now live in .npy shards; the all-in-one npz
        # files are gone instead of doubling the store size forever
        assert not list(root.glob("shard-*[0-9].npz"))
        assert len(list(root.glob("shard-*.npy"))) == 3

    def test_corrupt_v1_shard_falls_back_to_read_compat(self, tmp_path):
        root = tmp_path / "idx"
        self._v1_store(root)
        (root / "shard-00001.npz").write_bytes(b"not a zipfile")
        compat = EmbeddingStore.open(root)  # must not raise
        assert compat.format_version == 1
        # intact shards still serve; the corrupt npz files were kept
        assert compat.metadata_at(0).name == _encoding(0).name
        assert (root / "shard-00000.npz").exists()

    def test_failed_migration_reverts_to_v1_reads(
        self, tmp_path, monkeypatch
    ):
        # shards migrate fine but the manifest write dies (e.g. full
        # disk): the store must keep reading the untouched v1 layout
        root = tmp_path / "idx"
        self._v1_store(root)
        monkeypatch.setattr(
            EmbeddingStore, "_write_manifest",
            lambda self: (_ for _ in ()).throw(OSError("disk full")),
        )
        compat = EmbeddingStore.open(root)
        monkeypatch.undo()
        assert compat.format_version == 1
        assert compat.metadata_at(7).name == _encoding(7).name
        assert np.array_equal(compat.vector_at(7), _encoding(7).vector)

    def test_v1_read_compat_without_migration(self, tmp_path):
        root = tmp_path / "idx"
        self._v1_store(root)
        compat = EmbeddingStore.open(root, migrate=False)
        assert compat.format_version == 1
        assert not compat.vectors().mmapped
        assert np.array_equal(
            np.asarray(compat.vectors()),
            [_encoding(i).vector for i in range(10)],
        )

    def test_migrated_store_appends_as_v2(self, tmp_path):
        root = tmp_path / "idx"
        self._v1_store(root)
        migrated = EmbeddingStore.open(root)
        for i in range(10, 14):
            migrated.add(_encoding(i))
        migrated.flush()
        final = EmbeddingStore.open(root)
        assert len(final) == 14
        assert (root / "shard-00003.npy").exists()
