"""Tests for the embedding index subsystem (store, ANN backends, service)."""

import json

import numpy as np
import pytest

from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.evalsuite.vulnsearch import (
    VulnerabilitySearch,
    build_firmware_dataset,
)
from repro.index.ann import BruteForceIndex, LSHIndex, make_index
from repro.index.search import SearchService
from repro.index.store import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    EmbeddingStore,
    StoreError,
)


def _encoding(i: int, dim: int = 8, arch: str = "x86") -> FunctionEncoding:
    rng = np.random.default_rng(i)
    return FunctionEncoding(
        name=f"sub_{i:x}",
        arch=arch,
        binary_name=f"bin-{i % 3}",
        vector=rng.normal(size=dim),
        callee_count=i % 5,
        ast_size=10 + i,
    )


def _fill(store: EmbeddingStore, n: int, dim: int = 8) -> None:
    for i in range(n):
        store.add(_encoding(i, dim), image_id=f"img/{i % 4}")
    store.flush()


class TestEmbeddingStore:
    def test_create_flush_reopen_roundtrip(self, tmp_path):
        root = tmp_path / "idx"
        store = EmbeddingStore.create(root, dim=8, shard_size=4)
        _fill(store, 10)
        assert len(store) == 10
        assert store.n_shards == 3  # 4 + 4 + 2

        reopened = EmbeddingStore.open(root)
        assert len(reopened) == 10
        assert reopened.dim == 8
        assert np.array_equal(reopened.vectors(), store.vectors())
        assert reopened.vectors().dtype == store.vectors().dtype
        for row in range(10):
            assert reopened.metadata_at(row) == store.metadata_at(row)
            assert np.array_equal(
                reopened.vector_at(row), store.vector_at(row)
            )

    def test_manifest_is_versioned(self, tmp_path):
        root = tmp_path / "idx"
        store = EmbeddingStore.create(root, dim=4)
        _fill(store, 3, dim=4)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        assert manifest["n_rows"] == 3
        assert [s["n_rows"] for s in manifest["shards"]] == [3]

    def test_future_version_rejected(self, tmp_path):
        root = tmp_path / "idx"
        EmbeddingStore.create(root, dim=4)
        manifest_path = root / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="format_version"):
            EmbeddingStore.open(root)

    def test_create_refuses_existing(self, tmp_path):
        root = tmp_path / "idx"
        EmbeddingStore.create(root, dim=4)
        with pytest.raises(StoreError, match="already exists"):
            EmbeddingStore.create(root, dim=4)

    def test_append_after_reopen(self, tmp_path):
        root = tmp_path / "idx"
        store = EmbeddingStore.create(root, dim=8, shard_size=4)
        _fill(store, 5)
        store = EmbeddingStore.open(root)
        store.add(_encoding(99))
        store.flush()
        assert len(store) == 6
        assert EmbeddingStore.open(root).metadata_at(5).name == "sub_63"

    def test_lazy_shard_loading(self, tmp_path):
        root = tmp_path / "idx"
        store = EmbeddingStore.create(root, dim=8, shard_size=2)
        _fill(store, 6)
        reopened = EmbeddingStore.open(root)
        assert not reopened._meta_cache
        reopened.metadata_at(5)  # last shard's metadata only
        assert set(reopened._meta_cache) == {2}

    def test_dim_mismatch_rejected(self, tmp_path):
        store = EmbeddingStore.create(tmp_path / "idx", dim=8)
        with pytest.raises(StoreError, match="shape"):
            store.add(_encoding(0, dim=5))

    def test_in_memory_store(self):
        store = EmbeddingStore.in_memory(dim=8, shard_size=3)
        _fill(store, 7)
        assert len(store) == 7
        assert store.vectors().shape == (7, 8)
        assert store.metadata_at(3).image_id == "img/3"

    def test_unflushed_rows_counted_not_visible(self):
        store = EmbeddingStore.in_memory(dim=8)
        store.add(_encoding(0))
        assert len(store) == 1
        assert store.n_flushed == 0
        store.flush()
        assert store.n_flushed == 1

    def test_encoding_reconstruction(self):
        # float64 stores round-trip vectors bit-exactly; the default
        # float32 round-trip (cast tolerance) is covered in
        # test_index_corpus.py
        store = EmbeddingStore.in_memory(dim=8, dtype="float64")
        original = _encoding(11)
        store.add(original, image_id="img/x")
        store.flush()
        rebuilt = store.metadata_at(0).encoding(store.vector_at(0))
        assert rebuilt.name == original.name
        assert rebuilt.arch == original.arch
        assert rebuilt.binary_name == original.binary_name
        assert rebuilt.callee_count == original.callee_count
        assert rebuilt.ast_size == original.ast_size
        assert np.array_equal(rebuilt.vector, original.vector)


@pytest.fixture(scope="module")
def corpus_model():
    return Asteria(AsteriaConfig(hidden_dim=16, seed=4))


@pytest.fixture(scope="module")
def corpus(corpus_model):
    """Synthetic clustered vectors + callee counts + query encodings."""
    rng = np.random.default_rng(7)
    dim = corpus_model.config.hidden_dim
    centers = rng.normal(size=(6, dim)) * 2.0
    vectors = np.concatenate(
        [center + rng.normal(scale=0.15, size=(30, dim)) for center in centers]
    )
    # callee counts track function identity (homologous functions call the
    # same neighbours), i.e. they follow the clusters
    counts = np.repeat(np.arange(6, dtype=np.int64), 30)
    queries = [
        FunctionEncoding(
            name=f"q{i}", arch="x86", binary_name="query",
            vector=centers[i] + rng.normal(scale=0.1, size=dim),
            callee_count=i,
        )
        for i in range(len(centers))
    ]
    return vectors, counts, queries


class TestBatchedScoring:
    def test_classifier_matrix_matches_per_pair(self, corpus_model, corpus):
        vectors, counts, queries = corpus
        query = queries[0]
        batched = corpus_model.similarity_batch(query, vectors, counts)
        singles = np.array([
            corpus_model.similarity(
                query,
                FunctionEncoding(
                    name="f", arch="x86", binary_name="b",
                    vector=vectors[i], callee_count=int(counts[i]),
                ),
            )
            for i in range(len(vectors))
        ])
        np.testing.assert_allclose(batched, singles, atol=1e-12)

    def test_uncalibrated_matches_woc(self, corpus_model, corpus):
        vectors, _counts, queries = corpus
        query = queries[1]
        batched = corpus_model.similarity_batch(
            query, vectors, calibrate=False
        )
        singles = np.array([
            corpus_model.ast_similarity(query.vector, vectors[i])
            for i in range(len(vectors))
        ])
        np.testing.assert_allclose(batched, singles, atol=1e-12)

    def test_calibration_requires_counts(self, corpus_model, corpus):
        vectors, _counts, queries = corpus
        with pytest.raises(ValueError, match="callee_counts"):
            corpus_model.similarity_batch(queries[0], vectors)

    def test_regression_head_batched(self, corpus):
        vectors, _counts, queries = corpus
        model = Asteria(AsteriaConfig(hidden_dim=16, head="regression"))
        query = queries[2]
        batched = model.siamese.similarity_from_matrix(query.vector, vectors)
        singles = np.array([
            model.siamese.similarity_from_vectors(query.vector, vectors[i])
            for i in range(len(vectors))
        ])
        np.testing.assert_allclose(batched, singles, atol=1e-12)


class TestAnnBackends:
    def test_brute_force_matches_sorted_scores(self, corpus_model, corpus):
        vectors, counts, queries = corpus
        index = BruteForceIndex(corpus_model, vectors, counts)
        query = queries[0]
        neighbors = index.top_k(query, k=5)
        scores = corpus_model.similarity_batch(query, vectors, counts)
        expected = sorted(
            range(len(vectors)), key=lambda i: (-scores[i], i)
        )[:5]
        assert [n.row for n in neighbors] == expected
        assert all(
            n.score == pytest.approx(scores[n.row]) for n in neighbors
        )

    def test_threshold_filters(self, corpus_model, corpus):
        vectors, counts, queries = corpus
        index = BruteForceIndex(corpus_model, vectors, counts)
        neighbors = index.top_k(queries[0], k=None, threshold=0.5)
        scores = corpus_model.similarity_batch(queries[0], vectors, counts)
        assert len(neighbors) == int((scores >= 0.5).sum())
        assert all(n.score >= 0.5 for n in neighbors)

    def test_lsh_recall_against_exact(self, corpus):
        # the cosine head ranks by the geometry the hyperplane family
        # approximates; the classification-head recall is covered on a
        # real trained corpus in bench_index_search.py
        vectors, counts, queries = corpus
        model = Asteria(AsteriaConfig(hidden_dim=16, head="regression"))
        exact = BruteForceIndex(model, vectors, counts)
        lsh = LSHIndex(model, vectors, counts, seed=3)
        recalls = []
        for query in queries:
            top_exact = {n.row for n in exact.top_k(query, k=10)}
            top_lsh = {n.row for n in lsh.top_k(query, k=10)}
            assert top_lsh <= set(range(len(vectors)))
            recalls.append(len(top_exact & top_lsh) / 10)
        assert np.mean(recalls) >= 0.9

    def test_lsh_deterministic(self, corpus_model, corpus):
        vectors, counts, queries = corpus
        a = LSHIndex(corpus_model, vectors, counts, seed=5)
        b = LSHIndex(corpus_model, vectors, counts, seed=5)
        for query in queries:
            assert [n.row for n in a.top_k(query, k=8)] == \
                   [n.row for n in b.top_k(query, k=8)]

    def test_lsh_candidate_pool_grows_to_n(self, corpus_model, corpus):
        vectors, counts, queries = corpus
        lsh = LSHIndex(corpus_model, vectors, counts, seed=1)
        rows = lsh.candidate_rows(queries[0].vector, 100)
        assert len(rows) >= 100
        all_rows = lsh.candidate_rows(queries[0].vector, None)
        assert len(all_rows) == len(vectors)

    def test_make_index_unknown_backend(self, corpus_model, corpus):
        from repro.api.errors import BadRequestError

        vectors, counts, _queries = corpus
        with pytest.raises(BadRequestError, match="unknown backend"):
            make_index("kdtree", corpus_model, vectors, counts)

    def test_empty_index(self, corpus_model):
        index = BruteForceIndex(
            corpus_model, np.zeros((0, 16)), np.zeros(0, dtype=np.int64)
        )
        assert index.top_k(_encoding(0, dim=16), k=5) == []


class TestSearchService:
    @pytest.fixture(scope="class")
    def firmware(self):
        return build_firmware_dataset(n_images=4, seed=3)

    @pytest.fixture(scope="class")
    def vuln_search(self, trained_model):
        return VulnerabilitySearch(trained_model, threshold=0.8)

    @pytest.fixture(scope="class")
    def service(self, vuln_search, firmware):
        return vuln_search.build_index(firmware)

    def test_ingest_counts(self, service, firmware):
        # every decompiled function above the size floor is stored once
        assert len(service.store) > 0
        image_ids = {
            meta.image_id for meta in service.store.iter_metadata()
        }
        unpackable = {
            image.identifier
            for image in firmware.images if not image.unknown_format
        }
        assert image_ids == unpackable

    def test_query_returns_metadata(self, service, vuln_search):
        library = vuln_search.encode_library()
        _entry, encoding = sorted(library.items())[0][1]
        hits = service.query(encoding, top_k=5)
        assert len(hits) == 5
        assert hits[0].score >= hits[-1].score
        for hit in hits:
            assert hit.name.startswith("sub_")
            assert hit.image_id

    def test_index_path_matches_exhaustive(
        self, vuln_search, firmware, service
    ):
        report_ex, cands_ex = vuln_search.search_exhaustive(firmware)
        report_ix, cands_ix = vuln_search.search(firmware, service=service)

        def key(c):
            return (c.entry.cve_id, c.image.identifier, c.binary_name,
                    c.function_name, c.confirmed)

        assert {key(c) for c in cands_ex} == {key(c) for c in cands_ix}
        assert report_ex.total_confirmed() == report_ix.total_confirmed()
        assert report_ex.n_functions == report_ix.n_functions
        for row_ex, row_ix in zip(report_ex.rows, report_ix.rows):
            assert row_ex.n_confirmed == row_ix.n_confirmed
            assert row_ex.vendors == row_ix.vendors
            assert row_ex.models == row_ix.models
        scores_ex = sorted(round(c.score, 9) for c in cands_ex)
        scores_ix = sorted(round(c.score, 9) for c in cands_ix)
        assert scores_ex == pytest.approx(scores_ix)

    def test_top_k_caps_candidates(self, vuln_search, firmware, service):
        _report, cands = vuln_search.search(firmware, service=service,
                                            top_k=1)
        per_cve = {}
        for c in cands:
            per_cve[c.entry.cve_id] = per_cve.get(c.entry.cve_id, 0) + 1
        assert all(count <= 1 for count in per_cve.values())

    def test_persistent_index_same_results(
        self, vuln_search, firmware, service, tmp_path, trained_model
    ):
        from repro.index.store import EmbeddingStore

        root = tmp_path / "fw-index"
        vuln_search.build_index(firmware, root=root)
        reopened = SearchService(trained_model, EmbeddingStore.open(root))
        library = vuln_search.encode_library()
        _entry, encoding = sorted(library.items())[0][1]
        fresh = [(h.row, h.name, round(h.score, 12))
                 for h in service.query(encoding, top_k=5)]
        durable = [(h.row, h.name, round(h.score, 12))
                   for h in reopened.query(encoding, top_k=5)]
        assert fresh == durable
