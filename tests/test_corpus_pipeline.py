"""Staged corpus pipeline: artifact cache, worker-pool determinism, call sites."""

import numpy as np
import pytest

from repro.core.model import Asteria, AsteriaConfig
from repro.evalsuite.vulnsearch import (
    CVE_LIBRARY,
    VulnerabilitySearch,
    build_firmware_dataset,
)
from repro.pipeline import (
    ArtifactCache,
    CorpusPipeline,
    flatten_tree,
    unflatten_tree,
)
from repro.pipeline.cache import MANIFEST_NAME, OBJECTS_DIR


@pytest.fixture(scope="module")
def firmware():
    return build_firmware_dataset(n_images=4, seed=6)


@pytest.fixture(scope="module")
def cold_run(trained_model, firmware):
    """One cold serial run over an in-memory cache (the reference)."""
    pipeline = CorpusPipeline(trained_model)
    return pipeline, pipeline.run_images(firmware.images)


def _vectors(result):
    return np.stack([e.vector for _image_id, e in result.encodings])


def _rows(result):
    return [
        (image_id, e.binary_name, e.name, e.callee_count, e.ast_size)
        for image_id, e in result.encodings
    ]


class TestTreeRoundTrip:
    def test_real_trees_survive(self, trained_model, firmware):
        from repro.binformat.binwalk import unpack_firmware
        from repro.pipeline.stages import decompile_stage, preprocess_one

        image = next(i for i in firmware.images if not i.unknown_format)
        binary = unpack_firmware(image)[0]
        n_checked = 0
        for fn in decompile_stage(binary):
            tree = preprocess_one(fn, trained_model.config.min_ast_size)
            if tree is None:
                continue
            rebuilt = unflatten_tree(*flatten_tree(tree))
            assert [n.label for n in rebuilt.postorder()] == [
                n.label for n in tree.postorder()
            ]
            n_checked += 1
        assert n_checked > 0

    def test_single_node(self):
        from repro.nn.treelstm import BinaryTreeNode

        rebuilt = unflatten_tree(*flatten_tree(BinaryTreeNode(label=7)))
        assert rebuilt.label == 7
        assert rebuilt.left is None and rebuilt.right is None


class TestArtifactCacheAccounting:
    def test_cold_run_misses_once_per_unique_binary(self, cold_run):
        _pipeline, cold = cold_run
        stats = cold.stats
        assert stats.n_functions > 0
        assert stats.n_unique_binaries > 0
        assert stats.cache.encoding_misses == stats.n_unique_binaries
        assert stats.cache.tree_misses == stats.n_unique_binaries
        assert stats.cache.hits == 0
        assert stats.n_extracted == stats.n_unique_binaries
        assert stats.n_encoded == stats.n_unique_binaries

    def test_warm_run_skips_decompile_and_encode(self, cold_run, firmware):
        pipeline, cold = cold_run
        warm = pipeline.run_images(firmware.images)
        stats = warm.stats
        assert stats.n_extracted == 0
        assert stats.n_encoded == 0
        assert stats.cache.encoding_hits == stats.n_unique_binaries
        assert stats.cache.misses == 0
        # the trees cache is never even consulted on a full encoding hit
        assert stats.cache.tree_hits == 0
        assert np.array_equal(_vectors(cold), _vectors(warm))
        assert _rows(cold) == _rows(warm)

    def test_on_disk_warm_across_instances(
        self, tmp_path, trained_model, firmware, cold_run
    ):
        _pipeline, reference = cold_run
        root = tmp_path / "cache"
        CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        assert (root / MANIFEST_NAME).exists()
        assert list((root / OBJECTS_DIR).glob("*.npz"))

        warm = CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        assert warm.stats.n_extracted == 0
        assert warm.stats.n_encoded == 0
        assert np.array_equal(_vectors(reference), _vectors(warm))
        assert _rows(reference) == _rows(warm)


class TestArtifactCacheInvalidation:
    def test_weight_change_invalidates_encodings_not_trees(
        self, tmp_path, trained_model, firmware
    ):
        root = tmp_path / "cache"
        CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)

        # untrained model, identical config: only the weights differ
        fresh = Asteria(AsteriaConfig(hidden_dim=32))
        assert fresh.fingerprint() != trained_model.fingerprint()
        run = CorpusPipeline(
            fresh, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        stats = run.stats
        assert stats.cache.encoding_hits == 0
        assert stats.cache.encoding_misses == stats.n_unique_binaries
        assert stats.cache.tree_hits == stats.n_unique_binaries
        assert stats.n_extracted == 0  # cached trees reused
        assert stats.n_encoded == stats.n_unique_binaries  # encode re-ran

    def test_weight_change_reuses_compiled_plans(
        self, tmp_path, trained_model, firmware
    ):
        """After a retrain, encodings re-run but zero trees recompile.

        The ``ctrees`` plans hold tree structure only, so they are keyed
        without the model fingerprint -- the whole point of persisting
        them as their own artifact kind.
        """
        root = tmp_path / "cache"
        cold = CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        assert cold.stats.n_trees_compiled > 0
        assert cold.stats.cache.ctree_misses > 0
        assert cold.stats.cache.ctree_hits == 0

        fresh = Asteria(AsteriaConfig(hidden_dim=32))
        assert fresh.fingerprint() != trained_model.fingerprint()
        run = CorpusPipeline(
            fresh, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        stats = run.stats
        assert stats.n_encoded == stats.n_unique_binaries  # encode re-ran
        assert stats.n_trees_compiled == 0  # ...over cached plans
        assert stats.cache.ctree_misses == 0
        assert stats.cache.ctree_hits > 0

    def test_batch_size_change_invalidates_plans_not_trees(
        self, tmp_path, trained_model, firmware
    ):
        root = tmp_path / "cache"
        CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        run = CorpusPipeline(
            trained_model,
            cache=ArtifactCache(root),
            encode_batch_size=17,
        ).run_images(firmware.images)
        # encodings are keyed by weights + dtype, not batch size: all hit,
        # so the differently-keyed plans are never even consulted
        assert run.stats.cache.encoding_hits == run.stats.n_unique_binaries
        assert run.stats.n_trees_compiled == 0

    def test_encode_dtype_keys_encodings_not_plans(
        self, tmp_path, trained_model, firmware
    ):
        root = tmp_path / "cache"
        cold = CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        run = CorpusPipeline(
            trained_model,
            cache=ArtifactCache(root),
            encode_dtype="float32",
        ).run_images(firmware.images)
        stats = run.stats
        # same weights, different dtype: encodings re-run over cached plans
        assert stats.cache.encoding_hits == 0
        assert stats.n_encoded == stats.n_unique_binaries
        assert stats.n_trees_compiled == 0
        assert stats.cache.ctree_hits > 0
        f64 = _vectors(cold)
        f32 = _vectors(run)
        assert f32.dtype == np.float32
        np.testing.assert_allclose(f32, f64, atol=1e-5)

    def test_min_ast_size_change_invalidates_trees(
        self, tmp_path, trained_model, firmware
    ):
        root = tmp_path / "cache"
        CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)

        strict = Asteria(AsteriaConfig(hidden_dim=32, min_ast_size=9))
        run = CorpusPipeline(
            strict, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        stats = run.stats
        assert stats.cache.tree_hits == 0
        assert stats.cache.tree_misses == stats.n_unique_binaries
        assert stats.n_extracted == stats.n_unique_binaries


class TestArtifactCacheRecovery:
    def test_corrupt_manifest_is_rebuilt_from_objects(
        self, tmp_path, trained_model, firmware
    ):
        root = tmp_path / "cache"
        cold = CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        (root / MANIFEST_NAME).write_text("{not json")

        warm = CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        assert warm.stats.n_extracted == 0
        assert warm.stats.n_encoded == 0
        assert np.array_equal(_vectors(cold), _vectors(warm))
        # the recovered manifest is valid again
        assert CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images).stats.cache.misses == 0

    def test_missing_manifest_is_rebuilt_from_objects(
        self, tmp_path, trained_model, firmware
    ):
        root = tmp_path / "cache"
        CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        (root / MANIFEST_NAME).unlink()

        warm = CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        assert warm.stats.cache.misses == 0

    def test_corrupt_object_is_a_miss_and_rewritten(
        self, tmp_path, trained_model, firmware
    ):
        root = tmp_path / "cache"
        cold = CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        victim = sorted((root / OBJECTS_DIR).glob("enc-*.npz"))[0]
        victim.write_bytes(b"garbage")

        warm = CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        stats = warm.stats
        assert stats.cache.encoding_misses == 1
        assert stats.cache.tree_hits == 1  # fell back to the cached trees
        assert stats.n_extracted == 0
        assert stats.n_encoded == 1
        assert np.array_equal(_vectors(cold), _vectors(warm))
        # the re-encode restored the object: fully warm again
        again = CorpusPipeline(
            trained_model, cache=ArtifactCache(root)
        ).run_images(firmware.images)
        assert again.stats.cache.misses == 0


class TestParallelDeterminism:
    def test_jobs_output_identical_to_serial(
        self, trained_model, firmware, cold_run
    ):
        _pipeline, serial = cold_run
        parallel = CorpusPipeline(trained_model, jobs=2).run_images(
            firmware.images
        )
        assert _rows(serial) == _rows(parallel)
        assert np.array_equal(_vectors(serial), _vectors(parallel))
        assert serial.stats.n_functions == parallel.stats.n_functions
        assert serial.stats.n_skipped_small == parallel.stats.n_skipped_small

    def test_extract_all_preserves_order(self, trained_model, firmware):
        from repro.binformat.binwalk import unpack_firmware
        from repro.pipeline import extract_all

        binaries = [
            binary
            for image in firmware.images
            if not image.unknown_format
            for binary in unpack_firmware(image)
        ]
        min_size = trained_model.config.min_ast_size
        serial = extract_all(binaries, min_size, jobs=1)
        pooled = extract_all(binaries, min_size, jobs=2)
        assert len(serial) == len(pooled) == len(binaries)
        for a, b in zip(serial, pooled):
            assert a.names == b.names
            assert np.array_equal(a.labels, b.labels)
            assert np.array_equal(a.lefts, b.lefts)
            assert np.array_equal(a.rights, b.rights)
            assert np.array_equal(a.callee_sizes, b.callee_sizes)
            assert a.n_skipped_small == b.n_skipped_small


class TestCallSites:
    def test_index_firmware_matches_seed_loop(self, trained_model, firmware):
        from repro.binformat.binwalk import UnpackError, unpack_firmware
        from repro.decompiler.hexrays import decompile_binary

        reference = []
        for image in firmware.images:
            try:
                binaries = unpack_firmware(image)
            except UnpackError:
                continue
            for binary in binaries:
                for fn in decompile_binary(binary, skip_errors=True):
                    if fn.ast_size() < trained_model.config.min_ast_size:
                        continue
                    reference.append(
                        (image, binary.name, trained_model.encode_function(fn))
                    )

        search = VulnerabilitySearch(trained_model)
        indexed = search.index_firmware(firmware)
        assert [(im.identifier, bn, e.name) for im, bn, e in reference] == [
            (im.identifier, bn, e.name) for im, bn, e in indexed
        ]
        assert np.allclose(
            np.stack([e.vector for _im, _bn, e in reference]),
            np.stack([e.vector for _im, _bn, e in indexed]),
            atol=1e-10,
        )
        assert [e.callee_count for _im, _bn, e in reference] == [
            e.callee_count for _im, _bn, e in indexed
        ]

    def test_encode_library_is_cached(self, trained_model):
        cache = ArtifactCache.in_memory()
        search = VulnerabilitySearch(trained_model, cache=cache)
        first = search.encode_library()
        # the engine memoizes: repeat calls return the same library
        assert search.encode_library() is first
        # a fresh engine sharing the artifact cache hits cached encodings
        hits_before = cache.stats.encoding_hits
        second = VulnerabilitySearch(
            trained_model, cache=cache
        ).encode_library()
        assert cache.stats.encoding_hits >= hits_before + len(CVE_LIBRARY)
        assert set(first) == {entry.cve_id for entry in CVE_LIBRARY}
        for cve_id, (entry, encoding) in first.items():
            assert encoding.name == entry.function_name
            _entry2, encoding2 = second[cve_id]
            assert np.array_equal(encoding.vector, encoding2.vector)
            assert encoding.callee_count == encoding2.callee_count

    def test_ingest_stats_carry_pipeline_stats(self, trained_model, firmware):
        from repro.index.search import SearchService
        from repro.index.store import EmbeddingStore

        store = EmbeddingStore.in_memory(dim=trained_model.config.hidden_dim)
        service = SearchService(trained_model, store)
        stats = service.ingest_firmware(firmware.images)
        assert stats.n_functions == len(store) > 0
        assert stats.pipeline.n_unique_binaries > 0
        assert stats.pipeline.cache.encoding_misses \
            == stats.pipeline.n_unique_binaries
        assert stats.n_skipped_small == stats.pipeline.n_skipped_small

    def test_measure_offline_pipeline(self, trained_model, buildroot_small):
        from repro.evalsuite.timing import measure_offline_pipeline

        cache = ArtifactCache.in_memory()
        cold = measure_offline_pipeline(
            buildroot_small, trained_model, cache=cache
        )
        assert cold.n_functions > 0
        assert cold.times.decompile_s > 0
        warm = measure_offline_pipeline(
            buildroot_small, trained_model, cache=cache
        )
        assert warm.n_extracted == 0
        assert warm.n_encoded == 0
        assert warm.n_functions == cold.n_functions


class TestPipelineCLI:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory, trained_model):
        path = tmp_path_factory.mktemp("model") / "asteria.npz"
        trained_model.save(path)
        return str(path)

    def test_run_cold_then_warm(self, model_path, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "pipeline", "run", "--model", model_path, "--images", "3",
            "--seed", "4", "--cache-dir", str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert "stage  decompile" in cold_out
        assert "encodings: 0 hits" in cold_out

        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        assert "extracted 0 of" in warm_out
        assert "encoded 0 binaries" in warm_out
        assert "/ 0 misses" in warm_out

    def test_run_with_output_writes_index(self, model_path, tmp_path, capsys):
        from repro.cli import main
        from repro.index.store import EmbeddingStore

        root = tmp_path / "idx"
        assert main([
            "pipeline", "run", "--model", model_path, "--images", "3",
            "--seed", "4", "--output", str(root),
        ]) == 0
        assert "shard(s)" in capsys.readouterr().out
        assert len(EmbeddingStore.open(root)) > 0

    def test_index_build_jobs_and_cache_identical(
        self, model_path, tmp_path, capsys
    ):
        from repro.cli import main
        from repro.index.store import EmbeddingStore

        assert main([
            "index", "build", "--model", model_path,
            "--output", str(tmp_path / "serial"),
            "--images", "3", "--seed", "4",
        ]) == 0
        assert main([
            "index", "build", "--model", model_path,
            "--output", str(tmp_path / "parallel"),
            "--images", "3", "--seed", "4",
            "--jobs", "2", "--cache-dir", str(tmp_path / "cache"),
        ]) == 0
        capsys.readouterr()
        serial = EmbeddingStore.open(str(tmp_path / "serial"))
        parallel = EmbeddingStore.open(str(tmp_path / "parallel"))
        assert np.array_equal(serial.vectors(), parallel.vectors())
        assert [m.name for m in serial.iter_metadata()] \
            == [m.name for m in parallel.iter_metadata()]


class TestFloat32Ranking:
    """The float32 fast path must preserve search rankings, not just values."""

    def test_top10_ranking_overlap(self, trained_model, buildroot_small):
        from repro.evalsuite.timing import corpus_trees

        trees = corpus_trees(
            buildroot_small, trained_model.config.min_ast_size
        )
        assert trees, "corpus produced no encodable functions"
        base = len(trees)
        while len(trees) < 1000:  # the 1k-corpus ranking fixture
            trees.append(trees[len(trees) % base])

        plan = trained_model.compile_plan(trees)
        f64 = trained_model.encode_plan(plan)
        f32 = trained_model.encode_plan(plan, dtype="float32")
        np.testing.assert_allclose(f32, f64, atol=1e-5)

        def top10(matrix):
            scores = trained_model.siamese.similarity_from_matrix(
                matrix[:25], matrix
            )
            # deterministic tiebreak by corpus index, so the duplicated
            # fixture rows (exactly-equal scores) rank identically in
            # both dtypes and only real score flips count as divergence
            n = scores.shape[1]
            return [
                set(np.lexsort((np.arange(n), -scores[q]))[:10].tolist())
                for q in range(scores.shape[0])
            ]

        overlap = [
            len(a & b) / 10.0
            for a, b in zip(top10(f64), top10(f32.astype(np.float64)))
        ]
        assert np.mean(overlap) >= 0.98, (
            f"float32 top-10 overlap {np.mean(overlap):.3f} < 0.98 "
            f"(per-query: {sorted(overlap)[:5]}...)"
        )
