"""Tests for the AST node model (Table-I vocabulary)."""

import pytest

from repro.lang import nodes as N
from repro.lang.nodes import (
    ALL_OPS,
    ASSIGNMENT_OPS,
    ARITHMETIC_OPS,
    COMPARISON_OPS,
    EXPRESSION_OPS,
    FunctionDef,
    NEGATED_COMPARISON,
    Node,
    Ops,
    Package,
    STATEMENT_OPS,
    SWAPPED_COMPARISON,
)


class TestTaxonomy:
    def test_statement_expression_partition(self):
        assert not set(STATEMENT_OPS) & set(EXPRESSION_OPS)
        assert set(ALL_OPS) == set(STATEMENT_OPS) | set(EXPRESSION_OPS)

    def test_table_one_statement_rows_present(self):
        for op in ("if", "block", "for", "while", "switch", "return",
                   "goto", "continue", "break"):
            assert op in STATEMENT_OPS

    def test_eight_assignments_six_comparisons(self):
        assert len(ASSIGNMENT_OPS) == 8
        assert len(COMPARISON_OPS) == 6
        assert len(ARITHMETIC_OPS) == 12

    def test_negation_is_involution(self):
        for op, negated in NEGATED_COMPARISON.items():
            assert NEGATED_COMPARISON[negated] == op

    def test_swap_is_involution(self):
        for op, swapped in SWAPPED_COMPARISON.items():
            assert SWAPPED_COMPARISON[swapped] == op


class TestNode:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            Node("frobnicate")

    def test_children_normalised_to_tuple(self):
        node = Node(Ops.BLOCK, [N.num(1)])
        assert isinstance(node.children, tuple)

    def test_walk_preorder(self):
        tree = N.asg(N.var("x"), N.binop(Ops.ADD, N.num(1), N.num(2)))
        ops = [n.op for n in tree.walk()]
        assert ops == [Ops.ASG, Ops.VAR, Ops.ADD, Ops.NUM, Ops.NUM]

    def test_size_and_depth(self):
        tree = N.if_(
            N.binop(Ops.LT, N.var("a"), N.num(1)),
            N.block(N.asg(N.var("b"), N.num(0))),
        )
        assert tree.size() == 8
        assert tree.depth() == 4

    def test_leaf_properties(self):
        assert N.num(3).is_leaf()
        assert not N.asg(N.var("x"), N.num(1)).is_leaf()

    def test_statement_vs_expression(self):
        assert N.block().is_statement()
        assert N.num(1).is_expression()

    def test_count_ops(self):
        tree = N.block(N.asg(N.var("x"), N.num(1)), N.asg(N.var("y"), N.num(2)))
        counts = tree.count_ops()
        assert counts[Ops.ASG] == 2
        assert counts[Ops.VAR] == 2
        assert counts[Ops.NUM] == 2
        assert counts[Ops.BLOCK] == 1

    def test_replace_children(self):
        original = N.block(N.num(1))
        replaced = original.replace_children((N.num(2), N.num(3)))
        assert replaced.size() == 3
        assert original.size() == 2  # immutable

    def test_constructors(self):
        call = N.call("f", N.num(1), N.var("x"))
        assert call.value == "f" and len(call.children) == 2
        loop = N.for_(
            N.asg(N.var("i"), N.num(0)),
            N.binop(Ops.LT, N.var("i"), N.num(5)),
            N.asg(N.var("i"), N.binop(Ops.ADD, N.var("i"), N.num(1))),
            N.block(),
        )
        assert loop.op == Ops.FOR and len(loop.children) == 4
        assert N.ret().children == ()
        assert N.ret(N.num(1)).children[0].op == Ops.NUM


class TestFunctionDef:
    def _fn(self):
        body = N.block(
            N.asg(N.var("v0"), N.call("g", N.var("a0"))),
            N.asg(N.var("v1"), N.call("g", N.num(3))),
            N.ret(N.var("v0")),
        )
        return FunctionDef("f", ("a0",), ("v0", "v1"), body)

    def test_callee_names_with_repeats(self):
        assert self._fn().callee_names() == ("g", "g")

    def test_variables(self):
        assert self._fn().variables() == ("a0", "v0", "v1")

    def test_ast_is_body(self):
        fn = self._fn()
        assert fn.ast() is fn.body


class TestPackage:
    def test_lookup(self):
        fn = FunctionDef("f", (), (), N.block(N.ret(N.num(0))))
        package = Package("p", [fn])
        assert package.function("f") is fn
        with pytest.raises(KeyError):
            package.function("missing")
        assert package.function_names() == ("f",)
        assert len(package) == 1
