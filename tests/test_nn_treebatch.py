"""Tests for the level-batched Tree-LSTM engine.

The batched paths (numpy inference + autograd training) are verified
numerically equivalent to the sequential per-tree reference -- forward to
1e-10, full parameter gradients to 1e-8 -- on randomized trees, plus the
edge cases: empty batch, single-node trees, deep spines, duplicated tree
objects, and the shared-subtree DAG guard.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import no_grad, stable_sigmoid
from repro.nn.treebatch import (
    compile_plan,
    compile_trees,
    encode_batch,
    encode_batch_states,
    encode_plan,
    pack_weights,
    plan_chunks,
    plan_from_state,
    plan_to_state,
    resolve_block,
    resolve_node_budget,
)
from repro.nn.treelstm import BinaryTreeLSTM, BinaryTreeNode
from repro.utils.rng import RNG


def _chain(length, label=1):
    root = BinaryTreeNode(label)
    node = root
    for _ in range(length - 1):
        node.right = BinaryTreeNode(label)
        node = node.right
    return root


def _random_tree(rng: RNG, depth: int = 5) -> BinaryTreeNode:
    node = BinaryTreeNode(rng.randint(1, 40))
    if depth > 0 and rng.random() < 0.6:
        node.left = _random_tree(rng.child("l"), depth - 1)
    if depth > 0 and rng.random() < 0.6:
        node.right = _random_tree(rng.child("r"), depth - 1)
    return node


def _random_batch(seed: int, n: int = 12):
    rng = RNG(seed)
    return [_random_tree(rng.child("tree", i)) for i in range(n)]


@st.composite
def binary_trees(draw, max_depth=4):
    label = draw(st.integers(min_value=1, max_value=40))
    node = BinaryTreeNode(label)
    if max_depth > 0 and draw(st.booleans()):
        node.left = draw(binary_trees(max_depth=max_depth - 1))
    if max_depth > 0 and draw(st.booleans()):
        node.right = draw(binary_trees(max_depth=max_depth - 1))
    return node


class TestCompiler:
    def test_levels_partition_nodes(self):
        trees = _random_batch(0)
        compiled = compile_trees(trees)
        assert compiled.n_nodes == sum(tree.size() for tree in trees)
        assert sum(level.size for level in compiled.levels) == compiled.n_nodes
        assert compiled.n_trees == len(trees)

    def test_children_at_lower_levels(self):
        compiled = compile_trees(_random_batch(1))
        for lvl, level in enumerate(compiled.levels):
            for side in ("left", "right"):
                src = getattr(level, f"{side}_level")
                assert np.all(src < lvl)

    def test_single_node_tree(self):
        compiled = compile_trees([BinaryTreeNode(7)])
        assert compiled.n_nodes == 1
        assert len(compiled.levels) == 1
        assert np.all(compiled.levels[0].left_level == -1)

    def test_empty_batch(self):
        compiled = compile_trees([])
        assert compiled.n_trees == 0
        assert compiled.n_nodes == 0
        assert compiled.levels == []

    def test_shared_subtree_rejected(self):
        shared = BinaryTreeNode(2)
        root = BinaryTreeNode(1, left=shared, right=shared)
        with pytest.raises(ValueError, match="shared-subtree"):
            compile_trees([root])

    def test_duplicate_tree_objects_allowed(self):
        """The same tree *object* twice in a batch is just encoded twice."""
        tree = _random_tree(RNG(3))
        model = BinaryTreeLSTM(49, 8, 16, seed=0)
        out = encode_batch(model, [tree, tree])
        np.testing.assert_array_equal(out[0], out[1])


class TestForwardEquivalence:
    @pytest.fixture(scope="class")
    def model(self):
        return BinaryTreeLSTM(49, 8, 16, seed=5)

    def _sequential(self, model, trees):
        with no_grad():
            return np.stack([model(tree).data for tree in trees])

    def test_batched_matches_sequential(self, model):
        trees = _random_batch(7, n=20) + [BinaryTreeNode(3), _chain(40)]
        expected = self._sequential(model, trees)
        np.testing.assert_allclose(
            encode_batch(model, trees), expected, atol=1e-10
        )
        np.testing.assert_allclose(
            encode_batch_states(model, trees).data, expected, atol=1e-10
        )

    def test_empty_batch(self, model):
        assert encode_batch(model, []).shape == (0, 16)
        assert encode_batch_states(model, []).shape == (0, 16)

    def test_single_node_trees(self, model):
        trees = [BinaryTreeNode(i) for i in range(1, 6)]
        np.testing.assert_allclose(
            encode_batch(model, trees), self._sequential(model, trees),
            atol=1e-10,
        )

    def test_deep_spine_no_recursion_error(self):
        model = BinaryTreeLSTM(49, 4, 8, seed=0)
        out = encode_batch(model, [_chain(3000), BinaryTreeNode(1)])
        assert np.all(np.isfinite(out))

    def test_out_of_range_label_rejected(self, model):
        """Batched paths enforce the same range check as Embedding.forward."""
        for bad in (-1, 49):
            trees = [_chain(3), BinaryTreeNode(bad)]
            with pytest.raises(IndexError, match="out of range"):
                encode_batch(model, trees)
            with pytest.raises(IndexError, match="out of range"):
                encode_batch_states(model, trees)

    def test_leaf_init_one_supported(self):
        model = BinaryTreeLSTM(49, 8, 16, seed=2, leaf_init="one")
        trees = _random_batch(9, n=6)
        np.testing.assert_allclose(
            encode_batch(model, trees), self._sequential(model, trees),
            atol=1e-10,
        )

    def test_bitwise_consistent_across_batch_sizes(self, model):
        trees = _random_batch(11, n=50)
        full = encode_batch(model, trees)
        for batch_size in (1, 7, 16):
            chunked = np.concatenate([
                encode_batch(model, trees[i:i + batch_size])
                for i in range(0, len(trees), batch_size)
            ])
            np.testing.assert_array_equal(full, chunked)

    @settings(max_examples=15, deadline=None)
    @given(binary_trees())
    def test_property_single_tree_equivalence(self, tree):
        model = BinaryTreeLSTM(49, 6, 10, seed=9)
        expected = self._sequential(model, [tree])
        np.testing.assert_allclose(
            encode_batch(model, [tree]), expected, atol=1e-10
        )


class TestGradientEquivalence:
    def _grads(self, model):
        return {name: p.grad.copy() for name, p in model.named_parameters()}

    def test_full_parameter_gradients_match(self):
        """Batched backward == accumulated per-tree sequential backward."""
        trees = _random_batch(13, n=16) + [BinaryTreeNode(2), _chain(30)]
        model = BinaryTreeLSTM(49, 8, 16, seed=4)
        model.zero_grad()
        for tree in trees:
            model(tree).sum().backward()
        expected = self._grads(model)
        model.zero_grad()
        encode_batch_states(model, trees).sum().backward()
        for name, parameter in model.named_parameters():
            np.testing.assert_allclose(
                parameter.grad, expected[name], atol=1e-8, err_msg=name
            )

    @settings(max_examples=10, deadline=None)
    @given(binary_trees())
    def test_property_gradients_match(self, tree):
        model = BinaryTreeLSTM(49, 6, 10, seed=9)
        model.zero_grad()
        model(tree).sum().backward()
        expected = self._grads(model)
        model.zero_grad()
        encode_batch_states(model, [tree]).sum().backward()
        for name, parameter in model.named_parameters():
            np.testing.assert_allclose(
                parameter.grad, expected[name], atol=1e-8, err_msg=name
            )

    def test_weighted_roots_gradients_match(self):
        """Non-uniform downstream gradients route to the right trees."""
        trees = _random_batch(17, n=6)
        weights = np.linspace(0.5, 2.5, len(trees))
        model = BinaryTreeLSTM(49, 8, 16, seed=6)
        model.zero_grad()
        for w, tree in zip(weights, trees):
            (model(tree).sum() * float(w)).backward()
        expected = self._grads(model)
        model.zero_grad()
        roots = encode_batch_states(model, trees)
        total = None
        for j, w in enumerate(weights):
            term = roots[j].sum() * float(w)
            total = term if total is None else total + term
        total.backward()
        for name, parameter in model.named_parameters():
            np.testing.assert_allclose(
                parameter.grad, expected[name], atol=1e-8, err_msg=name
            )


class TestDagGuard:
    def test_encode_states_rejects_shared_subtree(self):
        shared = BinaryTreeNode(2, left=BinaryTreeNode(3))
        root = BinaryTreeNode(1, left=shared, right=shared)
        model = BinaryTreeLSTM(49, 8, 16, seed=0)
        with pytest.raises(ValueError, match="shared-subtree"):
            model.encode_states(root)

    def test_deeper_shared_node_rejected(self):
        shared = BinaryTreeNode(5)
        root = BinaryTreeNode(
            1,
            left=BinaryTreeNode(2, left=shared),
            right=BinaryTreeNode(3, right=shared),
        )
        model = BinaryTreeLSTM(49, 8, 16, seed=0)
        with pytest.raises(ValueError, match="shared-subtree"):
            model.encode_states(root)


class TestPlans:
    """Bucketed chunk planning, plan serialization and the float32 path."""

    @pytest.fixture(scope="class")
    def model(self):
        return BinaryTreeLSTM(49, 8, 16, seed=3)

    def test_plan_chunks_partition_and_caps(self):
        sizes = [3, 40, 1, 17, 25, 9, 2, 33, 5, 12]
        chunks = plan_chunks(sizes, batch_size=3, node_budget=50)
        flat = np.concatenate(chunks)
        assert sorted(flat.tolist()) == list(range(len(sizes)))
        for chunk in chunks:
            assert len(chunk) <= 3
            total = sum(sizes[i] for i in chunk)
            assert total <= 50 or len(chunk) == 1
        # bucketed: visiting chunks in order walks sizes non-decreasing
        visited = [sizes[i] for chunk in chunks for i in chunk]
        assert visited == sorted(visited)

    def test_plan_chunks_unbucketed_preserves_order(self):
        chunks = plan_chunks([5, 5, 5, 5, 5], batch_size=2, bucketed=False)
        assert [c.tolist() for c in chunks] == [[0, 1], [2, 3], [4]]

    def test_oversized_tree_gets_its_own_chunk(self):
        chunks = plan_chunks([100, 2, 100], batch_size=4, node_budget=10)
        assert all(
            len(chunk) == 1 for chunk in chunks if 100 in
            [[100, 2, 100][i] for i in chunk]
        )

    def test_bucketed_equals_unbucketed_bitwise(self, model):
        trees = _random_batch(21, n=40) + [BinaryTreeNode(3), _chain(30)]
        one_batch = encode_batch(model, trees)
        bucketed = encode_plan(
            model, compile_plan(trees, 8, node_budget=200)
        )
        unbucketed = encode_plan(
            model, compile_plan(trees, 8, node_budget=200, bucketed=False)
        )
        assert np.array_equal(bucketed, unbucketed)
        assert np.array_equal(bucketed, one_batch)

    def test_serialization_roundtrip_bitwise(self, model):
        trees = _random_batch(23, n=24) + [BinaryTreeNode(1)]
        plan = compile_plan(trees, 8, node_budget=150)
        state = plan_to_state(plan)
        assert all(isinstance(v, np.ndarray) for v in state.values())
        rebuilt = plan_from_state(state)
        assert rebuilt.n_trees == plan.n_trees
        assert np.array_equal(
            encode_plan(model, plan), encode_plan(model, rebuilt)
        )

    def test_float32_path_tracks_float64(self, model):
        trees = _random_batch(25, n=30)
        plan = compile_plan(trees, 8)
        f64 = encode_plan(model, plan)
        f32 = encode_plan(model, plan, dtype=np.float32)
        assert f32.dtype == np.float32
        assert f64.dtype == np.float64
        np.testing.assert_allclose(f32, f64, atol=1e-5)

    def test_pack_weights_never_stale(self, model):
        tree = _chain(5)
        before = encode_batch(model, [tree]).copy()
        original = model.w_i.data.copy()
        try:
            model.w_i.data += 0.25
            after = encode_batch(model, [tree])
        finally:
            model.w_i.data[...] = original
        assert not np.array_equal(before, after)

    def test_resolve_block_precedence(self, monkeypatch):
        assert resolve_block(48) == 48  # explicit beats everything
        monkeypatch.setenv("REPRO_ENCODE_BLOCK", "96")
        assert resolve_block(0) == 96
        assert resolve_block(16) == 16
        monkeypatch.setenv("REPRO_ENCODE_BLOCK", "0")
        with pytest.raises(ValueError):
            resolve_block(0)

    def test_resolve_block_probe_is_memoized(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENCODE_BLOCK", raising=False)
        first = resolve_block(0, hidden_dim=16)
        assert first in (16, 32, 64, 128, 256)
        assert resolve_block(0, hidden_dim=16) == first

    def test_resolve_node_budget_precedence(self, monkeypatch):
        assert resolve_node_budget(100) == 100
        monkeypatch.setenv("REPRO_ENCODE_NODE_BUDGET", "321")
        assert resolve_node_budget(0) == 321
        monkeypatch.delenv("REPRO_ENCODE_NODE_BUDGET")
        assert resolve_node_budget(0) >= 1

    def test_pack_weights_dtype_cast(self, model):
        pack = pack_weights(model, np.float32)
        assert pack.w_all.dtype == np.float32
        assert pack.u_lr.shape == (2 * model.hidden_dim,
                                   5 * model.hidden_dim)
        assert pack.bias.shape == (5 * model.hidden_dim,)


class TestStableSigmoid:
    def test_no_overflow_warning(self):
        with np.errstate(over="raise"):
            out = stable_sigmoid(np.array([-1e4, -100.0, 0.0, 100.0, 1e4]))
        np.testing.assert_allclose(out, [0.0, 0.0, 0.5, 1.0, 1.0], atol=1e-40)

    def test_matches_naive_in_safe_range(self):
        x = np.linspace(-30, 30, 301)
        np.testing.assert_allclose(
            stable_sigmoid(x), 1.0 / (1.0 + np.exp(-x)), rtol=1e-15
        )

    def test_scalar_input(self):
        assert float(stable_sigmoid(np.float64(0.0))) == 0.5
