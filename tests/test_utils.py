"""Tests for repro.utils: deterministic RNG and seed derivation."""

import pytest

from repro.utils.logging import get_logger
from repro.utils.rng import RNG, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_differs_by_name(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_path_not_concatenation(self):
        # ("ab", "c") must differ from ("a", "bc")
        assert derive_seed(7, "ab", "c") != derive_seed(7, "a", "bc")

    def test_non_negative_63_bit(self):
        for seed in (0, 1, 2 ** 62, 123456789):
            value = derive_seed(seed, "x")
            assert 0 <= value < 2 ** 63


class TestRNG:
    def test_same_seed_same_stream(self):
        a, b = RNG(5), RNG(5)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_child_independent_of_parent_consumption(self):
        a = RNG(5)
        a.randint(0, 100)  # consume some parent state
        b = RNG(5)
        assert a.child("x").randint(0, 10 ** 6) == b.child("x").randint(0, 10 ** 6)

    def test_randint_bounds_inclusive(self):
        rng = RNG(0)
        values = {rng.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_choice_weighted(self):
        rng = RNG(1)
        picks = [rng.choice(["a", "b"], weights=[0.0, 1.0]) for _ in range(20)]
        assert set(picks) == {"b"}

    def test_sample_distinct(self):
        rng = RNG(2)
        sample = rng.sample(range(10), 10)
        assert sorted(sample) == list(range(10))

    def test_sample_too_many_raises(self):
        with pytest.raises(ValueError):
            RNG(0).sample([1, 2], 3)

    def test_shuffle_is_permutation(self):
        rng = RNG(3)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
        assert shuffled != items  # overwhelmingly likely

    def test_random_in_unit_interval(self):
        rng = RNG(4)
        assert all(0.0 <= rng.random() < 1.0 for _ in range(100))


class TestLogging:
    def test_namespaced(self):
        assert get_logger("foo").name == "repro.foo"
        assert get_logger("repro.bar").name == "repro.bar"
