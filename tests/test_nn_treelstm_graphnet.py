"""Tests for the Binary Tree-LSTM (incl. fused/reference equivalence as a
hypothesis property) and the structure2vec network."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.graphnet import Structure2Vec, cosine_similarity
from repro.nn.tensor import Tensor
from repro.nn.treelstm import BinaryTreeLSTM, BinaryTreeNode
from repro.utils.rng import RNG


def _chain(length, label=1):
    """A right-spine chain of the given length."""
    root = BinaryTreeNode(label)
    node = root
    for _ in range(length - 1):
        node.right = BinaryTreeNode(label)
        node = node.right
    return root


@st.composite
def binary_trees(draw, max_depth=5):
    label = draw(st.integers(min_value=1, max_value=40))
    node = BinaryTreeNode(label)
    if max_depth > 0 and draw(st.booleans()):
        node.left = draw(binary_trees(max_depth=max_depth - 1))
    if max_depth > 0 and draw(st.booleans()):
        node.right = draw(binary_trees(max_depth=max_depth - 1))
    return node


class TestBinaryTreeNode:
    def test_size(self):
        assert _chain(5).size() == 5

    def test_postorder_children_first(self):
        root = BinaryTreeNode(1, BinaryTreeNode(2), BinaryTreeNode(3))
        order = [n.label for n in root.postorder()]
        assert order == [2, 3, 1]

    def test_postorder_covers_all(self):
        tree = _chain(10)
        assert len(list(tree.postorder())) == 10


class TestTreeLSTM:
    def test_encoding_shape(self):
        model = BinaryTreeLSTM(49, 8, 16, seed=0)
        out = model(_chain(6))
        assert out.shape == (16,)

    def test_deterministic(self):
        a = BinaryTreeLSTM(49, 8, 16, seed=3)
        b = BinaryTreeLSTM(49, 8, 16, seed=3)
        tree = _chain(7, label=5)
        np.testing.assert_array_equal(a(tree).data, b(tree).data)

    def test_label_sensitivity(self):
        model = BinaryTreeLSTM(49, 8, 16, seed=0)
        assert not np.allclose(model(_chain(4, 1)).data, model(_chain(4, 2)).data)

    def test_structure_sensitivity(self):
        model = BinaryTreeLSTM(49, 8, 16, seed=0)
        left_heavy = BinaryTreeNode(1, left=BinaryTreeNode(2, left=BinaryTreeNode(3)))
        right_heavy = BinaryTreeNode(1, right=BinaryTreeNode(2, right=BinaryTreeNode(3)))
        assert not np.allclose(model(left_heavy).data, model(right_heavy).data)

    def test_child_order_matters(self):
        """Binary Tree-LSTM (unlike Child-Sum) distinguishes child order --
        the reason the paper picks it (§II-C)."""
        model = BinaryTreeLSTM(49, 8, 16, seed=0)
        ab = BinaryTreeNode(1, BinaryTreeNode(2), BinaryTreeNode(3))
        ba = BinaryTreeNode(1, BinaryTreeNode(3), BinaryTreeNode(2))
        assert not np.allclose(model(ab).data, model(ba).data)

    def test_leaf_init_modes_differ(self):
        zero = BinaryTreeLSTM(49, 8, 16, seed=0, leaf_init="zero")
        one = BinaryTreeLSTM(49, 8, 16, seed=0, leaf_init="one")
        tree = _chain(4)
        assert not np.allclose(zero(tree).data, one(tree).data)

    def test_invalid_leaf_init(self):
        with pytest.raises(ValueError):
            BinaryTreeLSTM(49, 8, 16, leaf_init="two")

    def test_deep_tree_no_recursion_error(self):
        model = BinaryTreeLSTM(49, 4, 8, seed=0)
        out = model(_chain(3000))
        assert np.all(np.isfinite(out.data))

    def test_fused_reference_forward_equal(self):
        fused = BinaryTreeLSTM(49, 8, 16, seed=5, fused=True)
        reference = BinaryTreeLSTM(49, 8, 16, seed=5, fused=False)
        tree = _chain(9, label=7)
        np.testing.assert_allclose(fused(tree).data, reference(tree).data)

    @settings(max_examples=15, deadline=None)
    @given(binary_trees())
    def test_fused_reference_gradients_equal(self, tree):
        """Property: the hand-derived fused backward matches the composed
        autograd reference on arbitrary trees."""
        fused = BinaryTreeLSTM(49, 6, 10, seed=9, fused=True)
        reference = BinaryTreeLSTM(49, 6, 10, seed=9, fused=False)
        for model in (fused, reference):
            model.zero_grad()
            model(tree).sum().backward()
        ref_grads = dict(reference.named_parameters())
        for name, parameter in fused.named_parameters():
            np.testing.assert_allclose(
                parameter.grad, ref_grads[name].grad, rtol=1e-9, atol=1e-12,
                err_msg=name,
            )

    def test_parameter_count(self):
        d, h, labels = 8, 16, 49
        model = BinaryTreeLSTM(labels, d, h, seed=0)
        expected = (
            labels * d          # embedding
            + 4 * d * h         # W_f, W_i, W_o, W_u
            + 10 * h * h        # U matrices (4 forget + 2 each for i/o/u)
            + 4 * h             # biases
        )
        assert model.n_parameters() == expected

    def test_gradients_reach_embedding(self):
        model = BinaryTreeLSTM(49, 8, 16, seed=0)
        model(_chain(4, label=2)).sum().backward()
        assert model.embedding.weight.grad is not None
        assert np.any(model.embedding.weight.grad[2] != 0)


class TestStructure2Vec:
    def _graph(self, n=4, seed=0):
        rng = RNG(seed)
        features = np.abs(rng.normal(size=(n, 8)))
        adjacency = np.zeros((n, n))
        for i in range(n - 1):
            adjacency[i, i + 1] = 1
        return features, adjacency

    def test_embedding_shape(self):
        model = Structure2Vec(8, 16, iterations=3, seed=0)
        features, adjacency = self._graph()
        assert model(features, adjacency).shape == (16,)

    def test_deterministic(self):
        features, adjacency = self._graph()
        a = Structure2Vec(8, 16, seed=1)
        b = Structure2Vec(8, 16, seed=1)
        np.testing.assert_array_equal(
            a(features, adjacency).data, b(features, adjacency).data
        )

    def test_feature_dim_checked(self):
        model = Structure2Vec(8, 16, seed=0)
        with pytest.raises(ValueError):
            model(np.ones((3, 5)), np.zeros((3, 3)))

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            Structure2Vec(8, 16, iterations=0)

    def test_structure_sensitivity(self):
        model = Structure2Vec(8, 16, seed=0)
        features, chain_adj = self._graph()
        star_adj = np.zeros_like(chain_adj)
        star_adj[0, 1:] = 1
        chain_out = model(features, chain_adj).data
        star_out = model(features, star_adj).data
        assert not np.allclose(chain_out, star_out)

    def test_gradients_flow(self):
        model = Structure2Vec(8, 16, seed=0)
        features, adjacency = self._graph()
        model(features, adjacency).sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_cosine_similarity_bounds(self):
        a = Tensor(np.array([1.0, 0.0]))
        b = Tensor(np.array([1.0, 0.0]))
        c = Tensor(np.array([-1.0, 0.0]))
        assert float(cosine_similarity(a, b).data) == pytest.approx(1.0)
        assert float(cosine_similarity(a, c).data) == pytest.approx(-1.0)
