"""Tests for the shard-parallel serving subsystem (`repro.serving`).

Covers the generation protocol (atomic CURRENT pointer, clone, abort),
range planning (scoring-block alignment, the bit-for-bit invariant),
the supervised worker pool (merge equality, kill/raise failpoints,
bounded retries), the engine integration (generation-tagged queries,
ingest-as-new-generation, stats/healthz surfaces), and the headline
guarantee: an uninterrupted, generation-consistent query stream across
a live hot swap.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

import repro.faults as faults
from repro.api.config import EngineConfig
from repro.api.engine import AsteriaEngine, IngestRequest, QueryRequest
from repro.api.errors import EngineError
from repro.api.server import EngineServer
from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.index.ann import BruteForceIndex, select_top_k
from repro.index.store import EmbeddingStore
from repro.serving import generations
from repro.serving.coordinator import (
    ServingCoordinator,
    scoring_block_offsets,
    shard_ranges,
)
from repro.serving.pool import ShardWorkerPool, SweepError

DIM = 16


@pytest.fixture(autouse=True)
def _disarm_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture(scope="module")
def model():
    """Scoring only needs the Siamese head; untrained weights are fine
    (scores are still deterministic functions of the vectors)."""
    return Asteria(AsteriaConfig(hidden_dim=DIM))


def _encoding(i, vector):
    return FunctionEncoding(
        name=f"f{i}", arch="x86", binary_name=f"bin{i % 7}",
        vector=np.asarray(vector, dtype=np.float64),
        callee_count=i % 9, ast_size=10 + i % 5,
    )


def _fill_store(root, n, shard_size, seed=0):
    store = EmbeddingStore.create(root, dim=DIM, shard_size=shard_size)
    vectors = np.random.default_rng(seed).normal(size=(n, DIM))
    for i in range(n):
        store.add(_encoding(i, vectors[i]))
    store.flush()
    return store, vectors


def _queries(vectors, n=4):
    step = max(1, len(vectors) // (n + 1))
    return [
        _encoding(1000 + i, vectors[(i + 1) * step]) for i in range(n)
    ]


def _reference(model, store, queries, k=10, threshold=None):
    index = BruteForceIndex(
        model, store.vectors().snapshot(), store.callee_counts(),
        calibrate=True,
    )
    return index.top_k_batch(queries, k=k, threshold=threshold)


def _rows_scores(neighbors_or_hits):
    return (
        [h.row for h in neighbors_or_hits],
        [h.score for h in neighbors_or_hits],
    )


# -- generations ------------------------------------------------------------


class TestGenerations:
    def test_flat_layout_is_generation_zero(self, tmp_path):
        assert generations.read_current(tmp_path) is None
        assert generations.active_root(tmp_path) == tmp_path
        assert generations.generation_seq(None) == 0
        assert generations.generation_seq(".") == 0

    def test_prepare_commit_roundtrip(self, tmp_path):
        rel, path = generations.prepare_generation(tmp_path)
        assert rel == "generations/gen-00001"
        assert path.is_dir()
        generations.commit_generation(tmp_path, rel)
        assert generations.read_current(tmp_path) == rel
        assert generations.active_root(tmp_path) == path
        assert generations.generation_seq(rel) == 1
        # the next prepare sees both the directory and the pointer
        rel2, _ = generations.prepare_generation(tmp_path)
        assert rel2 == "generations/gen-00002"
        assert generations.list_generations(tmp_path) == [rel, rel2]

    def test_clone_links_store_artifacts(self, tmp_path, model):
        src = tmp_path / "idx"
        store, _ = _fill_store(src, 40, shard_size=16)
        rel, dst = generations.prepare_generation(src)
        n = generations.clone_store(src, dst)
        assert n >= store.n_shards * 2 + 1  # shards + meta + manifest
        clone = EmbeddingStore.open(dst, verify=True)
        assert len(clone) == len(store)
        # shard bytes are shared, not copied (immutable once flushed)
        a_shard = next(src.glob("shard-*.npy"))
        assert (dst / a_shard.name).stat().st_ino == a_shard.stat().st_ino
        # generations/ and CURRENT never leak into a clone
        assert not (dst / "generations").exists()
        assert not (dst / "CURRENT").exists()

    def test_swap_failpoint_aborts_cleanly(self, tmp_path):
        rel1, _ = generations.prepare_generation(tmp_path)
        generations.commit_generation(tmp_path, rel1)
        rel2, _ = generations.prepare_generation(tmp_path)
        faults.configure("serving.swap=raise")
        with pytest.raises(faults.FaultInjected):
            generations.commit_generation(tmp_path, rel2)
        # the old pointer survived the aborted commit
        assert generations.read_current(tmp_path) == rel1


# -- range planning ---------------------------------------------------------


class TestShardRanges:
    def test_blocks_replicate_greedy_coalescing(self):
        # shards of 5 rows coalesce in pairs under a 10-row budget
        offsets = [0, 5, 10, 15, 20, 25]
        assert scoring_block_offsets(offsets, block_rows=10) == [0, 10, 20, 25]
        # a shard bigger than the budget stands alone
        assert scoring_block_offsets([0, 30, 35], block_rows=10) == [0, 30, 35]

    def test_ranges_cover_disjointly(self):
        offsets = list(range(0, 40001, 5000))  # 8 shards x 5000 rows
        ranges = shard_ranges(offsets, 4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 40000
        for (_, stop), (start, _) in zip(ranges, ranges[1:]):
            assert stop == start
        assert 1 <= len(ranges) <= 4
        bounds = set(scoring_block_offsets(offsets))
        for start, stop in ranges:
            assert start in bounds and stop in bounds

    def test_small_corpus_collapses_to_one_range(self):
        # everything fits one scoring block: a single worker sweeps it
        # (splitting would change GEMM widths and break bit-for-bit)
        assert shard_ranges([0, 100, 200], 4) == [(0, 200)]

    def test_empty(self):
        assert shard_ranges([0], 4) == []
        assert shard_ranges([], 4) == []


class TestSliceRows:
    def test_subview_matches_dense_slice(self, tmp_path):
        store, vectors = _fill_store(tmp_path / "idx", 50, shard_size=16)
        view = store.vectors()
        for start, stop in [(0, 50), (10, 40), (16, 32), (3, 3), (48, 50)]:
            sub = view.slice_rows(start, stop)
            assert len(sub) == stop - start
            np.testing.assert_array_equal(
                np.asarray(sub.snapshot().take(
                    np.arange(len(sub)))),
                np.asarray(view.snapshot().take(np.arange(start, stop))),
            )

    def test_interior_blocks_are_shared(self, tmp_path):
        store, _ = _fill_store(tmp_path / "idx", 48, shard_size=16)
        view = store.vectors()
        sub = view.slice_rows(16, 32)  # exactly the middle shard
        (_, sub_block), = list(sub.iter_blocks())
        blocks = [b for _, b in view.iter_blocks()]
        assert any(sub_block is b for b in blocks)  # zero-copy share

    def test_out_of_range_clamped(self, tmp_path):
        store, _ = _fill_store(tmp_path / "idx", 10, shard_size=4)
        view = store.vectors()
        assert len(view.slice_rows(-5, 99)) == 10
        assert len(view.slice_rows(7, 3)) == 0


# -- pool correctness -------------------------------------------------------


class TestPoolMerge:
    def test_single_range_matches_reference(self, tmp_path, model):
        store, vectors = _fill_store(tmp_path / "idx", 120, shard_size=32)
        queries = _queries(vectors)
        reference = _reference(model, store, queries, k=7)
        coordinator = ServingCoordinator(
            model, tmp_path / "idx", n_workers=2, calibrate=True
        )
        coordinator.activate(".", store)
        try:
            hit_lists, n_rows, gen = coordinator.query_batch(
                queries, top_k=7, threshold=None, timeout_s=120
            )
            assert n_rows == 120 and gen == "."
            for ref, hits in zip(reference, hit_lists):
                assert _rows_scores(ref) == _rows_scores(hits)
        finally:
            coordinator.close()

    def test_multi_range_merge_is_bit_for_bit(self, tmp_path, model):
        # 3 shards of 7000 rows: each exceeds half the 8192-row scoring
        # budget, so each is its own block -> 3 ranges for 3 workers
        store, vectors = _fill_store(
            tmp_path / "idx", 21000, shard_size=7000
        )
        assert shard_ranges(store.shard_offsets(), 3) == [
            (0, 7000), (7000, 14000), (14000, 21000)
        ]
        queries = _queries(vectors, n=3)
        coordinator = ServingCoordinator(
            model, tmp_path / "idx", n_workers=3, calibrate=True
        )
        coordinator.activate(".", store)
        try:
            for k, threshold in [(10, None), (5, 0.5), (None, 0.9)]:
                reference = _reference(
                    model, store, queries, k=k, threshold=threshold
                )
                hit_lists, _, _ = coordinator.query_batch(
                    queries, top_k=k, threshold=threshold, timeout_s=300
                )
                for ref, hits in zip(reference, hit_lists):
                    assert _rows_scores(ref) == _rows_scores(hits)
        finally:
            coordinator.close()

    def test_empty_store(self, tmp_path, model):
        store = EmbeddingStore.create(tmp_path / "idx", dim=DIM)
        coordinator = ServingCoordinator(
            model, tmp_path / "idx", n_workers=2
        )
        coordinator.activate(".", store)
        try:
            hit_lists, n_rows, _ = coordinator.query_batch(
                [_encoding(0, np.zeros(DIM))], top_k=5, threshold=None
            )
            assert hit_lists == [[]] and n_rows == 0
        finally:
            coordinator.close()


class TestPoolCandidates:
    """Tiered-backend serving: candidate-restricted worker rerank."""

    def _candidate_reference(self, model, store, queries, cands, k):
        index = BruteForceIndex(
            model, store.vectors().snapshot(), store.callee_counts(),
            calibrate=True,
        )
        out = []
        for query, rows in zip(queries, cands):
            scores = index.score_matrix([query], rows)[0]
            top = select_top_k(scores, rows, k)
            out.append((
                [int(rows[p]) for p in top],
                [float(scores[p]) for p in top],
            ))
        return out

    def test_fixed_candidate_merge_is_bit_for_bit(self, tmp_path, model):
        # same 3-block layout as the full-sweep merge test; candidates
        # deliberately straddle all three ranges, plus one query whose
        # candidates sit entirely in the first range (the other workers
        # must contribute empty partials)
        store, vectors = _fill_store(
            tmp_path / "idx", 21000, shard_size=7000
        )
        queries = _queries(vectors, n=3)
        rng = np.random.default_rng(7)
        cands = [
            np.sort(rng.choice(21000, size=300, replace=False)),
            np.sort(rng.choice(21000, size=80, replace=False)),
            np.sort(rng.choice(7000, size=50, replace=False)),
        ]
        reference = self._candidate_reference(
            model, store, queries, cands, k=10
        )
        coordinator = ServingCoordinator(
            model, tmp_path / "idx", n_workers=3, calibrate=True
        )
        coordinator.activate(".", store)
        try:
            hit_lists, n_rows, _ = coordinator.query_batch(
                queries, top_k=10, threshold=None, timeout_s=300,
                candidates=cands,
            )
            assert n_rows == 21000
            for (ref_rows, ref_scores), hits in zip(reference, hit_lists):
                assert [h.row for h in hits] == ref_rows
                assert [h.score for h in hits] == ref_scores
        finally:
            coordinator.close()

    def test_threshold_applies_inside_candidates(self, tmp_path, model):
        store, vectors = _fill_store(tmp_path / "idx", 120, shard_size=32)
        queries = _queries(vectors, n=2)
        cands = [np.arange(0, 120, 2), np.arange(1, 120, 2)]
        coordinator = ServingCoordinator(
            model, tmp_path / "idx", n_workers=2, calibrate=True
        )
        coordinator.activate(".", store)
        try:
            hit_lists, _, _ = coordinator.query_batch(
                queries, top_k=50, threshold=0.5, timeout_s=120,
                candidates=cands,
            )
            for hits, rows in zip(hit_lists, cands):
                allowed = set(rows.tolist())
                assert all(h.row in allowed for h in hits)
                assert all(h.score >= 0.5 for h in hits)
        finally:
            coordinator.close()

    def test_pooled_ivf_pq_matches_single_process(self, tmp_path, model):
        # the tiered backend computes the candidate set once in the
        # coordinator process; pooled rerank must reproduce the
        # single-process result bit for bit
        root = tmp_path / "idx"
        store, vectors = _fill_store(root, 900, shard_size=128)
        queries = _queries(vectors, n=4)
        results = {}
        for workers in (1, 2):
            engine = AsteriaEngine(
                EngineConfig(
                    index_root=str(root), serve_workers=workers,
                    backend="ivf-pq", ann_nprobe=4, ann_rerank=8,
                ),
                model=model,
            )
            try:
                results[workers] = engine.query_batch([
                    QueryRequest(encoding=q, top_k=10, threshold=None)
                    for q in queries
                ])
            finally:
                engine.close()
        for solo, pooled in zip(results[1], results[2]):
            assert _rows_scores(solo.hits) == _rows_scores(pooled.hits)


class TestPoolChaos:
    def test_killed_worker_is_replaced_rankings_identical(
        self, tmp_path, model
    ):
        from repro.obs.metrics import MetricsRegistry

        store, vectors = _fill_store(tmp_path / "idx", 120, shard_size=32)
        queries = _queries(vectors)
        reference = _reference(model, store, queries, k=5)
        # exactly one worker anywhere in the pool dies mid-sweep; the
        # ticket directory bounds the kill across processes
        faults.configure(
            "serving.worker=kill*1", state_dir=str(tmp_path / "tickets")
        )
        registry = MetricsRegistry()
        coordinator = ServingCoordinator(
            model, tmp_path / "idx", n_workers=2, registry=registry,
            calibrate=True,
        )
        coordinator.activate(".", store)
        try:
            hit_lists, _, _ = coordinator.query_batch(
                queries, top_k=5, threshold=None, timeout_s=120
            )
            for ref, hits in zip(reference, hit_lists):
                assert _rows_scores(ref) == _rows_scores(hits)
            assert registry.value("repro_serve_worker_restarts_total") >= 1
            assert registry.value("repro_serve_task_retries_total") >= 1
            # the replacement is alive in the dead worker's slot
            info = coordinator.workers_info()
            assert len(info) == 2 and all(w["alive"] for w in info)
        finally:
            coordinator.close()

    def test_transient_raise_is_retried(self, tmp_path, model):
        store, vectors = _fill_store(tmp_path / "idx", 60, shard_size=32)
        queries = _queries(vectors, n=2)
        reference = _reference(model, store, queries, k=5)
        faults.configure(
            "serving.worker=raise*1", state_dir=str(tmp_path / "tickets")
        )
        coordinator = ServingCoordinator(
            model, tmp_path / "idx", n_workers=2, calibrate=True
        )
        coordinator.activate(".", store)
        try:
            hit_lists, _, _ = coordinator.query_batch(
                queries, top_k=5, threshold=None, timeout_s=120
            )
            for ref, hits in zip(reference, hit_lists):
                assert _rows_scores(ref) == _rows_scores(hits)
        finally:
            coordinator.close()

    def test_poison_sweep_fails_after_bounded_attempts(
        self, tmp_path, model
    ):
        store, vectors = _fill_store(tmp_path / "idx", 60, shard_size=32)
        faults.configure("serving.worker=raise")  # every attempt raises
        pool = ShardWorkerPool(model, n_workers=2)
        try:
            with pytest.raises(SweepError, match="failed 3 time"):
                pool.sweep(
                    str(store.root), [(0, 60)],
                    np.stack([vectors[0]]), np.array([1]),
                    k=5, threshold=None, calibrate=True, timeout_s=120,
                )
        finally:
            pool.close()

    def test_close_terminates_workers(self, tmp_path, model):
        pool = ShardWorkerPool(model, n_workers=2)
        pids = [w["pid"] for w in pool.workers_info()]
        assert all(w["alive"] for w in pool.workers_info())
        pool.close()
        pool.close()  # idempotent
        import os

        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: no such process


# -- engine integration -----------------------------------------------------


class TestEngineServing:
    def _engine(self, tmp_path, model, workers=2, n=150, shard=64):
        root = tmp_path / "idx"
        store, vectors = _fill_store(root, n, shard_size=shard)
        engine = AsteriaEngine(
            EngineConfig(index_root=str(root), serve_workers=workers),
            model=model,
        )
        return engine, store, vectors

    def test_query_is_generation_tagged_and_exact(self, tmp_path, model):
        engine, store, vectors = self._engine(tmp_path, model)
        queries = _queries(vectors, n=1)
        reference = _reference(model, store, queries, k=5)
        try:
            result = engine.query(
                QueryRequest(encoding=queries[0], top_k=5, threshold=None)
            )
            assert result.generation == "."
            assert result.n_rows == 150
            assert _rows_scores(result.hits) == _rows_scores(reference[0])
            batch = engine.query_batch([
                QueryRequest(encoding=q, top_k=5, threshold=None)
                for q in _queries(vectors, n=3)
            ])
            assert all(r.generation == "." for r in batch)
        finally:
            engine.close()

    def test_in_memory_store_falls_back_in_process(self, model):
        engine = AsteriaEngine(
            EngineConfig(serve_workers=4), model=model
        )
        try:
            assert engine.coordinator is None
            result = engine.query(QueryRequest(
                encoding=_encoding(0, np.zeros(DIM)), top_k=3,
                threshold=None,
            ))
            assert result.generation == ""  # in-process sweep path
        finally:
            engine.close()

    def test_stats_and_close(self, tmp_path, model):
        engine, _, vectors = self._engine(tmp_path, model)
        try:
            engine.query(QueryRequest(
                encoding=_encoding(0, vectors[0]), top_k=3, threshold=None
            ))
            stats = engine.stats()
            assert stats.serve_workers == 2
            assert stats.active_generation == 0
            assert stats.pool_workers_alive == 2
            assert len(stats.pool_workers) == 2
            assert stats.n_index_swaps == 0
            assert engine.obs.value(
                "repro_serve_worker_queries_total"
            ) >= 1
        finally:
            engine.close()
        assert engine.pool_workers() == []
        # close is sticky: queries keep working via the in-process path
        result = engine.query(QueryRequest(
            encoding=_encoding(0, vectors[0]), top_k=3, threshold=None
        ))
        assert result.generation == ""

    def test_manual_swap_retags_new_queries(self, tmp_path, model):
        engine, store, vectors = self._engine(tmp_path, model)
        try:
            coordinator = engine.coordinator
            rel, path = generations.prepare_generation(store.root)
            generations.clone_store(store.root, path)
            new_store = EmbeddingStore.open(path, verify=False)
            extra = np.random.default_rng(9).normal(size=(30, DIM))
            for i, vec in enumerate(extra):
                new_store.add(_encoding(150 + i, vec))
            new_store.flush()
            coordinator.swap_to(rel, store=new_store)
            result = engine.query(QueryRequest(
                encoding=_encoding(0, vectors[0]), top_k=3, threshold=None
            ))
            assert result.generation == rel
            assert result.n_rows == 180
            assert engine.stats().active_generation == 1
            assert engine.stats().n_index_swaps == 1
        finally:
            engine.close()

    def test_ingest_builds_and_swaps_new_generation(self, tmp_path, model):
        engine, store, vectors = self._engine(tmp_path, model)
        try:
            assert engine.coordinator is not None
            result = engine.ingest(IngestRequest(
                corpus_images=2, corpus_seed=5
            ))
            assert result.n_rows_total > 150
            assert generations.read_current(store.root) \
                == "generations/gen-00001"
            query = engine.query(QueryRequest(
                encoding=_encoding(0, vectors[0]), top_k=3, threshold=None
            ))
            assert query.generation == "generations/gen-00001"
            assert query.n_rows == result.n_rows_total
            assert engine.stats().n_index_swaps == 1
            # the flat store (old generation) is untouched on disk:
            # the clone hard-links shards and appends never mutate them
            flat = EmbeddingStore.open(
                tmp_path / "idx", migrate=False, verify=True
            )
            assert flat.n_flushed == 150
        finally:
            engine.close()

    def test_swap_failpoint_keeps_old_generation_serving(
        self, tmp_path, model
    ):
        engine, store, vectors = self._engine(tmp_path, model)
        try:
            coordinator = engine.coordinator
            rel, path = generations.prepare_generation(store.root)
            generations.clone_store(store.root, path)
            new_store = EmbeddingStore.open(path, verify=False)
            faults.configure("serving.swap=raise")
            with pytest.raises(faults.FaultInjected):
                coordinator.swap_to(rel, store=new_store)
            faults.clear()
            # the abort left the old generation serving, swaps untouched
            result = engine.query(QueryRequest(
                encoding=_encoding(0, vectors[0]), top_k=3, threshold=None
            ))
            assert result.generation == "."
            assert result.n_rows == 150
            assert engine.stats().n_index_swaps == 0
            assert generations.read_current(store.root) is None
        finally:
            engine.close()

    def test_sweep_error_surfaces_as_engine_error(self, tmp_path, model):
        engine, _, vectors = self._engine(tmp_path, model)
        try:
            faults.configure("serving.worker=raise")
            with pytest.raises(EngineError, match="parallel sweep failed"):
                engine.query(QueryRequest(
                    encoding=_encoding(0, vectors[0]), top_k=3,
                    threshold=None,
                ))
        finally:
            faults.clear()
            engine.close()


# -- the headline guarantee: uninterrupted stream across a hot swap ---------


class TestHotSwapStorm:
    def test_storm_across_swap_is_generation_consistent(
        self, tmp_path, model
    ):
        root = tmp_path / "idx"
        store, vectors = _fill_store(root, 300, shard_size=64)
        engine = AsteriaEngine(
            EngineConfig(index_root=str(root), serve_workers=2),
            model=model,
        )
        rows_by_generation = {".": 300, "generations/gen-00001": 360}
        errors = []
        observations = []
        stop = threading.Event()

        def storm(worker_id):
            i = 0
            while not stop.is_set():
                try:
                    result = engine.query(QueryRequest(
                        encoding=_encoding(
                            worker_id, vectors[(worker_id * 31 + i) % 300]
                        ),
                        top_k=5, threshold=None,
                    ))
                    # every response names one generation, and its row
                    # count matches that generation exactly -- a torn
                    # merge (rows from both corpora) cannot satisfy this
                    assert result.generation in rows_by_generation
                    assert result.n_rows == rows_by_generation[
                        result.generation
                    ]
                    observations.append(result.generation)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(repr(exc))
                    return
                i += 1

        threads = [
            threading.Thread(target=storm, args=(t,), daemon=True)
            for t in range(4)
        ]
        try:
            coordinator = engine.coordinator
            for thread in threads:
                thread.start()
            # let the storm establish itself on the old generation
            deadline = 100
            while len(observations) < 20 and deadline:
                stop.wait(0.05)
                deadline -= 1
            # build + swap in a new generation mid-stream
            rel, path = generations.prepare_generation(root)
            generations.clone_store(root, path)
            new_store = EmbeddingStore.open(path, verify=False)
            extra = np.random.default_rng(5).normal(size=(60, DIM))
            for i, vec in enumerate(extra):
                new_store.add(_encoding(300 + i, vec))
            new_store.flush()
            before = len(observations)
            coordinator.swap_to(rel, store=new_store)
            # keep the storm going long enough to observe the flip
            deadline = 200
            while deadline and not any(
                g == rel for g in observations[before:]
            ):
                stop.wait(0.05)
                deadline -= 1
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            engine.close()
        assert not errors, errors
        seen = set(observations)
        assert seen == {".", rel}  # both generations served, nothing else
        assert engine.obs.value("repro_index_swaps_total") == 1


# -- HTTP surface -----------------------------------------------------------


class TestServerSurface:
    @pytest.fixture()
    def server(self, tmp_path, model):
        root = tmp_path / "idx"
        _fill_store(root, 150, shard_size=64)
        engine = AsteriaEngine(
            EngineConfig(index_root=str(root), serve_workers=2),
            model=model,
        )
        engine.coordinator  # warm the pool like serve() does
        server = EngineServer(("127.0.0.1", 0), engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        engine.close()
        thread.join(timeout=10)

    def _get(self, server, path):
        with urllib.request.urlopen(server.url + path, timeout=30) as r:
            return r.status, json.loads(r.read())

    def test_healthz_reports_pool(self, server):
        status, body = self._get(server, "/healthz")
        assert status == 200
        assert body["serve_workers"] == 2
        assert body["active_generation"] == 0
        assert body["pool_workers_alive"] == 2
        assert len(body["pool_workers"]) == 2
        assert all(
            set(w) >= {"worker", "pid", "alive"}
            for w in body["pool_workers"]
        )

    def test_stats_report_pool(self, server):
        status, body = self._get(server, "/v1/stats")
        assert status == 200
        assert body["serve_workers"] == 2
        assert body["pool_workers_alive"] == 2
        assert body["n_index_swaps"] == 0

    def test_shutdown_reaps_workers_and_snapshots_counters(
        self, tmp_path, model
    ):
        import os

        root = tmp_path / "idx2"
        _, vectors = _fill_store(root, 150, shard_size=64)
        engine = AsteriaEngine(
            EngineConfig(index_root=str(root), serve_workers=2),
            model=model,
        )
        engine.query(QueryRequest(
            encoding=_encoding(0, vectors[0]), top_k=3, threshold=None
        ))
        pids = [w["pid"] for w in engine.pool_workers()]
        assert len(pids) == 2
        server = EngineServer(("127.0.0.1", 0), engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            request = urllib.request.Request(
                server.url + "/v1/shutdown", data=b"{}",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                body = json.loads(response.read())
            assert body["status"] == "shutting down"
            # the final snapshot carries the per-worker sweep counters
            assert "repro_serve_worker_queries_total" in body["stats"]
            # no orphaned children survive the drain
            for pid in pids:
                with pytest.raises(OSError):
                    os.kill(pid, 0)
        finally:
            server.shutdown()
            server.server_close()
            engine.close()
            thread.join(timeout=10)
