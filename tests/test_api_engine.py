"""Tests for the unified AsteriaEngine facade (`repro.api`).

Covers the typed config (dict/file/env/args loading), the micro-batcher,
the engine lifecycle (encode/ingest/query/compare/train/stats), the
typed error hierarchy, thread-safety under a concurrent query storm, and
the deprecated compatibility shims.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.api import (
    AsteriaEngine,
    BadRequestError,
    CompareRequest,
    EncodeRequest,
    EngineConfig,
    IndexStoreError,
    IngestRequest,
    InputNotFoundError,
    MicroBatcher,
    ModelNotFoundError,
    QueryRequest,
    TrainRequest,
)
from repro.cli import build_parser
from repro.compiler.pipeline import compile_package
from repro.lang.generator import ProgramGenerator


# -- EngineConfig -------------------------------------------------------------------


class TestEngineConfig:
    def test_dict_round_trip(self):
        config = EngineConfig(model_path="m.npz", jobs=3, threshold=0.7,
                              backend="lsh", micro_batch_size=8)
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_unknown_key_is_clean_error(self):
        with pytest.raises(BadRequestError, match="unknown EngineConfig"):
            EngineConfig.from_dict({"jbos": 2})

    def test_bad_values_are_clean_errors(self):
        with pytest.raises(BadRequestError):
            EngineConfig(jobs=0)
        with pytest.raises(BadRequestError):
            EngineConfig(backend="annoy")
        with pytest.raises(BadRequestError):
            EngineConfig(micro_batch_wait_ms=-1)

    def test_ann_knob_validation(self):
        config = EngineConfig(backend="ivf-pq", ann_nprobe=4,
                              ann_rerank=16, ann_lists=128)
        assert EngineConfig.from_dict(config.to_dict()) == config
        with pytest.raises(BadRequestError, match="ann_nprobe"):
            EngineConfig(ann_nprobe=0)
        with pytest.raises(BadRequestError, match="ann_rerank"):
            EngineConfig(ann_rerank=0)
        with pytest.raises(BadRequestError, match="ann_lists"):
            EngineConfig(ann_lists=-1)
        # unknown backends list the valid choices in the message
        with pytest.raises(BadRequestError, match="ivf-pq"):
            EngineConfig(backend="faiss")

    def test_from_file(self, tmp_path):
        path = tmp_path / "engine.json"
        path.write_text(json.dumps({"model_path": "m.npz", "top_k": 3}))
        config = EngineConfig.from_file(path)
        assert config.model_path == "m.npz"
        assert config.top_k == 3
        with pytest.raises(BadRequestError, match="no config file"):
            EngineConfig.from_file(tmp_path / "nope.json")

    def test_from_env(self):
        environ = {
            "REPRO_MODEL_PATH": "m.npz",
            "REPRO_JOBS": "4",
            "REPRO_THRESHOLD": "0.5",
            "REPRO_CALIBRATE": "false",
            "UNRELATED": "ignored",
        }
        config = EngineConfig.from_env(environ)
        assert config.model_path == "m.npz"
        assert config.jobs == 4
        assert config.threshold == 0.5
        assert config.calibrate is False

    def test_from_env_bad_int(self):
        with pytest.raises(BadRequestError, match="integer"):
            EngineConfig.from_env({"REPRO_JOBS": "many"})

    def test_encoder_knobs_from_env(self):
        config = EngineConfig.from_env({
            "REPRO_ENCODE_DTYPE": "float32",
            "REPRO_ENCODE_BLOCK": "128",
        })
        assert config.encode_dtype == "float32"
        assert config.encode_block == 128
        assert EngineConfig.from_env({}).encode_dtype == "float64"
        assert EngineConfig.from_env({}).encode_block == 0
        with pytest.raises(BadRequestError, match="encode_dtype"):
            EngineConfig.from_env({"REPRO_ENCODE_DTYPE": "float16"})
        with pytest.raises(BadRequestError):
            EngineConfig.from_env({"REPRO_ENCODE_BLOCK": "-1"})

    def test_encoder_knobs_from_args(self):
        parser = build_parser()
        args = parser.parse_args([
            "search", "--model", "m.npz",
            "--encode-dtype", "float32", "--encode-block", "64",
        ])
        config = EngineConfig.from_args(args)
        assert config.encode_dtype == "float32"
        assert config.encode_block == 64
        args = parser.parse_args(["search", "--model", "m.npz"])
        unset = EngineConfig.from_args(args)
        assert unset.encode_dtype == "float64"
        assert unset.encode_block == 0

    def test_from_args_shared_plumbing(self):
        """One adapter covers every subcommand's cache/jobs/batch options."""
        parser = build_parser()
        args = parser.parse_args([
            "index", "build", "--model", "m.npz", "--output", "idx",
            "--jobs", "2", "--cache-dir", "cache", "--batch-size", "32",
            "--shard-size", "64", "--seed", "9",
        ])
        config = EngineConfig.from_args(args, index_root=args.output)
        assert config.model_path == "m.npz"
        assert config.index_root == "idx"
        assert config.jobs == 2
        assert config.cache_dir == "cache"
        assert config.encode_batch_size == 32
        assert config.shard_size == 64
        assert config.seed == 9

        args = parser.parse_args([
            "search", "--model", "m.npz", "--jobs", "3",
        ])
        config = EngineConfig.from_args(args)
        assert (config.model_path, config.jobs) == ("m.npz", 3)
        assert config.cache_dir is None  # unset options keep defaults

    def test_merged(self):
        config = EngineConfig(jobs=1).merged(jobs=5)
        assert config.jobs == 5
        with pytest.raises(BadRequestError):
            EngineConfig().merged(jobs=0)


# -- MicroBatcher -------------------------------------------------------------------


class TestMicroBatcher:
    def test_single_encode(self):
        calls = []

        def encode(trees):
            calls.append(list(trees))
            return np.arange(len(trees), dtype=float).reshape(-1, 1) + 100

        batcher = MicroBatcher(encode, max_batch_size=4, max_wait_s=0)
        assert batcher.encode("t0") == pytest.approx([100.0])
        assert calls == [["t0"]]
        assert batcher.stats.n_batches == 1
        assert not batcher.stats.coalesced()

    def test_concurrent_calls_coalesce(self):
        release = threading.Event()

        def encode(trees):
            release.wait(timeout=5)
            return np.array([[float(t)] for t in trees])

        batcher = MicroBatcher(encode, max_batch_size=16, max_wait_s=0.05)
        results = {}

        def worker(i):
            results[i] = batcher.encode(i)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        time.sleep(0.2)  # let every worker enqueue behind the leader
        release.set()
        for t in threads:
            t.join(timeout=10)
        assert sorted(results) == list(range(8))
        for i, vector in results.items():
            assert vector == pytest.approx([float(i)])
        assert batcher.stats.n_items == 8
        assert batcher.stats.coalesced()

    def test_errors_propagate_to_every_caller(self):
        def encode(trees):
            raise RuntimeError("model exploded")

        batcher = MicroBatcher(encode, max_batch_size=4, max_wait_s=0)
        with pytest.raises(RuntimeError, match="model exploded"):
            batcher.encode("t")
        # the batcher must stay usable after a failed batch
        with pytest.raises(RuntimeError, match="model exploded"):
            batcher.encode("t2")

    def test_batch_size_validation(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda trees: np.zeros((len(trees), 1)),
                         max_batch_size=0)

    def test_encode_many_single_caller(self):
        calls = []

        def encode(trees):
            calls.append(list(trees))
            return np.array([[float(t)] for t in trees])

        batcher = MicroBatcher(encode, max_batch_size=8, max_wait_s=0)
        out = batcher.encode_many([3, 1, 4, 1, 5])
        assert out.shape == (5, 1)
        assert out[:, 0] == pytest.approx([3.0, 1.0, 4.0, 1.0, 5.0])
        # one caller, one batch: the whole list coalesced
        assert calls == [[3, 1, 4, 1, 5]]
        assert batcher.stats.coalesced()

    def test_encode_many_spans_batches_beyond_max(self):
        def encode(trees):
            return np.array([[float(t)] for t in trees])

        batcher = MicroBatcher(encode, max_batch_size=2, max_wait_s=0)
        out = batcher.encode_many(list(range(5)))
        assert out[:, 0] == pytest.approx([0.0, 1.0, 2.0, 3.0, 4.0])
        assert batcher.stats.n_items == 5
        assert batcher.stats.max_batch_size <= 2

    def test_encode_many_empty(self):
        batcher = MicroBatcher(
            lambda trees: np.zeros((len(trees), 1)), max_batch_size=2,
            max_wait_s=0,
        )
        assert batcher.encode_many([]).size == 0
        assert batcher.stats.n_batches == 0

    def test_overflow_beyond_max_batch_size(self):
        """More waiters than one batch can hold: follow-up leaders must
        be woken promptly and every caller must complete."""
        def encode(trees):
            time.sleep(0.01)
            return np.array([[float(t)] for t in trees])

        batcher = MicroBatcher(encode, max_batch_size=2, max_wait_s=0.005)
        results = {}

        def worker(i):
            results[i] = batcher.encode(i)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(6)]
        started = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        elapsed = time.perf_counter() - started
        assert sorted(results) == list(range(6))
        for i, vector in results.items():
            assert vector == pytest.approx([float(i)])
        assert batcher.stats.n_items == 6
        assert batcher.stats.max_batch_size <= 2
        # >= 3 batches of ~15ms each; far under the old 50ms-per-round
        # polling worst case (3 rounds x 50ms + encodes)
        assert elapsed < 0.15, f"overflow rounds too slow: {elapsed:.3f}s"


# -- engine fixtures ----------------------------------------------------------------


@pytest.fixture(scope="module")
def engine(trained_model):
    """An engine with a small firmware corpus ingested (in-memory)."""
    engine = AsteriaEngine(
        EngineConfig(micro_batch_wait_ms=10.0), model=trained_model
    )
    result = engine.ingest(IngestRequest(corpus_images=3, corpus_seed=4))
    assert result.n_rows_total > 0
    return engine


@pytest.fixture(scope="module")
def query_binary():
    package = ProgramGenerator(seed=33).generate_package("qpkg")
    return compile_package(package, "x86")


@pytest.fixture(scope="module")
def query_functions(engine, query_binary):
    encodings = engine.encode(EncodeRequest(binary=query_binary)).encodings
    assert len(encodings) >= 2
    return [e.name for e in encodings[:4]]


# -- lifecycle ----------------------------------------------------------------------


class TestEngineLifecycle:
    def test_model_required(self):
        with pytest.raises(ModelNotFoundError, match="no model"):
            AsteriaEngine(EngineConfig()).model

    def test_missing_checkpoint(self, tmp_path):
        config = EngineConfig(model_path=str(tmp_path / "nope.npz"))
        with pytest.raises(ModelNotFoundError, match="not found"):
            AsteriaEngine(config).model

    def test_encode(self, engine, query_binary):
        result = engine.encode(EncodeRequest(binary=query_binary))
        assert result.binary_name == query_binary.name
        dim = engine.model.config.hidden_dim
        for encoding in result.encodings:
            assert encoding.vector.shape == (dim,)

    def test_encode_unknown_function(self, engine, query_binary):
        with pytest.raises(BadRequestError, match="not found"):
            engine.encode(EncodeRequest(binary=query_binary,
                                        function="nope_fn"))

    def test_query_by_cve(self, engine):
        result = engine.query(QueryRequest(cve_id="CVE-2016-2105", top_k=5))
        assert result.query == "CVE-2016-2105"
        assert 0 < len(result.hits) <= 5
        scores = [hit.score for hit in result.hits]
        assert scores == sorted(scores, reverse=True)

    def test_query_unknown_cve(self, engine):
        with pytest.raises(BadRequestError, match="unknown CVE"):
            engine.query(QueryRequest(cve_id="CVE-1999-0000"))

    def test_query_needs_a_source(self, engine, query_binary):
        with pytest.raises(BadRequestError, match="query needs"):
            engine.query(QueryRequest())
        with pytest.raises(BadRequestError, match="function name"):
            engine.query(QueryRequest(binary=query_binary))

    def test_query_by_function_is_deterministic(self, engine, query_binary,
                                                query_functions):
        request = QueryRequest(binary=query_binary,
                               function=query_functions[0], top_k=5)
        first = engine.query(request)
        second = engine.query(request)
        assert [(h.row, h.score) for h in first.hits] \
            == [(h.row, h.score) for h in second.hits]
        assert first.query == f"{query_binary.name}:{query_functions[0]}"

    def test_query_batch_matches_serial(self, engine, query_binary,
                                        query_functions):
        requests = [
            QueryRequest(binary=query_binary, function=name, top_k=4)
            for name in query_functions
        ]
        serial = [engine.query(r) for r in requests]
        batched = engine.query_batch(requests)
        for a, b in zip(serial, batched):
            # same ranking; scores agree to float noise (the batched
            # path fuses Q queries into shared GEMMs, so the low-order
            # bits of the BLAS reductions may differ)
            assert [h.row for h in a.hits] == [h.row for h in b.hits]
            assert [h.score for h in a.hits] == pytest.approx(
                [h.score for h in b.hits], rel=1e-5, abs=1e-7
            )
            assert a.query == b.query

    def test_query_batch_mixed_sources_and_params(self, engine,
                                                  query_binary,
                                                  query_functions):
        requests = [
            QueryRequest(cve_id="CVE-2016-2105", top_k=3),
            QueryRequest(binary=query_binary,
                         function=query_functions[0], top_k=5),
            QueryRequest(cve_id="CVE-2016-2105", top_k=5, threshold=0.2),
        ]
        batched = engine.query_batch(requests)
        serial = [engine.query(r) for r in requests]
        for a, b in zip(serial, batched):
            assert a.query == b.query
            assert [h.row for h in a.hits] == [h.row for h in b.hits]
        assert len(batched[0].hits) <= 3

    def test_query_batch_counts_one_batch(self, engine):
        before = engine.stats()
        engine.query_batch([
            QueryRequest(cve_id="CVE-2016-2105", top_k=2),
            QueryRequest(cve_id="CVE-2014-4877", top_k=2),
        ])
        after = engine.stats()
        assert after.n_query_batches == before.n_query_batches + 1
        assert after.n_queries == before.n_queries + 2

    def test_query_batch_empty(self, engine):
        assert engine.query_batch([]) == []

    def test_query_batch_bad_member_raises(self, engine, query_binary):
        with pytest.raises(BadRequestError, match="not found"):
            engine.query_batch([
                QueryRequest(cve_id="CVE-2016-2105"),
                QueryRequest(binary=query_binary, function="nope"),
            ])

    def test_stats_report_index_footprint(self, engine):
        stats = engine.stats()
        assert stats.index_dtype == "float32"
        assert stats.index_vector_bytes > 0
        assert stats.ann_backend == "exact"
        assert stats.index_mmap is False  # in-memory engine store

    def test_top_k_defaults_from_config(self, engine):
        result = engine.query(QueryRequest(cve_id="CVE-2016-2105"))
        assert len(result.hits) <= engine.config.top_k

    def test_compare(self, engine, query_binary, query_functions):
        from repro.decompiler import decompile_function

        result = engine.compare(CompareRequest(
            binary1=query_binary, function1=query_functions[0],
            binary2=query_binary, function2=query_functions[0],
        ))
        fn = decompile_function(
            query_binary, query_binary.function_named(query_functions[0])
        )
        encoding = engine.model.encode_function(fn)
        assert result.ast_similarity == pytest.approx(
            engine.model.similarity(encoding, encoding, calibrate=False)
        )
        assert result.similarity == pytest.approx(
            engine.model.similarity(encoding, encoding)
        )

    def test_compare_unknown_function(self, engine, query_binary):
        with pytest.raises(BadRequestError, match="no function"):
            engine.compare(CompareRequest(
                binary1=query_binary, function1="nope",
                binary2=query_binary, function2="nope",
            ))

    def test_missing_binary_path(self, engine):
        with pytest.raises(InputNotFoundError, match="no such binary"):
            engine.encode(EncodeRequest(binary="/nope/missing.rbin"))

    def test_stats_never_loads_the_model(self, tmp_path):
        fresh = AsteriaEngine(EngineConfig(model_path=str(tmp_path / "x")))
        stats = fresh.stats()
        assert stats.model_loaded is False
        assert stats.model_fingerprint is None
        assert stats.index_rows == 0

    def test_stats_counters(self, engine):
        before = engine.stats()
        engine.query(QueryRequest(cve_id="CVE-2016-2105", top_k=2))
        after = engine.stats()
        assert after.n_queries == before.n_queries + 1
        assert after.index_rows == before.index_rows
        assert after.config == engine.config.to_dict()

    def test_encoder_stats_counters(self, trained_model, query_binary):
        fresh = AsteriaEngine(EngineConfig(), model=trained_model)
        assert fresh.stats().n_encoded_trees == 0
        result = fresh.encode(EncodeRequest(binary=query_binary))
        stats = fresh.stats()
        assert stats.n_encoded_trees == len(result.encodings) > 0
        assert stats.encode_block_rows >= 1

    def test_encode_dtype_flows_to_pipeline(self, trained_model,
                                            query_binary):
        fast = AsteriaEngine(
            EngineConfig(encode_dtype="float32"), model=trained_model
        )
        reference = AsteriaEngine(EngineConfig(), model=trained_model)
        f32 = fast.encode(EncodeRequest(binary=query_binary))
        f64 = reference.encode(EncodeRequest(binary=query_binary))
        assert f32.encodings[0].vector.dtype == np.float32
        assert f64.encodings[0].vector.dtype == np.float64
        for a, b in zip(f32.encodings, f64.encodings):
            np.testing.assert_allclose(a.vector, b.vector, atol=1e-5)

    def test_train_adopts_model(self, tmp_path):
        engine = AsteriaEngine(EngineConfig())
        result = engine.train(TrainRequest(
            packages=2, pairs=6, epochs=1,
            output_path=str(tmp_path / "trained.npz"),
        ))
        assert result.n_train > 0
        assert (tmp_path / "trained.npz").exists()
        assert engine.stats().model_loaded is True
        # the adopted model serves queries immediately
        engine.ingest(IngestRequest(corpus_images=2, corpus_seed=1))
        hits = engine.query(QueryRequest(cve_id="CVE-2011-0762", top_k=3))
        assert hits.n_rows > 0

    def test_make_service_honors_batch_size_override(self, engine):
        service = engine.make_service(encode_batch_size=256)
        assert service.pipeline.encode_batch_size == 256
        # the engine's own pipeline is untouched
        assert engine.pipeline.encode_batch_size \
            == engine.config.encode_batch_size
        default = engine.make_service()
        assert default.pipeline is engine.pipeline

    def test_stats_fingerprint_without_side_effects(self, trained_model,
                                                    tmp_path):
        # stats() must not build the pipeline/cache (no cache_dir mkdir)
        cache_dir = tmp_path / "never-created"
        engine = AsteriaEngine(EngineConfig(cache_dir=str(cache_dir)),
                               model=trained_model)
        stats = engine.stats()
        assert stats.model_loaded is True
        assert stats.model_fingerprint is None
        assert not cache_dir.exists()
        # once the pipeline exists, the fingerprint is reported
        engine.pipeline
        assert engine.stats().model_fingerprint is not None

    def test_ingest_images_and_binaries_together(self, trained_model,
                                                 query_binary):
        from repro.evalsuite.vulnsearch import build_firmware_dataset

        engine = AsteriaEngine(EngineConfig(), model=trained_model)
        dataset = build_firmware_dataset(n_images=2, seed=6)
        result = engine.ingest(IngestRequest(
            images=dataset.images, binaries=[query_binary],
        ))
        assert len(result.pipelines) == 2
        assert result.pipeline is result.pipelines[0]
        assert result.n_functions \
            == sum(stats.n_functions for stats in result.pipelines)
        assert result.n_rows_total == result.n_functions

    def test_ingest_empty_corpus_still_reports_stats(self, trained_model):
        engine = AsteriaEngine(EngineConfig(), model=trained_model)
        result = engine.ingest(IngestRequest(corpus_images=0))
        assert result.n_functions == 0
        assert result.pipeline is not None  # CLI prints its summary
        assert result.pipeline.summary()

    def test_open_index_requires_root(self, engine):
        with pytest.raises(IndexStoreError):
            engine.open_index()

    def test_open_missing_index(self, trained_model, tmp_path):
        config = EngineConfig(index_root=str(tmp_path / "nope"))
        with pytest.raises(IndexStoreError, match="no manifest"):
            AsteriaEngine(config, model=trained_model).open_index()

    def test_create_existing_index(self, trained_model, tmp_path):
        root = str(tmp_path / "idx")
        engine = AsteriaEngine(EngineConfig(index_root=root),
                               model=trained_model)
        engine.create_index()
        with pytest.raises(IndexStoreError, match="already exists"):
            AsteriaEngine(EngineConfig(index_root=root),
                          model=trained_model).create_index()

    def test_durable_index_round_trip(self, trained_model, tmp_path):
        root = str(tmp_path / "fw")
        writer = AsteriaEngine(EngineConfig(index_root=root),
                               model=trained_model)
        ingest = writer.ingest(IngestRequest(corpus_images=2, corpus_seed=5))
        reader = AsteriaEngine(EngineConfig(index_root=root),
                               model=trained_model)
        reader.open_index()
        result = reader.query(QueryRequest(cve_id="CVE-2016-2105",
                                           top_k=3))
        assert result.n_rows == ingest.n_rows_total


# -- concurrency --------------------------------------------------------------------


class TestConcurrentQueries:
    N_THREADS = 16
    PER_THREAD = 3

    def test_storm_matches_serial_and_coalesces(self, engine, query_binary,
                                                query_functions):
        requests = [
            QueryRequest(binary=query_binary, function=name, top_k=5)
            for name in query_functions
        ]
        reference = {
            r.function: engine.query(r).hits for r in requests
        }
        batches_before = engine.stats().micro_batches

        results = []
        errors = []
        lock = threading.Lock()
        barrier = threading.Barrier(self.N_THREADS)

        def worker(i):
            barrier.wait()
            try:
                for j in range(self.PER_THREAD):
                    request = requests[(i + j) % len(requests)]
                    result = engine.query(request)
                    with lock:
                        results.append((request.function, result))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, errors
        assert len(results) == self.N_THREADS * self.PER_THREAD

        # bit-for-bit identical to the serial reference
        for function, result in results:
            expected = reference[function]
            assert [(h.row, h.score) for h in result.hits] \
                == [(h.row, h.score) for h in expected]

        # and the micro-batcher actually coalesced concurrent encodes
        stats = engine.stats()
        assert stats.micro_batches > batches_before
        assert stats.micro_batch_max > 1, (
            "16 barrier-started threads never shared a batch"
        )


# -- deprecated shims ---------------------------------------------------------------


class TestCompatibilityShims:
    def test_vulnerability_search_wraps_an_engine(self, trained_model):
        from repro.evalsuite.vulnsearch import VulnerabilitySearch

        search = VulnerabilitySearch(trained_model, threshold=0.8, jobs=2)
        assert isinstance(search.engine, AsteriaEngine)
        assert search.engine.config.jobs == 2
        assert search.pipeline is search.engine.pipeline
        assert search.cache is search.engine.cache
        # encode_library is the engine's shared CVE library
        assert search.encode_library() is search.engine.cve_library()

    def test_vulnerability_search_requires_model_or_engine(self):
        from repro.evalsuite.vulnsearch import VulnerabilitySearch

        with pytest.raises(ValueError, match="model or an engine"):
            VulnerabilitySearch()

    def test_search_service_builds_pipeline_via_engine(self, trained_model):
        from repro.index.search import SearchService
        from repro.index.store import EmbeddingStore
        from repro.pipeline import CorpusPipeline

        store = EmbeddingStore.in_memory(
            dim=trained_model.config.hidden_dim
        )
        service = SearchService(trained_model, store, jobs=2)
        assert isinstance(service.pipeline, CorpusPipeline)
        assert service.pipeline.jobs == 2


class TestEngineObservability:
    def test_stats_counters_are_registry_views(self, engine):
        before = engine.stats().n_queries
        engine.query(QueryRequest(cve_id="CVE-2016-2105", top_k=1))
        stats = engine.stats()
        assert stats.n_queries == before + 1
        assert stats.n_queries == int(engine.obs.value("repro_queries_total"))

    def test_query_emits_latency_histogram_and_span_metrics(self, engine):
        engine.query(QueryRequest(cve_id="CVE-2016-2105", top_k=1))
        latency = engine.obs.get("repro_query_seconds")
        assert latency is not None and latency.count >= 1
        # the ANN sweep under the query recorded its candidate sets
        assert engine.obs.value("repro_ann_queries_total") >= 1

    def test_metrics_text_is_scrapeable(self, engine):
        text = engine.metrics_text()
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_index_rows" in text
        assert "repro_model_loaded 1" in text

    def test_slow_query_threshold_counts_and_logs(self, trained_model,
                                                  caplog):
        import logging

        slow = AsteriaEngine(
            EngineConfig(slow_query_ms=0.0), model=trained_model
        )
        slow.ingest(IngestRequest(corpus_images=2, corpus_seed=4))
        with caplog.at_level(logging.WARNING, logger="repro.api.engine"):
            slow.query(QueryRequest(cve_id="CVE-2016-2105", top_k=1))
        assert slow.obs.value("repro_slow_queries_total") == 1
        slow_lines = [r for r in caplog.records if "slow query" in r.message]
        assert slow_lines
        # the log line carries the serialised span tree
        assert "engine.query" in slow_lines[0].getMessage()

    def test_slow_query_disabled_by_default(self, engine):
        before = engine.obs.value("repro_slow_queries_total")
        engine.query(QueryRequest(cve_id="CVE-2016-2105", top_k=1))
        assert engine.obs.value("repro_slow_queries_total") == before

    def test_flush_metrics_returns_snapshot(self, engine):
        snapshot = engine.flush_metrics()
        assert snapshot["repro_queries_total"]["series"][0]["value"] >= 1
        assert snapshot["repro_model_loaded"]["series"][0]["value"] == 1.0

    def test_microbatcher_coalescing_metrics(self, engine, query_binary):
        requests = [
            QueryRequest(binary=query_binary, function=e.name, top_k=1)
            for e in engine.encode(EncodeRequest(binary=query_binary)
                                   ).encodings[:4]
        ]
        engine.query_batch(requests)
        assert engine.obs.value("repro_microbatch_batches_total") >= 1
        assert engine.obs.value("repro_microbatch_items_total") >= len(
            requests
        )
        wait = engine.obs.get("repro_microbatch_wait_seconds")
        assert wait is not None and wait.count >= len(requests)
