"""Focused unit tests for the lifter and structurer internals."""

import pytest

from repro.compiler.cfg import build_cfg
from repro.compiler.ir import lower_function
from repro.compiler.codegen import select_instructions
from repro.compiler.pipeline import compile_function, library_function_defs
from repro.decompiler import decompile_binary
from repro.decompiler.lifter import LiftError, lift_function, BranchTerm, RetTerm
from repro.decompiler.structurer import structure_function
from repro.lang import nodes as N
from repro.lang.interp import Interpreter, run_decompiled
from repro.lang.nodes import FunctionDef, Node, Ops


def _fn(stmts, params=("a0",), local_vars=("v0",), name="f"):
    return FunctionDef(name, tuple(params), tuple(local_vars), N.block(*stmts))


def _decompile(fn, arch):
    binary = compile_function(fn, arch)
    return decompile_binary(binary)[0]


def _lift(fn, arch):
    binary = compile_function(fn, arch)
    record = binary.function_named(fn.name)
    from repro.disasm.disassembler import disassemble_function

    asm = disassemble_function(binary, record)
    cfg = build_cfg(asm)
    return cfg, lift_function(asm, cfg, binary)


class TestLifter:
    @pytest.mark.parametrize("arch", ("x86", "x64", "arm", "ppc"))
    def test_straight_line_statements(self, arch):
        fn = _fn([
            N.asg(N.var("v0"), N.binop(Ops.ADD, N.var("a0"), N.num(3))),
            N.ret(N.var("v0")),
        ])
        cfg, lifted = _lift(fn, arch)
        assert cfg.block_count == 1
        block = lifted[0]
        assert isinstance(block.terminator, RetTerm)
        assert block.terminator.value is not None
        assert len(block.statements) == 1
        stmt = block.statements[0]
        assert stmt.op in (Ops.ASG, Ops.ASG_ADD)

    @pytest.mark.parametrize("arch", ("x86", "ppc"))
    def test_expression_folding(self, arch):
        """Temps collapse: (a+1)*(a-2) comes back as one expression tree."""
        expr = N.binop(Ops.MUL,
                       N.binop(Ops.ADD, N.var("a0"), N.num(1)),
                       N.binop(Ops.SUB, N.var("a0"), N.num(2)))
        fn = _fn([N.asg(N.var("v0"), expr), N.ret(N.var("v0"))])
        _cfg, lifted = _lift(fn, arch)
        stmt = lifted[0].statements[0]
        assert stmt.op == Ops.ASG
        assert stmt.children[1].op == Ops.MUL
        assert stmt.children[1].children[0].op == Ops.ADD

    def test_branch_terminator_condition(self):
        fn = _fn([
            N.if_(N.binop(Ops.EQ, N.var("a0"), N.num(7)),
                  N.block(N.asg(N.var("v0"), N.call("lib_log", N.num(1))))),
            N.ret(N.var("v0")),
        ])
        _cfg, lifted = _lift(fn, "ppc")
        terminator = lifted[0].terminator
        assert isinstance(terminator, BranchTerm)
        assert terminator.op == Ops.NE  # negated source condition
        assert terminator.rhs.op == Ops.NUM

    def test_bare_call_statement(self):
        """A call whose result is unused still appears as a statement.

        Uses PPC, whose inline threshold (2 statements) keeps ``lib_free``
        (3 statements) as a real call.
        """
        body = N.block(
            N.asg(N.var("v0"), N.num(1)),
            Node(Ops.CALL, (N.var("a0"),), value="lib_free"),
            N.ret(N.var("v0")),
        )
        fn = FunctionDef("f", ("a0",), ("v0",), body)
        decompiled = _decompile(fn, "ppc")
        calls = [n for n in decompiled.ast.walk() if n.op == Ops.CALL]
        assert any(c.value == "lib_free" for c in calls)

    def test_string_literals_preserved(self):
        fn = _fn([
            N.asg(N.var("v0"), N.call("lib_checksum", N.string("seed"),
                                      N.var("a0"))),
            N.ret(N.var("v0")),
        ])
        decompiled = _decompile(fn, "x64")
        strings = [n.value for n in decompiled.ast.walk() if n.op == Ops.STR]
        assert "seed" in strings

    def test_unary_roundtrip(self):
        fn = _fn([
            N.asg(N.var("v0"), Node(Ops.NEG, (N.var("a0"),))),
            N.asg(N.var("v0"), Node(Ops.NOT, (N.var("v0"),))),
            N.ret(N.var("v0")),
        ])
        interp = Interpreter(library_function_defs())
        for arch in ("x86", "arm", "ppc"):
            decompiled = _decompile(fn, arch)
            for arg in (-5, 0, 9):
                assert run_decompiled(interp, decompiled.ast, 1, [arg]) == \
                    interp.run(fn, [arg]), arch


class TestStructurer:
    def test_nested_if(self):
        fn = _fn([
            N.if_(N.binop(Ops.GT, N.var("a0"), N.num(0)),
                  N.block(
                      N.if_(N.binop(Ops.LT, N.var("a0"), N.num(10)),
                            N.block(N.asg(N.var("v0"), N.num(1)))))),
            N.ret(N.var("v0")),
        ], local_vars=("v0",))
        fn = FunctionDef("f", ("a0",), ("v0",), N.block(
            N.asg(N.var("v0"), N.num(0)), *fn.body.children
        ))
        decompiled = _decompile(fn, "ppc")
        ifs = [n for n in decompiled.ast.walk() if n.op == Ops.IF]
        assert len(ifs) == 2
        # inner if nested within outer's then-block
        outer = ifs[0]
        assert any(n.op == Ops.IF for n in outer.children[1].walk())

    def test_if_else_with_nested_loop(self):
        fn = _fn([
            N.asg(N.var("v0"), N.num(0)),
            N.if_(N.binop(Ops.GT, N.var("a0"), N.num(2)),
                  N.block(
                      N.asg(N.var("t0"), N.num(0)),
                      N.while_(N.binop(Ops.LT, N.var("t0"), N.var("a0")),
                               N.block(
                                   N.binop(Ops.ASG_ADD, N.var("v0"), N.num(3)),
                                   N.asg(N.var("t0"),
                                         N.binop(Ops.ADD, N.var("t0"),
                                                 N.num(1)))))),
                  N.block(N.asg(N.var("v0"), N.num(99)))),
            N.ret(N.var("v0")),
        ], local_vars=("v0", "t0"))
        interp = Interpreter(library_function_defs())
        for arch in ("x86", "x64", "arm", "ppc"):
            decompiled = _decompile(fn, arch)
            for arg in (0, 3, 7):
                assert run_decompiled(interp, decompiled.ast, 1, [arg]) == \
                    interp.run(fn, [arg]), (arch, arg)

    def test_break_reconstructed(self):
        fn = _fn([
            N.asg(N.var("v0"), N.num(0)),
            N.asg(N.var("t0"), N.num(0)),
            N.while_(N.binop(Ops.LT, N.var("t0"), N.num(100)),
                     N.block(
                         N.binop(Ops.ASG_ADD, N.var("v0"), N.num(1)),
                         N.if_(N.binop(Ops.GE, N.var("v0"), N.var("a0")),
                               N.block(Node(Ops.BREAK))),
                         N.asg(N.var("t0"),
                               N.binop(Ops.ADD, N.var("t0"), N.num(1))))),
            N.ret(N.var("v0")),
        ], local_vars=("v0", "t0"))
        decompiled = _decompile(fn, "ppc")
        assert any(n.op == Ops.BREAK for n in decompiled.ast.walk())
        interp = Interpreter(library_function_defs())
        for arg in (1, 5, 500):
            assert run_decompiled(interp, decompiled.ast, 1, [arg]) == \
                interp.run(fn, [arg])

    def test_sequential_loops(self):
        fn = _fn([
            N.asg(N.var("v0"), N.num(0)),
            N.asg(N.var("t0"), N.num(0)),
            N.while_(N.binop(Ops.LT, N.var("t0"), N.num(3)),
                     N.block(N.binop(Ops.ASG_ADD, N.var("v0"), N.num(1)),
                             N.asg(N.var("t0"), N.binop(Ops.ADD, N.var("t0"),
                                                        N.num(1))))),
            N.asg(N.var("t1"), N.num(0)),
            N.while_(N.binop(Ops.LT, N.var("t1"), N.num(4)),
                     N.block(N.binop(Ops.ASG_ADD, N.var("v0"), N.num(10)),
                             N.asg(N.var("t1"), N.binop(Ops.ADD, N.var("t1"),
                                                        N.num(1))))),
            N.ret(N.var("v0")),
        ], local_vars=("v0", "t0", "t1"))
        interp = Interpreter(library_function_defs())
        for arch in ("x86", "arm"):
            decompiled = _decompile(fn, arch)
            assert run_decompiled(interp, decompiled.ast, 1, [0]) == 43

    def test_switch_compiles_to_if_chain(self):
        switch = Node(Ops.SWITCH, (
            N.var("a0"),
            N.num(1), N.block(N.asg(N.var("v0"), N.num(10))),
            N.num(2), N.block(N.asg(N.var("v0"), N.num(20))),
        ))
        fn = _fn([N.asg(N.var("v0"), N.num(0)), switch, N.ret(N.var("v0"))])
        interp = Interpreter(library_function_defs())
        for arch in ("x86", "ppc"):
            decompiled = _decompile(fn, arch)
            for arg in (0, 1, 2, 3):
                assert run_decompiled(interp, decompiled.ast, 1, [arg]) == \
                    interp.run(fn, [arg]), (arch, arg)

    def test_return_inside_branch(self):
        fn = _fn([
            N.if_(N.binop(Ops.LT, N.var("a0"), N.num(0)),
                  N.block(N.ret(N.num(-1)))),
            N.ret(N.var("a0")),
        ], local_vars=())
        interp = Interpreter(library_function_defs())
        for arch in ("x86", "x64", "arm", "ppc"):
            decompiled = _decompile(fn, arch)
            for arg in (-4, 0, 4):
                assert run_decompiled(interp, decompiled.ast, 1, [arg]) == \
                    interp.run(fn, [arg]), (arch, arg)
