"""CLI coverage for ``index build`` / ``index search`` and ``search --top-k``."""

import json

import pytest

from repro.cli import main
from repro.index.store import MANIFEST_NAME


@pytest.fixture(scope="module")
def model_path(tmp_path_factory, trained_model):
    path = tmp_path_factory.mktemp("model") / "asteria.npz"
    trained_model.save(path)
    return str(path)


@pytest.fixture(scope="module")
def index_dir(tmp_path_factory, model_path):
    root = tmp_path_factory.mktemp("index") / "fw"
    assert main([
        "index", "build", "--model", model_path, "--output", str(root),
        "--images", "3", "--seed", "4", "--shard-size", "16",
    ]) == 0
    return str(root)


class TestIndexBuild:
    def test_writes_manifest_and_shards(self, index_dir, capsys):
        manifest = json.loads(
            (__import__("pathlib").Path(index_dir) / MANIFEST_NAME).read_text()
        )
        assert manifest["n_rows"] > 0
        assert manifest["shards"]

    def test_existing_dir_is_clean_error(self, model_path, index_dir,
                                         capsys):
        # 5 = the CLI's distinct "index store problem" exit code
        assert main([
            "index", "build", "--model", model_path, "--output", index_dir,
            "--images", "2",
        ]) == 5
        assert "already exists" in capsys.readouterr().err

    def test_reports_counts(self, model_path, tmp_path, capsys):
        assert main([
            "index", "build", "--model", model_path,
            "--output", str(tmp_path / "idx"),
            "--images", "2", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "ingested" in out
        assert "shard(s)" in out

    def test_batch_size_does_not_change_index(self, model_path, tmp_path,
                                              capsys):
        """The level-batched encoder is bit-for-bit identical across batch
        sizes, so any --batch-size builds byte-identical vectors."""
        import numpy as np

        from repro.index.store import EmbeddingStore

        for batch_size in ("1", "32"):
            assert main([
                "index", "build", "--model", model_path,
                "--output", str(tmp_path / f"idx{batch_size}"),
                "--images", "2", "--seed", "1", "--batch-size", batch_size,
            ]) == 0
        capsys.readouterr()
        single = EmbeddingStore.open(str(tmp_path / "idx1")).vectors()
        batched = EmbeddingStore.open(str(tmp_path / "idx32")).vectors()
        assert np.array_equal(single, batched)


class TestIndexSearch:
    def test_top_k_limits_results(self, model_path, index_dir, capsys):
        assert main([
            "index", "search", "--model", model_path, "--index", index_dir,
            "--top-k", "3", "--seed", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "CVE-2016-2105" in out
        # ranks never exceed top-k
        assert "  3. score=" in out
        assert "  4. score=" not in out

    def test_deterministic_for_fixed_seed(self, model_path, index_dir,
                                          capsys):
        argv = [
            "index", "search", "--model", model_path, "--index", index_dir,
            "--top-k", "5", "--seed", "4",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        assert first.count("score=") > 0

    def test_lsh_backend_runs(self, model_path, index_dir, capsys):
        assert main([
            "index", "search", "--model", model_path, "--index", index_dir,
            "--top-k", "2", "--backend", "lsh", "--seed", "4",
        ]) == 0
        assert "score=" in capsys.readouterr().out

    def test_missing_index_is_clean_error(self, model_path, tmp_path,
                                          capsys):
        # 5 = the CLI's distinct "index store problem" exit code
        assert main([
            "index", "search", "--model", model_path,
            "--index", str(tmp_path / "nope"),
        ]) == 5
        assert "no manifest" in capsys.readouterr().err

    def test_cve_filter(self, model_path, index_dir, capsys):
        assert main([
            "index", "search", "--model", model_path, "--index", index_dir,
            "--top-k", "2", "--cve", "CVE-2011-0762",
        ]) == 0
        out = capsys.readouterr().out
        assert "CVE-2011-0762" in out
        assert "CVE-2016-2105" not in out

    def test_unknown_cve_is_clean_error(self, model_path, index_dir,
                                        capsys):
        # 6 = the CLI's distinct "bad request" exit code
        assert main([
            "index", "search", "--model", model_path, "--index", index_dir,
            "--cve", "CVE-1999-0000",
        ]) == 6
        assert "CVE-1999-0000" in capsys.readouterr().err

    def test_threshold_filters_hits(self, model_path, index_dir, capsys):
        argv = ["index", "search", "--model", model_path,
                "--index", index_dir, "--top-k", "5"]
        assert main(argv) == 0
        unfiltered = capsys.readouterr().out.count("score=")
        assert main(argv + ["--threshold", "1.1"]) == 0
        assert capsys.readouterr().out.count("score=") == 0
        assert unfiltered > 0


class TestPipelineRunEdge:
    def test_zero_images_is_clean(self, model_path, capsys):
        assert main([
            "pipeline", "run", "--model", model_path, "--images", "0",
        ]) == 0
        out = capsys.readouterr().out
        assert "stage  decompile" in out  # empty stats, not a traceback


class TestSearchTopK:
    def test_search_accepts_top_k(self, model_path, capsys):
        assert main([
            "search", "--model", model_path, "--images", "3",
            "--seed", "4", "--top-k", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "total confirmed" in out


class TestStats:
    def test_local_stats_table(self, model_path, index_dir, capsys):
        assert main([
            "stats", "--model", model_path, "--index", index_dir,
        ]) == 0
        out = capsys.readouterr().out
        assert "model_loaded" in out
        assert "index_rows" in out
        assert "config:" in out

    def test_local_stats_json(self, model_path, index_dir, capsys):
        assert main([
            "stats", "--model", model_path, "--index", index_dir, "--json",
        ]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["model_loaded"] is True
        assert data["index_rows"] > 0
        assert data["config"]["backend"]

    def test_dead_url_is_input_error(self, capsys):
        # exit 4 = the CLI's "input not found" code
        assert main([
            "stats", "--url", "http://127.0.0.1:1",
        ]) == 4
        assert "could not fetch" in capsys.readouterr().err

    def test_live_url_round_trip(self, trained_model, capsys):
        import threading

        from repro.api import AsteriaEngine, EngineConfig, EngineServer

        engine = AsteriaEngine(EngineConfig(), model=trained_model)
        server = EngineServer(("127.0.0.1", 0), engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert main(["stats", "--url", server.url, "--json"]) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["model_loaded"] is True
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
