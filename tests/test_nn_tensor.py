"""Tests for the autograd engine, including numeric gradient checks."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, concat, no_grad


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar fn wrt x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        high = fn(x)
        flat[i] = original - eps
        low = fn(x)
        flat[i] = original
        grad_flat[i] = (high - low) / (2 * eps)
    return grad


def check_gradient(op, shape=(4,), seed=0):
    """Compare autograd gradient against numeric differentiation."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=shape)
    t = Tensor(data.copy(), requires_grad=True)
    out = op(t)
    out.backward()
    numeric = numeric_grad(lambda x: float(op(Tensor(x)).data), data.copy())
    np.testing.assert_allclose(t.grad, numeric, rtol=1e-5, atol=1e-7)


class TestGradients:
    def test_add(self):
        check_gradient(lambda t: (t + 3.0).sum())

    def test_sub(self):
        check_gradient(lambda t: (5.0 - t).sum())

    def test_mul(self):
        check_gradient(lambda t: (t * t).sum())

    def test_div(self):
        check_gradient(lambda t: (1.0 / (t * t + 2.0)).sum(), seed=1)

    def test_neg(self):
        check_gradient(lambda t: (-t).sum())

    def test_pow(self):
        check_gradient(lambda t: (t * t).pow(1.5).sum(), seed=2)

    def test_sigmoid(self):
        check_gradient(lambda t: t.sigmoid().sum())

    def test_tanh(self):
        check_gradient(lambda t: t.tanh().sum())

    def test_relu(self):
        check_gradient(lambda t: t.relu().sum(), seed=3)

    def test_exp_log(self):
        check_gradient(lambda t: ((t * t + 1.0).log() + t.exp()).sum())

    def test_abs(self):
        check_gradient(lambda t: t.abs().sum(), seed=4)

    def test_softmax(self):
        check_gradient(lambda t: (t.softmax() * Tensor([1.0, 2.0, 3.0, 4.0])).sum())

    def test_mean(self):
        check_gradient(lambda t: (t * t).mean())

    def test_matvec(self):
        rng = np.random.default_rng(5)
        w_data = rng.normal(size=(4, 3))
        x = Tensor(rng.normal(size=4), requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        out = (x @ w).sum()
        out.backward()
        numeric_x = numeric_grad(
            lambda d: float((Tensor(d) @ Tensor(w_data)).sum().data),
            x.data.copy(),
        )
        np.testing.assert_allclose(x.grad, numeric_x, rtol=1e-5)
        assert w.grad.shape == (4, 3)

    def test_matmul_2d(self):
        rng = np.random.default_rng(6)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4, 2)

    def test_concat(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([3.0]), requires_grad=True)
        out = (concat([a, b]) * Tensor([1.0, 10.0, 100.0])).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, [1.0, 10.0])
        np.testing.assert_allclose(b.grad, [100.0])

    def test_getitem(self):
        t = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        t[1].backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_broadcasting_backward(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, [3.0] * 4)

    def test_dot_and_norm(self):
        check_gradient(lambda t: t.dot(Tensor([1.0, 2.0, 3.0, 4.0])))
        check_gradient(lambda t: t.norm(), seed=7)

    def test_diamond_reuse_accumulates(self):
        """A value used twice receives the sum of both gradient paths."""
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = (t * 3.0 + t * 4.0).sum()
        out.backward()
        np.testing.assert_allclose(t.grad, [7.0])


class TestMechanics:
    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2.0).backward()

    def test_no_grad_disables_graph(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = (t * 2.0).sum()
        assert not out.requires_grad
        assert out._backward is None

    def test_constant_tensors_track_nothing(self):
        out = (Tensor([1.0]) * Tensor([2.0])).sum()
        assert not out.requires_grad

    def test_detach(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        d.data[0] = 99.0
        assert t.data[0] == 1.0

    def test_item_and_shape(self):
        t = Tensor([[1.0, 2.0]])
        assert t.shape == (1, 2)
        assert t.ndim == 2
        assert Tensor([3.5]).sum().item() == 3.5

    def test_deep_chain_no_recursion_error(self):
        """Backward is iterative; 5000-op chains must not overflow."""
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(5000):
            out = out + 1.0
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [1.0])
