"""Tests for the CLI and the §VII value-embedding extension."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.extensions import (
    FEATURE_DIM,
    ValueAwareAsteria,
    ValueFeatureExtractor,
)
from repro.lang import nodes as N
from repro.lang.nodes import Ops


class TestValueFeatures:
    def _extractor(self):
        return ValueFeatureExtractor()

    def test_dimension(self):
        features = self._extractor().extract(N.block(N.ret(N.num(1))))
        assert features.dim == FEATURE_DIM

    def test_counts(self):
        ast = N.block(
            N.asg(N.var("x"), N.num(5)),
            N.asg(N.var("y"), N.call("f", N.string("a"), N.string("b"))),
            N.ret(N.num(1000)),
        )
        features = self._extractor().extract(ast)
        assert features.vector[0] == 2  # numeric constants
        assert features.vector[1] == 2  # strings

    def test_magnitude_buckets(self):
        small = self._extractor().extract(N.block(N.ret(N.num(1))))
        large = self._extractor().extract(N.block(N.ret(N.num(10 ** 6))))
        assert not np.array_equal(small.vector, large.vector)

    def test_identical_literals_similarity_one(self):
        ast = N.block(N.asg(N.var("x"), N.num(42)), N.ret(N.string("err")))
        extractor = self._extractor()
        a = extractor.extract(ast)
        assert extractor.similarity(a, a) == pytest.approx(1.0)

    def test_no_literals_vacuous(self):
        extractor = self._extractor()
        empty = extractor.extract(N.block(N.ret(N.var("x"))))
        assert extractor.similarity(empty, empty) == 1.0
        nonempty = extractor.extract(N.block(N.ret(N.num(3))))
        assert extractor.similarity(empty, nonempty) == 0.0

    def test_values_cross_architecture_stable(self, buildroot_small):
        """Literals survive compilation identically on every target."""
        from repro.core.pairs import build_cross_arch_pairs

        extractor = self._extractor()
        pairs = build_cross_arch_pairs(buildroot_small.functions, 8, seed=1)
        for pair in pairs:
            if pair.label != +1:
                continue
            a = extractor.extract(pair.first.ast)
            b = extractor.extract(pair.second.ast)
            # counts may shift slightly with arch-dependent inlining, but
            # the features must remain highly similar for homologous pairs
            assert extractor.similarity(a, b) > 0.8


class TestValueAwareAsteria:
    def test_weight_validation(self):
        with pytest.raises(ValueError):
            ValueAwareAsteria(value_weight=1.5)

    def test_zero_weight_recovers_plain(self, trained_model, buildroot_small):
        aware = ValueAwareAsteria(model=trained_model, value_weight=0.0)
        fns = buildroot_small.functions["x86"][:2]
        e1, e2 = aware.encode_function(fns[0]), aware.encode_function(fns[1])
        plain = trained_model.similarity(
            trained_model.encode_function(fns[0]),
            trained_model.encode_function(fns[1]),
        )
        assert aware.similarity(e1, e2) == pytest.approx(plain)

    def test_extension_separates_pairs(self, trained_model, buildroot_small):
        from repro.core.pairs import build_cross_arch_pairs
        from repro.evalsuite.metrics import roc_auc

        aware = ValueAwareAsteria(model=trained_model, value_weight=0.3)
        pairs = build_cross_arch_pairs(buildroot_small.functions, 8, seed=2)
        labels = [1 if p.label > 0 else 0 for p in pairs]
        scores = [aware.compare_functions(p.first, p.second) for p in pairs]
        assert roc_auc(labels, scores) > 0.8


class TestCLI:
    def test_generate(self, capsys):
        assert main(["generate", "--name", "p", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "int p_fn0(" in out

    def test_compile_disasm_decompile(self, tmp_path, capsys):
        assert main([
            "compile", "--name", "p", "--seed", "3",
            "--arch", "arm", "--output", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        binary_path = str(tmp_path / "p.arm.rbin")
        assert main(["disasm", binary_path, "--function", "p_fn0"]) == 0
        out = capsys.readouterr().out
        assert "p_fn0:" in out
        assert main(["decompile", binary_path, "--function", "p_fn0"]) == 0
        out = capsys.readouterr().out
        assert "// p_fn0 (arm" in out

    def test_compile_strip(self, tmp_path, capsys):
        assert main([
            "compile", "--name", "p", "--seed", "3",
            "--arch", "x86", "--strip", "--output", str(tmp_path),
        ]) == 0
        capsys.readouterr()
        assert main(["decompile", str(tmp_path / "p.x86.rbin")]) == 0
        out = capsys.readouterr().out
        assert "sub_" in out

    def test_compare_with_saved_model(self, tmp_path, trained_model, capsys):
        model_path = tmp_path / "model.npz"
        trained_model.save(model_path)
        for arch in ("x86", "arm"):
            main(["compile", "--name", "q", "--seed", "5",
                  "--arch", arch, "--output", str(tmp_path)])
        capsys.readouterr()
        assert main([
            "compare", "--model", str(model_path),
            str(tmp_path / "q.x86.rbin"), "q_fn1",
            str(tmp_path / "q.arm.rbin"), "q_fn1",
        ]) == 0
        out = capsys.readouterr().out
        assert "calibrated similarity" in out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
