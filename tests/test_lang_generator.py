"""Tests for the random program generator."""

import pytest

from repro.lang.generator import (
    GeneratorConfig,
    LIBRARY_FUNCTIONS,
    ProgramGenerator,
    generate_corpus,
)
from repro.lang.interp import Interpreter
from repro.lang.nodes import Ops
from repro.compiler.pipeline import library_function_defs
from repro.utils.rng import RNG


class TestDeterminism:
    def test_same_seed_same_package(self):
        a = ProgramGenerator(seed=3).generate_package("p")
        b = ProgramGenerator(seed=3).generate_package("p")
        assert [f.name for f in a.functions] == [f.name for f in b.functions]
        for fa, fb in zip(a.functions, b.functions):
            assert fa.body == fb.body

    def test_different_seeds_differ(self):
        a = ProgramGenerator(seed=3).generate_package("p")
        b = ProgramGenerator(seed=4).generate_package("p")
        assert any(fa.body != fb.body for fa, fb in zip(a.functions, b.functions))

    def test_package_name_independence(self):
        """Generating p1 must not perturb a later p2 (child-seed isolation)."""
        gen = ProgramGenerator(seed=5)
        gen.generate_package("noise")
        p2_after = gen.generate_package("p2")
        p2_fresh = ProgramGenerator(seed=5).generate_package("p2")
        assert [f.body for f in p2_after.functions] == [
            f.body for f in p2_fresh.functions
        ]


class TestShape:
    def test_function_count(self):
        config = GeneratorConfig(functions_per_package=5)
        package = ProgramGenerator(seed=1, config=config).generate_package("p")
        assert len(package) == 5

    def test_param_bounds(self):
        config = GeneratorConfig(max_params=2)
        package = ProgramGenerator(seed=1, config=config).generate_package("p")
        assert all(1 <= len(f.params) <= 2 for f in package.functions)

    def test_bodies_end_with_return(self):
        package = ProgramGenerator(seed=2).generate_package("p")
        for fn in package.functions:
            assert fn.body.children[-1].op == Ops.RETURN

    def test_call_arity_matches_callee(self):
        package = ProgramGenerator(seed=6).generate_package("p")
        arities = {name: arity for name, arity in LIBRARY_FUNCTIONS}
        arities.update({f.name: len(f.params) for f in package.functions})
        for fn in package.functions:
            for node in fn.body.walk():
                if node.op == Ops.CALL:
                    assert len(node.children) == arities[node.value], node.value

    def test_no_recursion(self):
        """Call graph is a DAG: functions only call earlier ones."""
        package = ProgramGenerator(seed=7).generate_package("p")
        seen = {name for name, _arity in LIBRARY_FUNCTIONS}
        for fn in package.functions:
            for callee in fn.callee_names():
                assert callee in seen, f"{fn.name} calls later/unknown {callee}"
            seen.add(fn.name)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(min_statements=5, max_statements=2)
        with pytest.raises(ValueError):
            GeneratorConfig(max_depth=0)

    def test_no_library_calls_option(self):
        config = GeneratorConfig(include_library_calls=False)
        package = ProgramGenerator(seed=8, config=config).generate_package("p")
        for fn in package.functions:
            for callee in fn.callee_names():
                assert not callee.startswith("lib_")


class TestExecutability:
    """Every generated function must terminate and never read unset vars."""

    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_generated_functions_run(self, seed):
        package = ProgramGenerator(seed=seed).generate_package("p")
        interp = Interpreter(list(package.functions) + library_function_defs())
        rng = RNG(seed)
        for fn in package.functions:
            for _ in range(3):
                args = [rng.randint(0, 99) for _ in fn.params]
                result = interp.run(fn, args)
                assert isinstance(result, int)

    def test_division_never_by_zero_expression(self):
        """Generated divisions always have non-zero constant divisors."""
        for pkg in generate_corpus(seed=13, n_packages=3):
            for fn in pkg.functions:
                for node in fn.body.walk():
                    if node.op == Ops.DIV:
                        divisor = node.children[1]
                        assert divisor.op == Ops.NUM and divisor.value != 0


class TestCorpus:
    def test_generate_corpus_names(self):
        corpus = generate_corpus(seed=1, n_packages=3, name_prefix="x")
        assert [p.name for p in corpus] == ["x0", "x1", "x2"]
