"""Round-trip tests for model checkpoints and embedding shards."""

import numpy as np
import pytest

from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.index.store import EmbeddingStore
from repro.nn.serialize import load_state, save_state


class TestStateRoundTrip:
    def test_arrays_and_meta_preserved_exactly(self, tmp_path):
        state = {
            "w": np.arange(12, dtype=np.float64).reshape(3, 4),
            "b32": np.array([1.5, -2.5], dtype=np.float32),
            "counts": np.array([[1, 2], [3, 4]], dtype=np.int64),
            "flags": np.array([True, False]),
        }
        meta = {"dim": 4, "nested": {"names": ["a", "b"], "ok": True}}
        path = tmp_path / "ckpt.npz"
        save_state(path, state, meta=meta)
        loaded, loaded_meta = load_state(path)
        assert set(loaded) == set(state)
        for key, array in state.items():
            assert loaded[key].dtype == array.dtype
            assert loaded[key].shape == array.shape
            assert np.array_equal(loaded[key], array)
        assert loaded_meta == meta

    def test_suffix_added_on_load(self, tmp_path):
        save_state(tmp_path / "model", {"w": np.zeros(3)})
        state, meta = load_state(tmp_path / "model")
        assert np.array_equal(state["w"], np.zeros(3))
        assert meta == {}

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_state(tmp_path / "x.npz", {"__meta__": np.zeros(1)})

    def test_model_state_roundtrip(self, tmp_path):
        model = Asteria(AsteriaConfig(hidden_dim=16, seed=3))
        path = tmp_path / "asteria.npz"
        model.save(path)
        loaded = Asteria.load(path)
        assert loaded.config == model.config
        original = model.siamese.state_dict()
        restored = loaded.siamese.state_dict()
        assert set(original) == set(restored)
        for key in original:
            assert restored[key].dtype == original[key].dtype
            assert np.array_equal(restored[key], original[key])


class TestShardRoundTrip:
    def test_shard_preserves_dtype_shape_and_metadata(self, tmp_path):
        store = EmbeddingStore.create(
            tmp_path / "idx", dim=6, shard_size=2, dtype="float64"
        )
        rng = np.random.default_rng(0)
        encodings = [
            FunctionEncoding(
                name=f"sub_{i:x}",
                arch="arm",
                binary_name=f"openssl-1.0.{i}",
                vector=rng.normal(size=6),
                callee_count=i,
                ast_size=20 + i,
            )
            for i in range(5)
        ]
        for i, encoding in enumerate(encodings):
            store.add(encoding, image_id=f"NetGear/R7000/{i}")
        store.flush()

        reopened = EmbeddingStore.open(tmp_path / "idx")
        assert reopened.vectors().dtype == np.float64
        assert reopened.vectors().shape == (5, 6)
        assert reopened.callee_counts().dtype == np.int64
        for i, encoding in enumerate(encodings):
            meta = reopened.metadata_at(i)
            assert meta.name == encoding.name
            assert meta.arch == encoding.arch
            assert meta.binary_name == encoding.binary_name
            assert meta.callee_count == encoding.callee_count
            assert meta.ast_size == encoding.ast_size
            assert meta.image_id == f"NetGear/R7000/{i}"
            assert np.array_equal(reopened.vector_at(i), encoding.vector)

    def test_float32_vectors_stay_float32(self, tmp_path):
        store = EmbeddingStore.create(tmp_path / "idx32", dim=4)
        store.add(
            FunctionEncoding(
                name="f", arch="x86", binary_name="b",
                vector=np.ones(4, dtype=np.float32), callee_count=0,
            )
        )
        store.flush()
        assert EmbeddingStore.open(
            tmp_path / "idx32"
        ).vectors().dtype == np.float32
