"""Shared fixtures: small deterministic corpora and a quickly-trained model.

Expensive artefacts (datasets, the trained model) are session-scoped so the
suite builds them once.
"""

from __future__ import annotations

import pytest

from repro.compiler.pipeline import cross_compile, library_function_defs
from repro.core import (
    Asteria,
    AsteriaConfig,
    TrainConfig,
    Trainer,
    build_cross_arch_pairs,
    to_tree_pairs,
)
from repro.core.pairs import split_pairs
from repro.evalsuite.datasets import build_buildroot_dataset, build_openssl_dataset
from repro.lang.generator import generate_corpus


@pytest.fixture(scope="session")
def packages():
    """Three deterministic packages."""
    return generate_corpus(seed=21, n_packages=3)


@pytest.fixture(scope="session")
def package(packages):
    return packages[0]


@pytest.fixture(scope="session")
def binaries(package):
    """The first package cross-compiled for all four architectures."""
    return cross_compile(package)


@pytest.fixture(scope="session")
def library_defs():
    return library_function_defs()


@pytest.fixture(scope="session")
def buildroot_small():
    return build_buildroot_dataset(n_packages=3, seed=7)


@pytest.fixture(scope="session")
def openssl_small():
    return build_openssl_dataset(n_functions=16, seed=9)


@pytest.fixture(scope="session")
def trained_model(buildroot_small):
    """An Asteria model trained briefly (enough to separate pairs)."""
    pairs = to_tree_pairs(
        build_cross_arch_pairs(buildroot_small.functions, 12, seed=1)
    )
    train, dev = split_pairs(pairs, 0.85, seed=2)
    model = Asteria(AsteriaConfig(hidden_dim=32))
    trainer = Trainer(model.siamese, TrainConfig(epochs=2, lr=0.05))
    trainer.train(train, dev)
    return model
