"""Tests for the optimiser passes and CFG construction."""

import pytest

from repro.compiler import ir as IR
from repro.compiler.cfg import build_cfg
from repro.compiler.codegen import select_instructions
from repro.compiler.ir import lower_function
from repro.compiler.optimizer import (
    DEFAULT_INLINE_THRESHOLDS,
    fold_constants,
    inline_small_functions,
)
from repro.compiler.pipeline import library_function_defs
from repro.lang import nodes as N
from repro.lang.interp import Interpreter
from repro.lang.nodes import FunctionDef, Node, Ops, Package
from repro.utils.rng import RNG


def _leaf(name="leaf", n_stmts=1):
    stmts = [
        N.asg(N.var("v0"), N.binop(Ops.ADD, N.var("a0"), N.num(i + 1)))
        for i in range(n_stmts)
    ]
    return FunctionDef(name, ("a0",), ("v0",), N.block(*stmts, N.ret(N.var("v0"))))


def _caller(callee="leaf"):
    body = N.block(
        N.asg(N.var("v0"), N.call(callee, N.var("a0"))),
        N.ret(N.var("v0")),
    )
    return FunctionDef("caller", ("a0",), ("v0",), body)


class TestInlining:
    def test_small_leaf_inlined(self):
        package = Package("p", [_leaf(n_stmts=1), _caller()])
        inlined = inline_small_functions(package, threshold=2)
        caller = inlined.function("caller")
        assert "leaf" not in caller.callee_names()

    def test_above_threshold_not_inlined(self):
        package = Package("p", [_leaf(n_stmts=3), _caller()])
        inlined = inline_small_functions(package, threshold=2)
        assert "leaf" in inlined.function("caller").callee_names()

    def test_inlining_preserves_semantics(self):
        package = Package("p", [_leaf(n_stmts=2), _caller()])
        inlined = inline_small_functions(package, threshold=3)
        rng = RNG(0)
        plain = Interpreter(package.functions)
        opt = Interpreter(inlined.functions)
        for _ in range(10):
            arg = rng.randint(0, 1000)
            assert plain.call("caller", [arg]) == opt.call("caller", [arg])

    def test_control_flow_callee_never_inlined(self):
        body = N.block(
            N.if_(N.binop(Ops.LT, N.var("a0"), N.num(1)),
                  N.block(N.ret(N.num(0)))),
            N.ret(N.var("a0")),
        )
        callee = FunctionDef("cf", ("a0",), (), body)
        caller = _caller("cf")
        inlined = inline_small_functions(Package("p", [callee, caller]), 10)
        assert "cf" in inlined.function("caller").callee_names()

    def test_bare_call_statement_inlined(self):
        body = N.block(
            N.asg(N.var("v0"), N.num(1)),
            Node(Ops.CALL, (N.var("a0"),), value="leaf"),
            N.ret(N.var("v0")),
        )
        caller = FunctionDef("caller", ("a0",), ("v0",), body)
        inlined = inline_small_functions(Package("p", [_leaf(), caller]), 2)
        assert "leaf" not in inlined.function("caller").callee_names()

    def test_inline_inside_nested_blocks(self):
        body = N.block(
            N.if_(N.binop(Ops.GT, N.var("a0"), N.num(0)),
                  N.block(N.asg(N.var("v0"), N.call("leaf", N.var("a0"))))),
            N.ret(N.var("v0")),
        )
        caller = FunctionDef("caller", ("a0",), ("v0",), body)
        inlined = inline_small_functions(Package("p", [_leaf(), caller]), 2)
        assert "leaf" not in inlined.function("caller").callee_names()

    def test_per_arch_thresholds_defined(self):
        assert set(DEFAULT_INLINE_THRESHOLDS) == {"x86", "x64", "arm", "ppc"}
        # different cost models must actually differ
        assert len(set(DEFAULT_INLINE_THRESHOLDS.values())) > 1

    def test_library_defs_straddle_thresholds(self, library_defs):
        """The mini-libc was designed so some leaves inline only on some
        architectures (this is what exercises calibration)."""
        stmt_counts = {fn.name: len(fn.body.children) - 1 for fn in library_defs}
        lo, hi = min(DEFAULT_INLINE_THRESHOLDS.values()), max(
            DEFAULT_INLINE_THRESHOLDS.values()
        )
        assert any(lo < count <= hi for count in stmt_counts.values())


class TestConstantFolding:
    def test_folds_binop(self):
        fn = FunctionDef("f", (), ("v0",), N.block(
            N.asg(N.var("v0"), N.binop(Ops.ADD, N.num(2), N.num(3))),
            N.ret(N.var("v0")),
        ))
        ir = fold_constants(lower_function(fn))
        assert not any(isinstance(i, IR.BinOp) for i in ir.instructions)
        move = next(i for i in ir.instructions if isinstance(i, IR.Move))
        assert move.src == IR.Imm(5)

    def test_folds_c_division(self):
        fn = FunctionDef("f", (), ("v0",), N.block(
            N.asg(N.var("v0"), N.binop(Ops.DIV, N.num(-7), N.num(2))),
            N.ret(N.var("v0")),
        ))
        ir = fold_constants(lower_function(fn))
        move = next(i for i in ir.instructions if isinstance(i, IR.Move))
        assert move.src == IR.Imm(-3)  # trunc toward zero

    def test_division_by_zero_not_folded(self):
        ir = IR.IRFunction("f", (), ("v0",), [
            IR.BinOp(IR.Var("v0"), Ops.DIV, IR.Imm(1), IR.Imm(0)),
            IR.Ret(IR.Imm(0)),
        ])
        folded = fold_constants(ir)
        assert isinstance(folded.instructions[0], IR.BinOp)

    def test_folds_negation(self):
        ir = IR.IRFunction("f", (), ("v0",), [
            IR.UnOp(IR.Var("v0"), Ops.NEG, IR.Imm(5)),
            IR.Ret(IR.Imm(0)),
        ])
        folded = fold_constants(ir)
        assert folded.instructions[0] == IR.Move(IR.Var("v0"), IR.Imm(-5))

    def test_non_constant_untouched(self):
        fn = FunctionDef("f", ("a0",), ("v0",), N.block(
            N.asg(N.var("v0"), N.binop(Ops.ADD, N.var("a0"), N.num(3))),
            N.ret(N.var("v0")),
        ))
        ir = lower_function(fn)
        assert [str(i) for i in fold_constants(ir).instructions] == [
            str(i) for i in ir.instructions
        ]


DIAMOND = FunctionDef("f", ("a0",), ("v0",), N.block(
    N.if_(N.binop(Ops.LT, N.var("a0"), N.num(1)),
          N.block(N.asg(N.var("v0"), N.num(1))),
          N.block(N.asg(N.var("v0"), N.var("a0")))),
    N.ret(N.var("v0")),
))


class TestCFG:
    def test_straight_line_single_block(self):
        fn = FunctionDef("f", ("a0",), ("v0",), N.block(
            N.asg(N.var("v0"), N.var("a0")), N.ret(N.var("v0"))
        ))
        cfg = build_cfg(select_instructions(lower_function(fn), "x86"))
        assert cfg.block_count == 1

    def test_diamond_x86_has_four_blocks(self):
        """Paper Figure 2(c): four blocks on x86."""
        cfg = build_cfg(select_instructions(lower_function(DIAMOND), "x86"))
        assert cfg.block_count == 4

    def test_diamond_arm_single_block(self):
        """Paper Figure 2(d): predication collapses ARM to one block."""
        cfg = build_cfg(select_instructions(lower_function(DIAMOND), "arm"))
        assert cfg.block_count == 1

    def test_edge_kinds(self):
        cfg = build_cfg(select_instructions(lower_function(DIAMOND), "x86"))
        kinds = {cfg.edge_kind(u, v) for u, v in cfg.graph.edges()}
        assert kinds == {"taken", "fallthrough", "jump"}

    def test_loop_has_back_edge(self):
        fn = FunctionDef("f", ("a0",), ("v0",), N.block(
            N.asg(N.var("v0"), N.num(0)),
            N.while_(N.binop(Ops.LT, N.var("v0"), N.var("a0")),
                     N.block(N.binop(Ops.ASG_ADD, N.var("v0"), N.num(1)))),
            N.ret(N.var("v0")),
        ))
        cfg = build_cfg(select_instructions(lower_function(fn), "ppc"))
        # some edge goes backwards in block order
        assert any(v <= u for u, v in cfg.graph.edges())

    def test_exit_blocks(self):
        cfg = build_cfg(select_instructions(lower_function(DIAMOND), "x86"))
        exits = cfg.exit_blocks()
        assert len(exits) == 1

    def test_block_at(self):
        cfg = build_cfg(select_instructions(lower_function(DIAMOND), "x86"))
        assert cfg.block_at(0).block_id == 0
        with pytest.raises(KeyError):
            cfg.block_at(10_000)
