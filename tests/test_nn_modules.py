"""Tests for Module/layers/optimisers/losses/serialisation."""

import numpy as np
import pytest

from repro.nn.layers import Embedding, Linear
from repro.nn.loss import bce_loss, cosine_embedding_loss, mse_loss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, AdaGrad, Adam
from repro.nn.serialize import load_state, save_state
from repro.nn.tensor import Tensor
from repro.utils.rng import RNG


class _Tiny(Module):
    def __init__(self):
        self.linear = Linear(3, 2, RNG(0))
        self.extra = Parameter(np.zeros(2))
        self.stack = [Linear(2, 2, RNG(1))]

    def forward(self, x):
        return self.linear(x) + self.extra


class TestModule:
    def test_parameter_discovery(self):
        model = _Tiny()
        names = {name for name, _p in model.named_parameters()}
        assert names == {
            "linear.weight", "linear.bias", "extra",
            "stack.0.weight", "stack.0.bias",
        }

    def test_n_parameters(self):
        model = _Tiny()
        assert model.n_parameters() == 3 * 2 + 2 + 2 + 2 * 2 + 2

    def test_zero_grad(self):
        model = _Tiny()
        out = model(Tensor(np.ones(3))).sum()
        out.backward()
        assert model.linear.weight.grad is not None
        model.zero_grad()
        assert model.linear.weight.grad is None

    def test_state_dict_roundtrip(self):
        a, b = _Tiny(), _Tiny()
        b.linear.weight.data += 1.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_array_equal(b.linear.weight.data, a.linear.weight.data)

    def test_state_dict_mismatch_rejected(self):
        model = _Tiny()
        state = model.state_dict()
        state.pop("extra")
        with pytest.raises(ValueError):
            model.load_state_dict(state)
        bad = model.state_dict()
        bad["extra"] = np.zeros(5)
        with pytest.raises(ValueError):
            model.load_state_dict(bad)


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(4, 3, RNG(0))
        out = layer(Tensor(np.ones(4)))
        assert out.shape == (3,)

    def test_linear_no_bias(self):
        layer = Linear(4, 3, RNG(0), bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, RNG(0))
        row = emb(3)
        np.testing.assert_array_equal(row.data, emb.weight.data[3])

    def test_embedding_bounds(self):
        emb = Embedding(10, 4, RNG(0))
        with pytest.raises(IndexError):
            emb(10)
        with pytest.raises(IndexError):
            emb(-1)

    def test_embedding_grad_only_touched_row(self):
        emb = Embedding(5, 3, RNG(0))
        emb(2).sum().backward()
        grad = emb.weight.grad
        assert np.all(grad[2] == 1.0)
        assert np.all(grad[[0, 1, 3, 4]] == 0.0)


def _quadratic_steps(optimizer_cls, steps=80, **kwargs):
    p = Parameter(np.array([5.0, -3.0]))
    optimizer = optimizer_cls([p], **kwargs)
    for _ in range(steps):
        optimizer.zero_grad()
        loss = (p * p).sum()
        loss.backward()
        optimizer.step()
    return float((p.data ** 2).sum())


class TestOptimizers:
    @pytest.mark.parametrize("cls,kwargs", [
        (SGD, {"lr": 0.1}),
        (SGD, {"lr": 0.05, "momentum": 0.9}),
        (AdaGrad, {"lr": 0.8}),
        (Adam, {"lr": 0.3}),
    ])
    def test_minimises_quadratic(self, cls, kwargs):
        assert _quadratic_steps(cls, **kwargs) < 1e-2

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_step_skips_gradless(self):
        p = Parameter(np.ones(2))
        SGD([p], lr=0.1).step()  # no grad -> no change, no crash
        np.testing.assert_array_equal(p.data, [1.0, 1.0])


class TestLosses:
    def test_bce_perfect_prediction_near_zero(self):
        loss = bce_loss(Tensor([0.0001, 0.9999]), np.array([0.0, 1.0]))
        assert float(loss.data) < 0.001

    def test_bce_wrong_prediction_large(self):
        loss = bce_loss(Tensor([0.999, 0.001]), np.array([0.0, 1.0]))
        assert float(loss.data) > 3.0

    def test_bce_gradient_direction(self):
        p = Parameter(np.array([0.0, 0.0]))
        out = p.sigmoid()
        loss = bce_loss(out, np.array([0.0, 1.0]))
        loss.backward()
        assert p.grad[0] > 0  # push first logit down
        assert p.grad[1] < 0  # push second logit up

    def test_mse(self):
        loss = mse_loss(Tensor([1.0, 2.0]), np.array([1.0, 4.0]))
        assert float(loss.data) == pytest.approx(2.0)

    def test_cosine_embedding_loss(self):
        sim = Tensor([0.8]).sum()
        assert float(cosine_embedding_loss(sim, 1).data) == pytest.approx(0.2)
        assert float(cosine_embedding_loss(sim, -1).data) == pytest.approx(0.8)
        neg = Tensor([-0.5]).sum()
        assert float(cosine_embedding_loss(neg, -1).data) == 0.0
        with pytest.raises(ValueError):
            cosine_embedding_loss(sim, 0)


class TestSerialize:
    def test_roundtrip(self, tmp_path):
        state = {"a": np.arange(6.0).reshape(2, 3), "b": np.array([1.0])}
        path = tmp_path / "ckpt.npz"
        save_state(path, state, meta={"dim": 16})
        loaded, meta = load_state(path)
        assert meta == {"dim": 16}
        np.testing.assert_array_equal(loaded["a"], state["a"])
        np.testing.assert_array_equal(loaded["b"], state["b"])

    def test_suffix_added(self, tmp_path):
        path = tmp_path / "model"
        save_state(path, {"x": np.ones(2)})
        loaded, _ = load_state(path)  # finds model.npz
        assert "x" in loaded

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_state(tmp_path / "f.npz", {"__meta__": np.ones(1)})
