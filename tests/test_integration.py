"""End-to-end integration tests: the full paper pipeline at miniature scale."""

import numpy as np
import pytest

from repro.core import build_cross_arch_pairs, to_tree_pairs
from repro.core.model import Asteria, AsteriaConfig
from repro.evalsuite.metrics import roc_auc, youden_threshold
from repro.evalsuite.vulnsearch import (
    VulnerabilitySearch,
    build_firmware_dataset,
)


class TestComparativePipeline:
    def test_trained_asteria_beats_chance(self, trained_model, openssl_small):
        """The core claim at miniature scale: a trained Asteria separates
        homologous from non-homologous cross-architecture pairs."""
        pairs = build_cross_arch_pairs(openssl_small.functions, 10, seed=11)
        encodings = {}

        def encode(fn):
            key = (fn.arch, fn.binary_name, fn.name)
            if key not in encodings:
                encodings[key] = trained_model.encode_function(fn)
            return encodings[key]

        labels = [1 if p.label > 0 else 0 for p in pairs]
        scores = [
            trained_model.similarity(encode(p.first), encode(p.second))
            for p in pairs
        ]
        assert roc_auc(labels, scores) > 0.85

    def test_asteria_beats_diaphora(self, trained_model, openssl_small):
        from repro.baselines.diaphora import DiaphoraMatcher

        pairs = build_cross_arch_pairs(openssl_small.functions, 10, seed=12)
        labels = [1 if p.label > 0 else 0 for p in pairs]
        matcher = DiaphoraMatcher()
        diaphora_scores = [
            matcher.similarity(p.first.ast, p.second.ast) for p in pairs
        ]
        asteria_scores = [
            trained_model.compare_functions(p.first, p.second) for p in pairs
        ]
        assert roc_auc(labels, asteria_scores) > roc_auc(labels, diaphora_scores)


class TestVulnerabilitySearch:
    @pytest.fixture(scope="class")
    def search_result(self, trained_model):
        dataset = build_firmware_dataset(
            n_images=8, seed=5, vulnerable_fraction=0.6
        )
        # Youden-style threshold from a quick self-calibration: the paper
        # uses 0.84; at miniature training scale we derive it the same way.
        search = VulnerabilitySearch(trained_model, threshold=0.8)
        report, candidates = search.search(dataset)
        return dataset, report, candidates

    def test_report_rows_cover_cves(self, search_result):
        _dataset, report, _candidates = search_result
        assert len(report.rows) == 7

    def test_finds_implanted_vulnerabilities(self, search_result):
        dataset, report, _candidates = search_result
        n_implanted = sum(
            len(info.vuln_function_addresses)
            for (image_id, _b), info in dataset.provenance.items()
            if not _image_unknown(dataset, image_id)
        )
        if n_implanted:
            assert report.total_confirmed() > 0

    def test_confirmed_candidates_are_truly_vulnerable(self, search_result):
        """No false confirmations: every confirmed candidate matches the
        generation-time ground truth."""
        dataset, _report, candidates = search_result
        for candidate in candidates:
            if not candidate.confirmed:
                continue
            info = dataset.provenance[
                (candidate.image.identifier, candidate.binary_name)
            ]
            assert info.vulnerable
            assert info.software == candidate.entry.software

    def test_counts_consistent(self, search_result):
        _dataset, report, candidates = search_result
        assert report.n_candidates == len(candidates)
        assert report.total_confirmed() == sum(
            1 for c in candidates if c.confirmed
        )


def _image_unknown(dataset, image_id):
    for image in dataset.images:
        if image.identifier == image_id:
            return image.unknown_format
    return True


class TestModelPersistenceEnd2End:
    def test_checkpoint_preserves_scores(self, tmp_path, trained_model,
                                         openssl_small):
        pairs = build_cross_arch_pairs(openssl_small.functions, 3, seed=13)
        before = [
            trained_model.compare_functions(p.first, p.second) for p in pairs
        ]
        path = tmp_path / "model.npz"
        trained_model.save(path)
        restored = Asteria.load(path)
        after = [restored.compare_functions(p.first, p.second) for p in pairs]
        np.testing.assert_allclose(after, before)
