"""Tests for AST -> IR lowering."""

import pytest

from repro.compiler import ir as IR
from repro.compiler.ir import Lowerer, LoweringError, lower_function
from repro.lang import nodes as N
from repro.lang.nodes import FunctionDef, Node, Ops


def _fn(stmts, params=("a0",), local_vars=("v0",)):
    return FunctionDef("f", tuple(params), tuple(local_vars), N.block(*stmts))


def _ops(ir):
    return [type(i).__name__ for i in ir.instructions]


class TestStraightLine:
    def test_simple_assignment(self):
        ir = lower_function(_fn([N.asg(N.var("v0"), N.num(3)), N.ret(N.var("v0"))]))
        assert isinstance(ir.instructions[0], IR.Move)
        assert ir.instructions[0].dst == IR.Var("v0")
        assert ir.instructions[0].src == IR.Imm(3)
        assert isinstance(ir.instructions[-1], IR.Ret)

    def test_binop_assignment_direct(self):
        """x = a + b lowers to one BinOp, no temp."""
        ir = lower_function(
            _fn([N.asg(N.var("v0"), N.binop(Ops.ADD, N.var("a0"), N.num(1))),
                 N.ret(N.var("v0"))])
        )
        binops = [i for i in ir.instructions if isinstance(i, IR.BinOp)]
        assert len(binops) == 1
        assert binops[0].dst == IR.Var("v0")

    def test_nested_expression_uses_temps(self):
        expr = N.binop(Ops.MUL,
                       N.binop(Ops.ADD, N.var("a0"), N.num(1)),
                       N.binop(Ops.SUB, N.var("a0"), N.num(2)))
        ir = lower_function(_fn([N.asg(N.var("v0"), expr), N.ret(N.var("v0"))]))
        binops = [i for i in ir.instructions if isinstance(i, IR.BinOp)]
        assert len(binops) == 3
        temps = {i.dst for i in binops if isinstance(i.dst, IR.Temp)}
        assert len(temps) == 2

    def test_compound_assignment(self):
        ir = lower_function(
            _fn([N.binop(Ops.ASG_ADD, N.var("v0"), N.num(5)), N.ret(N.num(0))])
        )
        binop = next(i for i in ir.instructions if isinstance(i, IR.BinOp))
        assert binop.op == Ops.ADD
        assert binop.lhs == IR.Var("v0") and binop.dst == IR.Var("v0")

    def test_implicit_return_added(self):
        ir = lower_function(_fn([N.asg(N.var("v0"), N.num(1))]))
        assert isinstance(ir.instructions[-1], IR.Ret)

    def test_unary(self):
        ir = lower_function(
            _fn([N.asg(N.var("v0"), Node(Ops.NEG, (N.var("a0"),))),
                 N.ret(N.var("v0"))])
        )
        assert any(isinstance(i, IR.UnOp) and i.op == Ops.NEG
                   for i in ir.instructions)


class TestCalls:
    def test_call_with_dest(self):
        ir = lower_function(
            _fn([N.asg(N.var("v0"), N.call("g", N.var("a0"), N.num(2))),
                 N.ret(N.var("v0"))])
        )
        call = next(i for i in ir.instructions if isinstance(i, IR.Call))
        assert call.func == "g"
        assert call.dst == IR.Var("v0")
        assert call.args == (IR.Var("a0"), IR.Imm(2))

    def test_string_argument(self):
        ir = lower_function(
            _fn([N.asg(N.var("v0"), N.call("g", N.string("hi"))), N.ret(N.num(0))])
        )
        call = next(i for i in ir.instructions if isinstance(i, IR.Call))
        assert call.args == (IR.StrLit("hi"),)

    def test_callee_names(self):
        ir = lower_function(
            _fn([N.asg(N.var("v0"), N.call("g", N.num(1))),
                 N.asg(N.var("v0"), N.call("g", N.num(2))),
                 N.ret(N.num(0))])
        )
        assert ir.callee_names() == ("g", "g")


class TestControlFlow:
    def test_if_without_else(self):
        ir = lower_function(
            _fn([N.if_(N.binop(Ops.LT, N.var("a0"), N.num(1)),
                       N.block(N.asg(N.var("v0"), N.num(1)))),
                 N.ret(N.num(0))])
        )
        cond = next(i for i in ir.instructions if isinstance(i, IR.CondJump))
        # branch is taken when the NEGATED condition holds
        assert cond.op == Ops.GE
        labels = ir.labels()
        assert cond.target in labels

    def test_if_else_has_jump_over_else(self):
        ir = lower_function(
            _fn([N.if_(N.binop(Ops.EQ, N.var("a0"), N.num(0)),
                       N.block(N.asg(N.var("v0"), N.num(1))),
                       N.block(N.asg(N.var("v0"), N.num(2)))),
                 N.ret(N.var("v0"))])
        )
        assert any(isinstance(i, IR.Jump) for i in ir.instructions)
        assert len(ir.labels()) == 2

    def test_while_shape(self):
        ir = lower_function(
            _fn([N.while_(N.binop(Ops.LT, N.var("v0"), N.num(3)),
                          N.block(N.binop(Ops.ASG_ADD, N.var("v0"), N.num(1)))),
                 N.ret(N.num(0))])
        )
        # head label, negated branch to end, back jump
        cond = next(i for i in ir.instructions if isinstance(i, IR.CondJump))
        assert cond.op == Ops.GE
        jumps = [i for i in ir.instructions if isinstance(i, IR.Jump)]
        assert len(jumps) == 1

    def test_for_lowered_with_step_label(self):
        ir = lower_function(
            _fn([N.for_(N.asg(N.var("v0"), N.num(0)),
                        N.binop(Ops.LT, N.var("v0"), N.num(3)),
                        N.asg(N.var("v0"), N.binop(Ops.ADD, N.var("v0"), N.num(1))),
                        N.block(N.asg(N.var("v0"), N.var("v0")))),
                 N.ret(N.num(0))])
        )
        assert len(ir.labels()) == 3  # head, step, end

    def test_break_targets_loop_end(self):
        ir = lower_function(
            _fn([N.while_(N.binop(Ops.LT, N.var("v0"), N.num(3)),
                          N.block(Node(Ops.BREAK))),
                 N.ret(N.num(0))])
        )
        cond = next(i for i in ir.instructions if isinstance(i, IR.CondJump))
        break_jump = next(i for i in ir.instructions if isinstance(i, IR.Jump))
        assert break_jump.target == cond.target

    def test_break_outside_loop_raises(self):
        with pytest.raises(LoweringError):
            lower_function(_fn([Node(Ops.BREAK)]))

    def test_continue_outside_loop_raises(self):
        with pytest.raises(LoweringError):
            lower_function(_fn([Node(Ops.CONTINUE)]))

    def test_switch_lowering(self):
        switch = Node(Ops.SWITCH, (
            N.var("a0"),
            N.num(1), N.block(N.asg(N.var("v0"), N.num(10))),
            N.num(2), N.block(N.asg(N.var("v0"), N.num(20))),
        ))
        ir = lower_function(_fn([switch, N.ret(N.var("v0"))]))
        conds = [i for i in ir.instructions if isinstance(i, IR.CondJump)]
        assert len(conds) == 2
        assert all(c.op == Ops.NE for c in conds)

    def test_comparison_materialisation(self):
        """x = (a < b) produces a 0/1 temp via branch+moves."""
        ir = lower_function(
            _fn([N.asg(N.var("v0"), N.binop(Ops.LT, N.var("a0"), N.num(5))),
                 N.ret(N.var("v0"))])
        )
        moves = [i for i in ir.instructions
                 if isinstance(i, IR.Move) and isinstance(i.src, IR.Imm)]
        assert {m.src.value for m in moves} >= {0, 1}

    def test_non_comparison_condition(self):
        """if (x) tests x != 0 via EQ-to-zero branch."""
        ir = lower_function(
            _fn([N.if_(N.var("a0"), N.block(N.asg(N.var("v0"), N.num(1)))),
                 N.ret(N.num(0))])
        )
        cond = next(i for i in ir.instructions if isinstance(i, IR.CondJump))
        assert cond.op == Ops.EQ and cond.rhs == IR.Imm(0)


class TestErrors:
    def test_non_variable_assignment_target(self):
        bad = Node(Ops.ASG, (N.num(1), N.num(2)))
        with pytest.raises(LoweringError):
            lower_function(_fn([bad]))

    def test_unsupported_statement(self):
        with pytest.raises(LoweringError):
            lower_function(_fn([Node(Ops.GOTO, value="somewhere")]))

    def test_lowerer_reusable(self):
        lowerer = Lowerer()
        fn = _fn([N.ret(N.num(1))])
        first = lowerer.lower(fn)
        second = lowerer.lower(fn)
        assert [str(i) for i in first.instructions] == [
            str(i) for i in second.instructions
        ]
