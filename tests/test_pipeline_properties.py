"""Property-based tests over the full compile/decompile pipeline."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.pipeline import (
    CompilationOptions,
    compile_function,
    compile_package,
    cross_compile,
    library_function_defs,
)
from repro.compiler.isa import SUPPORTED_ARCHES
from repro.decompiler import decompile_binary
from repro.lang.generator import GeneratorConfig, ProgramGenerator
from repro.lang.interp import Interpreter, run_decompiled
from repro.lang.nodes import Package


class TestCompilationOptions:
    def test_explicit_threshold_overrides_default(self):
        options = CompilationOptions(inline_threshold=0)
        for arch in SUPPORTED_ARCHES:
            assert options.effective_inline_threshold(arch) == 0

    def test_no_inlining_keeps_all_calls(self, package):
        plain = compile_package(package, "arm",
                                CompilationOptions(inline_threshold=0))
        inlined = compile_package(package, "arm")
        plain_calls = sum(
            len(f.callees) for f in decompile_binary(plain)
        )
        inlined_calls = sum(
            len(f.callees) for f in decompile_binary(inlined)
        )
        assert plain_calls >= inlined_calls

    def test_no_library_option(self, package):
        with pytest.raises(Exception):
            # call targets into the library cannot resolve
            compile_package(package, "x86",
                            CompilationOptions(include_library=False))

    def test_unknown_arch_rejected(self, package):
        with pytest.raises(ValueError):
            compile_package(package, "mips")

    def test_cross_compile_covers_arches(self, package):
        binaries = cross_compile(package, arches=("x86", "arm"))
        assert set(binaries) == {"x86", "arm"}


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6),
       arch=st.sampled_from(SUPPORTED_ARCHES))
def test_roundtrip_property(seed, arch):
    """Hypothesis: any generated function survives compile -> decompile with
    identical behaviour on any architecture."""
    config = GeneratorConfig(functions_per_package=2, max_statements=5)
    generator = ProgramGenerator(seed=seed, config=config)
    package = generator.generate_package("prop")
    interp = Interpreter(list(package.functions) + library_function_defs())
    binary = compile_package(package, arch)
    decompiled = {f.name: f for f in decompile_binary(binary)}
    from repro.utils.rng import RNG

    rng = RNG(seed)
    for fn in package.functions:
        args = [rng.randint(0, 40) for _ in fn.params]
        assert run_decompiled(
            interp, decompiled[fn.name].ast, len(fn.params), args
        ) == interp.run(fn, args)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10 ** 6))
def test_binary_serialisation_property(seed):
    """Hypothesis: binary serialisation round-trips byte-identically."""
    from repro.binformat.binary import BinaryFile

    config = GeneratorConfig(functions_per_package=2, max_statements=4)
    package = ProgramGenerator(seed=seed, config=config).generate_package("s")
    binary = compile_package(package, "ppc")
    blob = binary.to_bytes()
    assert BinaryFile.from_bytes(blob).to_bytes() == blob


class TestDeterministicBuilds:
    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_bitwise_reproducible(self, package, arch):
        a = compile_package(package, arch)
        b = compile_package(package, arch)
        assert a.to_bytes() == b.to_bytes()
