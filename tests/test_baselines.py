"""Tests for the Diaphora and Gemini baselines."""

import numpy as np
import pytest

from repro.baselines.diaphora import (
    DiaphoraMatcher,
    PRIME_TABLE,
    ast_fuzzy_hash,
)
from repro.baselines.gemini.acfg import N_FEATURES, extract_acfg
from repro.baselines.gemini.model import Gemini, GeminiConfig, GeminiPair
from repro.lang import nodes as N
from repro.lang.nodes import Ops


class TestDiaphora:
    def _tree(self, extra=0):
        stmts = [N.asg(N.var("x"), N.num(1))]
        stmts += [N.asg(N.var("y"), N.binop(Ops.ADD, N.var("x"), N.num(i)))
                  for i in range(extra)]
        stmts.append(N.ret(N.var("x")))
        return N.block(*stmts)

    def test_primes_distinct(self):
        assert len(set(PRIME_TABLE.values())) == len(PRIME_TABLE)

    def test_hash_multiplicative(self):
        """hash(tree) equals the product over node primes."""
        tree = self._tree()
        expected = 1
        for node in tree.walk():
            expected *= PRIME_TABLE[node.op]
        assert ast_fuzzy_hash(tree) == expected

    def test_hash_order_insensitive(self):
        a = N.block(N.asg(N.var("x"), N.num(1)), N.ret(N.var("x")))
        b = N.block(N.ret(N.var("x")), N.asg(N.var("x"), N.num(1)))
        assert ast_fuzzy_hash(a) == ast_fuzzy_hash(b)

    def test_identical_trees_score_one(self):
        matcher = DiaphoraMatcher()
        tree = self._tree()
        assert matcher.similarity(tree, tree) == 1.0

    def test_different_trees_score_below_one(self):
        matcher = DiaphoraMatcher()
        assert matcher.similarity(self._tree(), self._tree(extra=3)) < 1.0

    def test_multiset_mode_monotone(self):
        matcher = DiaphoraMatcher("multiset")
        base = self._tree()
        near = self._tree(extra=1)
        far = self._tree(extra=8)
        assert matcher.similarity(base, near) > matcher.similarity(base, far)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            DiaphoraMatcher("sha256")

    def test_product_mode_weak_on_cross_arch(self, openssl_small):
        """The faithful product comparison is near-chance on cross-arch
        pairs -- the paper's headline Diaphora result (AUC ≈ 0.54)."""
        from repro.core.pairs import build_cross_arch_pairs
        from repro.evalsuite.metrics import roc_auc

        pairs = build_cross_arch_pairs(openssl_small.functions, 10, seed=3)
        matcher = DiaphoraMatcher("product")
        labels = [1 if p.label > 0 else 0 for p in pairs]
        scores = [matcher.similarity(p.first.ast, p.second.ast) for p in pairs]
        assert roc_auc(labels, scores) < 0.8


class TestACFG:
    def test_feature_matrix_shape(self, binaries):
        binary = binaries["x86"]
        acfg = extract_acfg(binary, binary.functions[0])
        assert acfg.features.shape == (acfg.n_blocks, N_FEATURES)
        assert acfg.adjacency.shape == (acfg.n_blocks, acfg.n_blocks)

    def test_instruction_counts_sum(self, binaries):
        binary = binaries["x86"]
        record = binary.functions[0]
        acfg = extract_acfg(binary, record)
        assert acfg.features[:, 4].sum() == record.n_instructions

    def test_call_counts(self, package, binaries):
        binary = binaries["ppc"]
        from repro.disasm.disassembler import disassemble_function

        for fn in package.functions[:3]:
            record = binary.function_named(fn.name)
            acfg = extract_acfg(binary, record)
            asm = disassemble_function(binary, record)
            assert acfg.features[:, 3].sum() == len(asm.callee_names())

    def test_arch_sensitivity(self, package, binaries):
        """ACFGs differ across architectures (the baseline's weakness)."""
        name = package.functions[0].name
        x86 = extract_acfg(binaries["x86"], binaries["x86"].function_named(name))
        arm = extract_acfg(binaries["arm"], binaries["arm"].function_named(name))
        assert x86.features[:, 4].sum() != arm.features[:, 4].sum()

    def test_metadata(self, binaries):
        binary = binaries["arm"]
        acfg = extract_acfg(binary, binary.functions[0])
        assert acfg.arch == "arm"
        assert acfg.binary_name == binary.name


class TestGemini:
    def test_encode_shape_and_determinism(self, buildroot_small):
        gemini = Gemini(GeminiConfig(embedding_dim=16, seed=0))
        fn = buildroot_small.functions["x86"][0]
        acfg = buildroot_small.acfg_for(fn)
        v1, v2 = gemini.encode(acfg), gemini.encode(acfg)
        assert v1.shape == (16,)
        np.testing.assert_array_equal(v1, v2)

    def test_similarity_bounds(self, buildroot_small):
        gemini = Gemini(GeminiConfig(embedding_dim=16))
        fns = buildroot_small.functions["x86"][:4]
        acfgs = [buildroot_small.acfg_for(f) for f in fns]
        for a in acfgs:
            for b in acfgs:
                assert 0.0 <= gemini.similarity(a, b) <= 1.0
        assert gemini.similarity(acfgs[0], acfgs[0]) == pytest.approx(1.0)

    def test_similarity_from_matrix_matches_per_pair(
        self, buildroot_small
    ):
        gemini = Gemini(GeminiConfig(embedding_dim=16, seed=2))
        fns = buildroot_small.functions["x86"][:5]
        vectors = np.stack(
            [gemini.encode(buildroot_small.acfg_for(f)) for f in fns]
        )
        queries = vectors[:2]
        batched = gemini.similarity_from_matrix(queries, vectors)
        assert batched.shape == (2, 5)
        for i in range(2):
            singles = [
                gemini.similarity_from_vectors(queries[i], vectors[j])
                for j in range(5)
            ]
            np.testing.assert_allclose(batched[i], singles, atol=1e-12)
        one = gemini.similarity_from_matrix(queries[0], vectors)
        np.testing.assert_allclose(one, batched[0], atol=1e-12)

    def test_training_improves_separation(self, buildroot_small):
        from repro.core.pairs import build_cross_arch_pairs

        labeled = build_cross_arch_pairs(buildroot_small.functions, 10, seed=4)
        pairs = [
            GeminiPair(
                buildroot_small.acfg_for(p.first),
                buildroot_small.acfg_for(p.second),
                p.label,
            )
            for p in labeled
        ]
        gemini = Gemini(GeminiConfig(embedding_dim=16, iterations=3))
        history = gemini.train(pairs[:40], pairs[40:60], epochs=3, lr=0.005)
        assert history.losses[-1] < history.losses[0]
        assert 0.0 <= history.best_auc <= 1.0

    def test_save_load(self, tmp_path, buildroot_small):
        gemini = Gemini(GeminiConfig(embedding_dim=16))
        fn = buildroot_small.functions["arm"][0]
        acfg = buildroot_small.acfg_for(fn)
        before = gemini.encode(acfg)
        gemini.save(tmp_path / "gemini.npz")
        restored = Gemini.load(tmp_path / "gemini.npz")
        np.testing.assert_allclose(restored.encode(acfg), before)
