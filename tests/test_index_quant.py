"""Tiered ANN backend: int8 quantization, IVF probing, persisted state.

Covers the ``ivf-pq`` tier end to end: the symmetric per-dimension int8
scheme's error bound, deterministic k-means partitioning, recall against
the exact sweep on clustered synthetic corpora, the persisted-state life
cycle (clean reopen quantizes zero rows, prefix states extend
incrementally, torn writes keep the previous generation), the typed
unknown-backend error, and the synth-corpus ground-truth layout the
recall measurements rely on.
"""

import numpy as np
import pytest

import repro.faults as faults
from repro.api.errors import BadRequestError
from repro.faults import FaultInjected
from repro.index.ann import (
    BruteForceIndex,
    backend_is_stateful,
    known_backends,
    make_index,
    select_top_k,
)
from repro.index.quant import (
    IvfPqIndex,
    default_n_lists,
    dequantize_int8,
    kmeans_centroids,
    quantize_int8,
)
from repro.index.search import SearchService
from repro.index.store import EmbeddingStore
from repro.index.synth import (
    SynthSpec,
    cluster_rows,
    distance_head_model,
    synth_corpus,
    synth_queries,
)

DIM = 16


@pytest.fixture(autouse=True)
def _disarm_faults():
    faults.configure("")
    yield
    faults.configure("")


@pytest.fixture(scope="module")
def model():
    return distance_head_model(DIM)


@pytest.fixture(scope="module")
def spec():
    return SynthSpec(n_functions=600, dim=DIM, cluster_size=12, seed=5)


def _filled_store(root, spec, shard_size=64):
    store = EmbeddingStore.create(root, dim=spec.dim, shard_size=shard_size)
    synth_corpus(store, spec)
    return store


def _rows(neighbors):
    return [n.row for n in neighbors]


# -- int8 quantization -----------------------------------------------------


class TestQuantizeInt8:
    def test_round_trip_error_bounded_by_half_scale(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(200, 12)).astype(np.float32) * 3.0
        codes, scales = quantize_int8(matrix)
        assert codes.dtype == np.int8
        error = np.abs(dequantize_int8(codes, scales) - matrix)
        # symmetric rounding: at most half a quantization step per dim
        assert np.all(error <= scales[None, :] / 2 + 1e-6)

    def test_zero_column_never_divides_by_zero(self):
        matrix = np.zeros((4, 3), dtype=np.float32)
        matrix[:, 0] = [1.0, -2.0, 0.5, 2.0]
        codes, scales = quantize_int8(matrix)
        assert scales[1] == 1.0 and scales[2] == 1.0
        assert np.all(codes[:, 1:] == 0)

    def test_existing_scales_reproduce_codes(self):
        rng = np.random.default_rng(1)
        matrix = rng.normal(size=(50, 6))
        codes, scales = quantize_int8(matrix)
        again, _ = quantize_int8(matrix[:20], scales)
        assert np.array_equal(again, codes[:20])

    def test_kmeans_is_deterministic_and_clamps(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(size=(80, 5))
        a = kmeans_centroids(sample, 8, seed=3)
        b = kmeans_centroids(sample, 8, seed=3)
        assert np.array_equal(a, b)
        assert kmeans_centroids(sample[:4], 16, seed=3).shape[0] == 4
        with pytest.raises(ValueError):
            kmeans_centroids(sample[:0], 4, seed=3)

    def test_default_n_lists_tracks_sqrt(self):
        assert default_n_lists(0) == 1
        assert default_n_lists(1_000_000) == 1000
        assert default_n_lists(10**9) == 4096  # capped


# -- the tiered index ------------------------------------------------------


class TestIvfPqIndex:
    def test_recall_matches_exact_on_clusters(self, tmp_path, model, spec):
        store = _filled_store(tmp_path / "idx", spec)
        queries = synth_queries(spec, range(8))
        exact = BruteForceIndex(
            model, store.vectors(), store.callee_counts()
        )
        tier = IvfPqIndex(
            model, store.vectors(), store.callee_counts(), seed=2
        )
        for query, cluster in zip(queries, range(8)):
            want = exact.top_k(query, k=10)
            got = tier.top_k(query, k=10)
            assert _rows(got) == _rows(want)
            # ground truth: the query's own cluster dominates its top-k
            start, stop = cluster_rows(spec, cluster)
            assert all(start <= n.row < stop for n in got)

    def test_candidates_sorted_and_capped(self, tmp_path, model, spec):
        store = _filled_store(tmp_path / "idx", spec)
        tier = IvfPqIndex(
            model, store.vectors(), store.callee_counts(), seed=2
        )
        matrix = np.stack(
            [q.vector for q in synth_queries(spec, range(4))]
        )
        for rows in tier.candidate_rows_batch(matrix, 24):
            assert rows.size <= 24
            assert np.all(np.diff(rows) > 0)  # ascending, unique

    def test_knob_validation(self, model):
        vectors = np.zeros((4, DIM))
        counts = np.zeros(4, dtype=np.int64)
        with pytest.raises(ValueError):
            IvfPqIndex(model, vectors, counts, nprobe=0)
        with pytest.raises(ValueError):
            IvfPqIndex(model, vectors, counts, rerank=0)
        with pytest.raises(ValueError):
            IvfPqIndex(model, vectors, counts, pq_m=3)  # 3 does not divide 16

    def test_empty_corpus(self, model, spec):
        tier = IvfPqIndex(
            model, np.zeros((0, DIM)), np.zeros(0, dtype=np.int64)
        )
        queries = synth_queries(spec, [0, 1])
        assert tier.top_k_batch(queries, k=5) == [[], []]

    def test_rerank_knob_sets_oversample(self, model):
        rng = np.random.default_rng(3)
        vectors = rng.normal(size=(40, DIM))
        counts = np.zeros(40, dtype=np.int64)
        tier = IvfPqIndex(model, vectors, counts, rerank=3)
        assert tier.oversample == 3

    def test_pq_codebooks_shrink_residency(self, tmp_path, model, spec):
        store = _filled_store(tmp_path / "idx", spec)
        queries = synth_queries(spec, range(6))
        int8_tier = IvfPqIndex(
            model, store.vectors(), store.callee_counts(), seed=2
        )
        pq_tier = IvfPqIndex(
            model, store.vectors(), store.callee_counts(), seed=2, pq_m=4
        )
        assert pq_tier.pq_m == 4
        assert pq_tier._pq_codes.shape == (len(store), 4)
        # 4 bytes/row of codes vs 16; the codebooks themselves are O(1),
        # so only the per-row arrays are compared here
        assert pq_tier._pq_codes.nbytes < int8_tier._codes.nbytes
        assert pq_tier.resident_nbytes > 0
        exact = BruteForceIndex(
            model, store.vectors(), store.callee_counts()
        )
        hits = 0
        for query in queries:
            want = set(_rows(exact.top_k(query, k=10)))
            got = set(_rows(pq_tier.top_k(query, k=10)))
            hits += len(want & got) / max(1, len(want))
        assert hits / len(queries) >= 0.9


# -- persisted state -------------------------------------------------------


class TestPersistedIvfPq:
    def test_reopen_quantizes_zero_rows(self, tmp_path, model, spec):
        store = _filled_store(tmp_path / "idx", spec)
        built = IvfPqIndex(
            model, store.vectors(), store.callee_counts(), seed=7
        )
        assert built.rows_quantized == len(store)
        assert not built.loaded_from_state
        store.write_ann_state(*built.state_dict())
        assert (tmp_path / "idx" / "ann-ivf-pq.npz").exists()

        reopened = EmbeddingStore.open(tmp_path / "idx")
        restored = IvfPqIndex(
            model, reopened.vectors(), reopened.callee_counts(),
            seed=7, state=reopened.read_ann_state(),
        )
        assert restored.loaded_from_state
        assert restored.rows_quantized == 0
        assert restored.rows_projected == 0
        for query in synth_queries(spec, range(6)):
            assert _rows(built.top_k(query, k=8)) \
                == _rows(restored.top_k(query, k=8))

    def test_prefix_state_extends_incrementally(
        self, tmp_path, model, spec
    ):
        store = _filled_store(tmp_path / "idx", spec)
        built = IvfPqIndex(
            model, store.vectors(), store.callee_counts(), seed=7
        )
        store.write_ann_state(*built.state_dict())
        state = store.read_ann_state()
        rng = np.random.default_rng(9)
        store.append_rows(
            rng.normal(size=(20, DIM)), np.zeros(20, dtype=np.int64)
        )
        extended = IvfPqIndex(
            model, store.vectors(), store.callee_counts(),
            seed=7, state=state,
        )
        assert extended.loaded_from_state
        assert extended.rows_quantized == 20
        assert extended._assignments.shape[0] == len(store)

    def test_mismatched_seed_forces_rebuild(self, tmp_path, model, spec):
        store = _filled_store(tmp_path / "idx", spec)
        built = IvfPqIndex(
            model, store.vectors(), store.callee_counts(), seed=7
        )
        store.write_ann_state(*built.state_dict())
        other = IvfPqIndex(
            model, store.vectors(), store.callee_counts(),
            seed=8, state=store.read_ann_state(),
        )
        assert not other.loaded_from_state
        assert other.rows_quantized == len(store)

    def test_service_round_trips_state_with_checksum(
        self, tmp_path, model, spec
    ):
        store = _filled_store(tmp_path / "idx", spec)
        service = SearchService(model, store, backend="ivf-pq", seed=4)
        assert service.index().rows_quantized == len(store)
        manifest = store.ann
        assert manifest["kind"] == "ivf-pq"
        assert manifest["file"] == "ann-ivf-pq.npz"
        assert len(manifest["sha256"]) == 64

        again = SearchService(
            model, EmbeddingStore.open(tmp_path / "idx"),
            backend="ivf-pq", seed=4,
        )
        index = again.index()
        assert index.loaded_from_state
        assert index.rows_quantized == 0
        info = again.ann_info()
        assert info["persisted"] is True
        assert info["nprobe"] == 8
        assert info["rows_quantized"] == 0
        queries = synth_queries(spec, range(4))
        for query in queries:
            assert [h.row for h in service.query(query, top_k=5)] \
                == [h.row for h in again.query(query, top_k=5)]

    def test_torn_persist_keeps_previous_generation(
        self, tmp_path, model, spec
    ):
        store = _filled_store(tmp_path / "idx", spec)
        built = IvfPqIndex(
            model, store.vectors(), store.callee_counts(), seed=7
        )
        store.write_ann_state(*built.state_dict())
        good_sha = store.ann["sha256"]
        faults.configure("ann.persist.pre_rename=raise*1")
        with pytest.raises(FaultInjected):
            store.write_ann_state(*built.state_dict())
        reopened = EmbeddingStore.open(tmp_path / "idx")
        assert reopened.ann["sha256"] == good_sha
        state = reopened.read_ann_state()
        assert state is not None
        restored = IvfPqIndex(
            model, reopened.vectors(), reopened.callee_counts(),
            seed=7, state=state,
        )
        assert restored.rows_quantized == 0

    def test_build_fault_degrades_service_to_exact(
        self, tmp_path, model, spec
    ):
        store = _filled_store(tmp_path / "idx", spec)
        service = SearchService(model, store, backend="ivf-pq", seed=4)
        faults.configure("ann.build=raise")
        hits = service.query(synth_queries(spec, [0])[0], top_k=5)
        assert len(hits) == 5  # exact sweep answered instead of failing
        assert any(
            "serving exact sweeps" in r for r in service.degraded_reasons
        )


# -- backend registry ------------------------------------------------------


class TestBackendRegistry:
    def test_make_index_builds_ivf_pq(self, model):
        rng = np.random.default_rng(4)
        index = make_index(
            "ivf-pq", model, rng.normal(size=(30, DIM)),
            np.zeros(30, dtype=np.int64), nprobe=2, rerank=4,
        )
        assert isinstance(index, IvfPqIndex)
        assert index.nprobe == 2 and index.oversample == 4

    def test_unknown_backend_is_a_typed_bad_request(self, model):
        with pytest.raises(BadRequestError) as excinfo:
            make_index(
                "bogus", model, np.zeros((2, DIM)),
                np.zeros(2, dtype=np.int64),
            )
        assert "bogus" in str(excinfo.value)
        assert "ivf-pq" in str(excinfo.value)

    def test_statefulness_and_listing(self):
        assert backend_is_stateful("ivf-pq")
        assert backend_is_stateful("lsh")
        assert not backend_is_stateful("exact")
        assert "ivf-pq" in known_backends()


# -- synthetic corpus ground truth -----------------------------------------


class TestSynthCorpus:
    def test_layout_is_cluster_contiguous_and_deterministic(
        self, tmp_path, spec
    ):
        a = _filled_store(tmp_path / "a", spec)
        b = _filled_store(tmp_path / "b", spec, shard_size=128)
        # chunking/sharding must not change a single byte of geometry
        assert np.array_equal(
            np.asarray(a.vectors()), np.asarray(b.vectors())
        )
        start, stop = cluster_rows(spec, 3)
        block = np.asarray(a.vectors())[start:stop]
        # one tight cluster: spread around its center stays noise-sized
        assert np.abs(block - block.mean(axis=0)).max() < 6 * spec.noise
        meta = a.metadata_at(start)
        assert meta.name == f"synth_{start:08d}"
        assert meta.binary_name == "synthbin_0000003"
        assert meta.arch == "synth"

    def test_requires_empty_matching_store(self, tmp_path, spec):
        store = EmbeddingStore.create(tmp_path / "idx", dim=spec.dim)
        synth_corpus(store, spec)
        with pytest.raises(ValueError):
            synth_corpus(store, spec)  # not empty any more
        other = EmbeddingStore.create(tmp_path / "other", dim=spec.dim + 1)
        with pytest.raises(ValueError):
            synth_corpus(other, spec)

    def test_queries_target_their_cluster(self, spec):
        queries = synth_queries(spec, [2, 2, 7])
        assert queries[0].callee_count == queries[1].callee_count
        # fresh perturbations: never identical to each other
        assert not np.array_equal(queries[0].vector, queries[1].vector)
        assert queries[2].binary_name == "synthbin_0000007"


# -- int8-heavy tie-break fuzz ---------------------------------------------


class TestQuantizedTieFuzz:
    def test_select_top_k_under_heavy_int8_ties(self):
        # int8-rounded scores collapse to few distinct values, so the
        # boundary tie handling does all the work; the lexsort reference
        # must be matched position for position
        rng = np.random.default_rng(12)
        for trial in range(40):
            n = int(rng.integers(5, 400))
            scores = rng.integers(-127, 128, size=n) / 127.0
            rows = rng.permutation(n * 3)[:n]
            k = int(rng.integers(1, n + 3))
            want = np.lexsort((rows, -scores))[:k]
            got = select_top_k(scores, rows, k)
            assert list(got) == list(want)

    def test_batch_rerank_breaks_int8_ties_by_row(self, model):
        # duplicated vectors quantize to identical codes *and* score
        # identically in the exact rerank: ascending row must decide,
        # in both the single-query and the batched path
        base = np.ones(DIM)
        vectors = np.stack([base] * 30)
        counts = np.zeros(30, dtype=np.int64)
        tier = IvfPqIndex(
            model, vectors, counts, n_lists=1, nprobe=1, seed=0
        )
        query = synth_queries(
            SynthSpec(n_functions=30, dim=DIM, seed=0), [0]
        )[0]
        single = tier.top_k(query, k=8)
        batched = tier.top_k_batch([query, query], k=8)
        assert _rows(single) == list(range(8))
        for result in batched:
            assert _rows(result) == list(range(8))
