"""Tests for the pretty printer and the interpreter."""

import pytest

from repro.lang import nodes as N
from repro.lang.interp import Interpreter, InterpError, run_decompiled, string_value
from repro.lang.nodes import FunctionDef, Node, Ops
from repro.lang.printer import expr_to_source, to_source


def _fn(body_stmts, params=("a0",), local_vars=("v0",)):
    return FunctionDef("f", tuple(params), tuple(local_vars), N.block(*body_stmts))


class TestPrinter:
    def test_expression_rendering(self):
        expr = N.binop(Ops.ADD, N.var("x"), N.binop(Ops.MUL, N.num(2), N.var("y")))
        assert expr_to_source(expr) == "(x + (2 * y))"

    def test_compound_assignment(self):
        stmt = N.binop(Ops.ASG_ADD, N.var("x"), N.num(3))
        assert expr_to_source(stmt) == "x += 3"

    def test_call_and_string(self):
        expr = N.call("printf", N.string("%d"), N.var("x"))
        assert expr_to_source(expr) == 'printf("%d", x)'

    def test_unary(self):
        assert expr_to_source(Node(Ops.NEG, (N.var("x"),))) == "-(x)"
        assert expr_to_source(Node(Ops.NOT, (N.var("x"),))) == "~(x)"
        assert expr_to_source(Node(Ops.POST_INC, (N.var("x"),))) == "x++"

    def test_full_function(self):
        fn = _fn([
            N.if_(N.binop(Ops.LT, N.var("a0"), N.num(1)),
                  N.block(N.asg(N.var("v0"), N.num(1))),
                  N.block(N.asg(N.var("v0"), N.var("a0")))),
            N.ret(N.var("v0")),
        ])
        source = to_source(fn)
        assert "int f(int a0)" in source
        assert "if ((a0 < 1)) {" in source
        assert "} else {" in source
        assert "return v0;" in source

    def test_loops_render(self):
        fn = _fn([
            N.for_(N.asg(N.var("v0"), N.num(0)),
                   N.binop(Ops.LT, N.var("v0"), N.num(3)),
                   N.asg(N.var("v0"), N.binop(Ops.ADD, N.var("v0"), N.num(1))),
                   N.block(Node(Ops.BREAK))),
            N.while_(N.binop(Ops.GT, N.var("a0"), N.num(0)),
                     N.block(Node(Ops.CONTINUE))),
            N.ret(N.num(0)),
        ])
        source = to_source(fn)
        assert "for (" in source and "while (" in source
        assert "break;" in source and "continue;" in source


class TestInterpreter:
    def test_arithmetic(self):
        fn = _fn([N.ret(N.binop(Ops.ADD, N.var("a0"), N.num(5)))])
        assert Interpreter().run(fn, [3]) == 8

    def test_c_division_truncates_toward_zero(self):
        fn = _fn([N.ret(N.binop(Ops.DIV, N.var("a0"), N.num(2)))])
        interp = Interpreter()
        assert interp.run(fn, [7]) == 3
        assert interp.run(fn, [-7]) == -3  # not floor (-4)

    def test_division_by_zero_raises(self):
        fn = _fn([N.ret(N.binop(Ops.DIV, N.num(1), N.var("a0")))])
        with pytest.raises(InterpError):
            Interpreter().run(fn, [0])

    def test_while_loop(self):
        # v0 = 0; while (v0 < a0) v0 += 2; return v0
        fn = _fn([
            N.asg(N.var("v0"), N.num(0)),
            N.while_(N.binop(Ops.LT, N.var("v0"), N.var("a0")),
                     N.block(N.binop(Ops.ASG_ADD, N.var("v0"), N.num(2)))),
            N.ret(N.var("v0")),
        ])
        assert Interpreter().run(fn, [5]) == 6

    def test_for_loop_with_break(self):
        fn = _fn([
            N.asg(N.var("v0"), N.num(0)),
            N.for_(
                N.asg(N.var("t"), N.num(0)),
                N.binop(Ops.LT, N.var("t"), N.num(100)),
                N.asg(N.var("t"), N.binop(Ops.ADD, N.var("t"), N.num(1))),
                N.block(
                    N.binop(Ops.ASG_ADD, N.var("v0"), N.num(1)),
                    N.if_(N.binop(Ops.GE, N.var("v0"), N.num(3)),
                          N.block(Node(Ops.BREAK))),
                ),
            ),
            N.ret(N.var("v0")),
        ], local_vars=("v0", "t"))
        assert Interpreter().run(fn, [0]) == 3

    def test_continue_in_while(self):
        # counts odd numbers below a0
        fn = _fn([
            N.asg(N.var("v0"), N.num(0)),
            N.asg(N.var("t"), N.num(0)),
            N.while_(
                N.binop(Ops.LT, N.var("t"), N.var("a0")),
                N.block(
                    N.asg(N.var("t"), N.binop(Ops.ADD, N.var("t"), N.num(1))),
                    N.if_(N.binop(Ops.EQ,
                                  N.binop(Ops.AND, N.var("t"), N.num(1)),
                                  N.num(0)),
                          N.block(Node(Ops.CONTINUE))),
                    N.binop(Ops.ASG_ADD, N.var("v0"), N.num(1)),
                ),
            ),
            N.ret(N.var("v0")),
        ], local_vars=("v0", "t"))
        assert Interpreter().run(fn, [10]) == 5

    def test_calls_resolve(self):
        callee = FunctionDef("g", ("a0",), (),
                             N.block(N.ret(N.binop(Ops.MUL, N.var("a0"), N.num(2)))))
        caller = _fn([N.ret(N.call("g", N.var("a0")))])
        interp = Interpreter([callee])
        assert interp.run(caller, [21]) == 42

    def test_undefined_function_raises(self):
        fn = _fn([N.ret(N.call("nope", N.num(1)))])
        with pytest.raises(InterpError):
            Interpreter().run(fn, [0])

    def test_unassigned_variable_raises(self):
        fn = _fn([N.ret(N.var("v0"))])
        with pytest.raises(InterpError):
            Interpreter().run(fn, [0])

    def test_wrong_arity_raises(self):
        fn = _fn([N.ret(N.num(0))])
        with pytest.raises(InterpError):
            Interpreter().run(fn, [1, 2])

    def test_step_budget(self):
        fn = _fn([
            N.asg(N.var("v0"), N.num(0)),
            N.while_(N.binop(Ops.GE, N.var("v0"), N.num(0)),
                     N.block(N.binop(Ops.ASG_ADD, N.var("v0"), N.num(1)))),
            N.ret(N.num(0)),
        ])
        with pytest.raises(InterpError):
            Interpreter(max_steps=1000).run(fn, [0])

    def test_string_value_stable(self):
        assert string_value("abc") == string_value("abc")
        assert string_value("abc") != string_value("abd")

    def test_unary_and_logical(self):
        fn = _fn([N.ret(Node(Ops.LNOT, (N.var("a0"),)))])
        interp = Interpreter()
        assert interp.run(fn, [0]) == 1
        assert interp.run(fn, [7]) == 0
        fn2 = _fn([N.ret(Node(Ops.NOT, (N.var("a0"),)))])
        assert interp.run(fn2, [0]) == -1

    def test_run_decompiled_positional_params(self):
        body = N.block(N.ret(N.binop(Ops.SUB, N.var("a0"), N.var("a1"))))
        assert run_decompiled(Interpreter(), body, 2, [10, 4]) == 6
        with pytest.raises(InterpError):
            run_decompiled(Interpreter(), body, 2, [10])
