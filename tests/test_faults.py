"""Chaos tests: failpoint injection, retry, worker crashes, deadlines,
load shedding and draining shutdown.

The failpoint subsystem (`repro.faults`) is process-global by design, so
every test that arms faults disarms them again via the autouse fixture
below -- a leaked failpoint would make unrelated tests flaky in exactly
the way this suite exists to prevent.
"""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro.faults as faults
from repro.api import AsteriaEngine, EngineConfig, EngineServer
from repro.api.batching import MicroBatcher
from repro.api.errors import DeadlineExceededError
from repro.faults import FaultInjected, KILL_EXIT_CODE, parse_spec
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import WorkerTaskError
from repro.pipeline.workers import extract_all, extract_stream
from repro.utils import RetryError, backoff_delays, retry

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No test may leak armed failpoints into the rest of the suite."""
    faults.clear()
    yield
    faults.clear()


# -- spec parsing ----------------------------------------------------------


class TestSpecParsing:
    def test_modes_args_and_counters(self):
        points = parse_spec(
            "a=raise, b=delay:250@3, c=kill*2; d=raise@2*1"
        )
        by_name = {p.name: p for p in points}
        assert set(by_name) == {"a", "b", "c", "d"}
        assert by_name["a"].mode == "raise"
        assert (by_name["b"].mode, by_name["b"].arg) == ("delay", 250.0)
        assert by_name["b"].skip == 2  # "@3" = fire on the 3rd hit
        assert (by_name["c"].mode, by_name["c"].times) == ("kill", 2)
        assert (by_name["d"].skip, by_name["d"].times) == (1, 1)

    def test_empty_spec_is_no_points(self):
        assert parse_spec("") == []
        assert parse_spec(" , ; ") == []

    @pytest.mark.parametrize("spec", [
        "justaname",              # no '='
        "x=explode",              # unknown mode
        "x=raise*0",              # times must be >= 1
        "x=delay:-5",             # negative delay
    ])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_spec(spec)


# -- injection semantics ---------------------------------------------------


class TestInject:
    def test_disarmed_inject_is_a_no_op(self):
        faults.inject("store.flush.pre_rename")  # must not raise
        assert not faults.is_active()

    def test_raise_mode_names_the_failpoint(self):
        faults.configure("x.y=raise")
        with pytest.raises(FaultInjected) as err:
            faults.inject("x.y")
        assert err.value.failpoint == "x.y"
        faults.inject("other.point")  # unarmed points still pass

    def test_skip_and_times_budgets(self):
        faults.configure("p=raise@2*2")  # fire on hits 2 and 3 only
        faults.inject("p")  # hit 1: skipped
        for _ in range(2):
            with pytest.raises(FaultInjected):
                faults.inject("p")
        faults.inject("p")  # budget exhausted
        assert faults.fired_counts() == {"p": 2}

    def test_delay_mode_sleeps(self):
        faults.configure("slow=delay:50")
        start = time.monotonic()
        faults.inject("slow")
        assert time.monotonic() - start >= 0.045

    def test_clear_restores_fast_path(self):
        faults.configure("x=raise")
        faults.clear()
        assert not faults.is_active()
        faults.inject("x")

    def test_configure_replaces_previous_set(self):
        faults.configure("a=raise")
        faults.configure("b=raise")
        faults.inject("a")  # no longer armed
        with pytest.raises(FaultInjected):
            faults.inject("b")

    def test_kill_mode_exits_with_sigkill_status(self, tmp_path):
        script = (
            "import repro.faults as faults\n"
            "faults.configure('die.here=kill')\n"
            "faults.inject('die.here')\n"
            "print('unreachable')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.pop("REPRO_FAULTS", None)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == KILL_EXIT_CODE
        assert "unreachable" not in proc.stdout

    def test_env_spec_arms_subprocesses(self, tmp_path):
        script = (
            "import repro.faults as faults\n"
            "assert faults.is_active()\n"
            "try:\n"
            "    faults.inject('from.env')\n"
            "except faults.FaultInjected:\n"
            "    print('armed-ok')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FAULTS"] = "from.env=raise"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env=env, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "armed-ok" in proc.stdout

    def test_cross_process_ticket_budget(self, tmp_path):
        # two processes race for one *1 ticket: exactly one fires
        faults.configure("shared=raise*1", state_dir=str(tmp_path))
        fired = 0
        for _ in range(3):  # same-process stands in for forked workers
            try:
                faults.inject("shared")
            except FaultInjected:
                fired += 1
        assert fired == 1
        assert len(list(tmp_path.glob("shared.*.fired"))) == 1


# -- retry helper ----------------------------------------------------------


class TestRetry:
    def test_backoff_delays_grow_and_cap(self):
        class NoJitter:
            @staticmethod
            def random():
                return 0.0

        delays = list(backoff_delays(
            5, base_delay_s=0.1, max_delay_s=0.3, factor=2.0,
            jitter=0.5, rng=NoJitter(),
        ))
        assert delays == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_jitter_only_shrinks_delays(self):
        import random

        delays = list(backoff_delays(
            6, base_delay_s=0.1, max_delay_s=1.0, jitter=0.5,
            rng=random.Random(7),
        ))
        for delay, cap in zip(delays, [0.1, 0.2, 0.4, 0.8, 1.0]):
            assert cap / 2 <= delay <= cap

    def test_retry_recovers_from_transient_failures(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise OSError("transient")
            return "done"

        result = retry(flaky, attempts=4, retry_on=(OSError,),
                       sleep=slept.append)
        assert result == "done"
        assert len(calls) == 3
        assert len(slept) == 2  # one sleep per failed attempt

    def test_retry_exhausted_raises_with_last_error(self):
        def always():
            raise ValueError("permanent")

        with pytest.raises(RetryError) as err:
            retry(always, attempts=3, retry_on=(ValueError,),
                  sleep=lambda _s: None)
        assert isinstance(err.value.last, ValueError)

    def test_retry_does_not_catch_unlisted_errors(self):
        def wrong_kind():
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            retry(wrong_kind, attempts=3, retry_on=(OSError,),
                  sleep=lambda _s: None)


# -- worker pool chaos -----------------------------------------------------


class TestWorkerChaos:
    def _names(self, results):
        return [(r.binary_name, r.arch, tuple(r.names)) for r in results]

    def test_killed_worker_is_replaced_and_task_requeued(
        self, binaries, tmp_path
    ):
        inputs = list(binaries.values())
        baseline = self._names(extract_all(inputs, min_ast_size=5, jobs=1))
        # one worker (any of them) dies mid-task with SIGKILL semantics;
        # the ticket directory bounds the kill to exactly one process
        faults.configure(
            "worker.task=kill*1", state_dir=str(tmp_path / "tickets")
        )
        registry = MetricsRegistry()
        survived = self._names(extract_all(
            inputs, min_ast_size=5, jobs=2, registry=registry,
        ))
        assert survived == baseline  # same results, same order
        assert registry.value("repro_worker_restarts_total") >= 1
        assert registry.value("repro_worker_task_retries_total") >= 1

    def test_transient_task_errors_are_retried(self, binaries, tmp_path):
        inputs = list(binaries.values())
        baseline = self._names(extract_all(inputs, min_ast_size=5, jobs=1))
        # the first two task executions anywhere in the pool raise
        faults.configure(
            "worker.task=raise*2", state_dir=str(tmp_path / "tickets")
        )
        survived = self._names(extract_all(inputs, min_ast_size=5, jobs=2))
        assert survived == baseline

    def test_poison_task_fails_after_bounded_attempts(self, binaries):
        inputs = list(binaries.values())[:2]
        faults.configure("worker.task=raise")  # every attempt raises
        stream = extract_stream(inputs, min_ast_size=5, jobs=2)
        with pytest.raises(WorkerTaskError, match="failed 3 time"):
            list(stream)


# -- micro-batcher deadlines -----------------------------------------------


class TestBatcherDeadline:
    def test_expired_caller_raises_instead_of_waiting(self):
        import numpy as np

        release = threading.Event()

        def slow_encode(trees):
            release.wait(timeout=10)
            return np.zeros((len(trees), 4))

        batcher = MicroBatcher(slow_encode, max_batch_size=2, max_wait_s=0)
        leader = threading.Thread(
            target=lambda: batcher.encode("t0"), daemon=True
        )
        leader.start()
        time.sleep(0.05)  # let the leader claim its batch and block
        try:
            with pytest.raises(DeadlineExceededError):
                batcher.encode("t1", deadline=time.monotonic() + 0.05)
            assert not batcher._pending  # the expired item left the queue
        finally:
            release.set()
            leader.join(timeout=10)

    def test_no_deadline_still_completes(self):
        import numpy as np

        batcher = MicroBatcher(
            lambda trees: np.ones((len(trees), 4)), max_batch_size=4,
        )
        out = batcher.encode_many(["a", "b"], deadline=None)
        assert out.shape == (2, 4)


# -- resilient serving over HTTP -------------------------------------------


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return response.status, json.loads(response.read()), response.headers


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read()), \
                response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


class _RunningServer:
    """A real EngineServer on an ephemeral port, torn down cleanly."""

    def __init__(self, engine):
        self.server = EngineServer(("127.0.0.1", 0), engine)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    def __enter__(self):
        return self.server

    def __exit__(self, *exc):
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=10)


class TestServingResilience:
    def test_healthz_reports_fault_tolerance_fields(self, trained_model):
        engine = AsteriaEngine(EngineConfig(), model=trained_model)
        with _RunningServer(engine) as server:
            status, body, _ = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["degraded"] is False
        assert body["degraded_reasons"] == []
        assert body["quarantined_shards"] == 0
        assert body["draining"] is False
        assert body["inflight"] == 0

    def test_overload_sheds_with_503_and_retry_after(self, trained_model):
        # one admission slot + a 300 ms stall per admitted request: a
        # 6-client burst must shed most of the load instead of queueing
        engine = AsteriaEngine(
            EngineConfig(max_inflight=1, faults="server.request=delay:300"),
            model=trained_model,
        )
        with _RunningServer(engine) as server:
            results = []
            barrier = threading.Barrier(6)

            def client():
                barrier.wait()
                results.append(_post(server, "/v1/compare", {}))

            threads = [
                threading.Thread(target=client) for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            statuses = sorted(code for code, _, _ in results)
            shed = [r for r in results if r[0] == 503]
            # at least one admitted (400: empty compare payload after the
            # injected delay) and at least one shed
            assert statuses.count(503) >= 1, statuses
            assert any(code != 503 for code in statuses), statuses
            for _code, body, headers in shed:
                assert headers["Retry-After"] == "1"
                assert body["exit_code"] == 8
                assert "overloaded" in body["error"]
            assert engine.obs.value("repro_requests_shed_total") \
                == len(shed)
            assert engine.stats().n_shed == len(shed)
            # the metrics exposition carries the shed counter too
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=30
            ) as response:
                text = response.read().decode()
            assert "repro_requests_shed_total" in text

    def test_request_deadline_maps_to_504(self, trained_model):
        from repro.api import IngestRequest

        engine = AsteriaEngine(
            EngineConfig(request_timeout_ms=0.0001),  # expires instantly
            model=trained_model,
        )
        engine.ingest(IngestRequest(corpus_images=1, corpus_seed=4))
        with _RunningServer(engine) as server:
            status, body, _ = _post(
                server, "/v1/query", {"cve": "CVE-2016-2105"},
            )
        assert status == 504
        assert body["exit_code"] == 7
        assert "deadline" in body["error"]
        assert engine.stats().n_timeouts >= 1
        assert engine.obs.value("repro_request_timeouts_total") >= 1

    def test_shutdown_drains_inflight_requests(self, trained_model):
        engine = AsteriaEngine(
            EngineConfig(faults="server.request=delay:400"),
            model=trained_model,
        )
        with _RunningServer(engine) as server:
            slow_result = []

            def slow_client():
                slow_result.append(_post(server, "/v1/compare", {}))

            thread = threading.Thread(target=slow_client)
            thread.start()
            time.sleep(0.1)  # let the slow request get admitted
            status, body, _ = _post(server, "/v1/shutdown", {})
            thread.join(timeout=30)
        assert status == 200
        assert body["status"] == "shutting down"
        assert body["drained"] is True
        # the in-flight request got its (400 empty-payload) answer, not
        # a reset connection
        assert slow_result and slow_result[0][0] == 400

    def test_draining_server_rejects_new_work(self, trained_model):
        engine = AsteriaEngine(EngineConfig(), model=trained_model)
        with _RunningServer(engine) as server:
            server.drain(timeout_s=1.0)
            status, body, headers = _post(server, "/v1/compare", {})
            assert status == 503
            assert headers["Retry-After"] == "1"

    def test_serve_cli_flags_reach_the_config(self):
        config = EngineConfig.from_dict({
            "request_timeout_ms": 250.0,
            "max_inflight": 7,
            "drain_timeout_ms": 100.0,
            "faults": "server.request=delay:1",
        })
        assert config.request_timeout_ms == 250.0
        assert config.max_inflight == 7
        assert config.drain_timeout_ms == 100.0
        assert config.faults == "server.request=delay:1"

    def test_engine_config_arms_faults(self, trained_model):
        AsteriaEngine(
            EngineConfig(faults="cfg.armed=raise"), model=trained_model,
        )
        with pytest.raises(FaultInjected):
            faults.inject("cfg.armed")
