"""Tests for per-architecture instruction selection."""

import pytest

from repro.compiler.codegen import (
    AImm,
    CodegenError,
    Lab,
    Mem,
    Reg,
    Sym,
    select_instructions,
)
from repro.compiler.ir import lower_function
from repro.compiler.isa import SUPPORTED_ARCHES, get_isa
from repro.lang import nodes as N
from repro.lang.nodes import FunctionDef, Node, Ops


def _fn(stmts, params=("a0",), local_vars=("v0",), name="f"):
    return FunctionDef(name, tuple(params), tuple(local_vars), N.block(*stmts))


def _compile(fn, arch):
    return select_instructions(lower_function(fn), arch)


def _mnemonics(asm):
    return [i.mnemonic for i in asm.instructions]


SIMPLE = _fn([
    N.asg(N.var("v0"), N.binop(Ops.ADD, N.var("a0"), N.num(1))),
    N.ret(N.var("v0")),
])

DIAMOND = _fn([
    N.if_(N.binop(Ops.LT, N.var("a0"), N.num(1)),
          N.block(N.asg(N.var("v0"), N.num(1))),
          N.block(N.asg(N.var("v0"), N.var("a0")))),
    N.ret(N.var("v0")),
])

CALL = _fn([
    N.asg(N.var("v0"), N.call("g", N.var("a0"), N.num(7))),
    N.ret(N.var("v0")),
])


class TestAllArches:
    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_only_known_mnemonics(self, arch):
        isa = get_isa(arch)
        for fn in (SIMPLE, DIAMOND, CALL):
            asm = _compile(fn, arch)
            for instr in asm.instructions:
                assert instr.mnemonic in isa.mnemonics, instr.mnemonic

    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_frame_info(self, arch):
        asm = _compile(SIMPLE, arch)
        assert asm.frame.n_params == 1
        assert asm.frame.n_locals == 1

    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_callee_names(self, arch):
        asm = _compile(CALL, arch)
        assert asm.callee_names() == ("g",)

    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_string_literals_collected(self, arch):
        fn = _fn([N.asg(N.var("v0"), N.call("g", N.string("hello"))),
                  N.ret(N.num(0))])
        asm = _compile(fn, arch)
        assert asm.string_literals() == ("hello",)

    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_render_is_textual(self, arch):
        text = _compile(DIAMOND, arch).render()
        assert "arch=" + arch in text


class TestX86:
    def test_prologue(self):
        mnems = _mnemonics(_compile(SIMPLE, "x86"))
        assert mnems[:3] == ["push", "mov", "sub"]

    def test_stack_args_pushed_right_to_left(self):
        asm = _compile(CALL, "x86")
        mnems = _mnemonics(asm)
        call_at = mnems.index("call")
        pushes = [i for i, m in enumerate(mnems[:call_at]) if m == "push"]
        # prologue push + 2 argument pushes
        assert len(pushes) == 3
        # stack cleanup after the call
        assert mnems[call_at + 1] == "add"

    def test_two_operand_accumulator_style(self):
        asm = _compile(SIMPLE, "x86")
        add = next(i for i in asm.instructions if i.mnemonic == "add")
        assert add.operands[0] == Reg("eax")

    def test_strict_immediate_comparison_normalised(self):
        """x86 turns (a < 1) into cmp a, 0 + jle -- the paper Fig. 1 quirk."""
        asm = _compile(DIAMOND, "x86")
        cmp = next(i for i in asm.instructions if i.mnemonic == "cmp")
        assert cmp.operands[1] == AImm(0)
        # lowering negates lt -> ge, then x86 turns ge imm into gt imm-1
        assert "jg" in _mnemonics(asm)

    def test_vars_in_stack_slots(self):
        asm = _compile(SIMPLE, "x86")
        stores = [i for i in asm.instructions
                  if i.mnemonic == "mov" and isinstance(i.operands[0], Mem)]
        assert stores, "locals should live in frame slots"


class TestX64:
    def test_register_args(self):
        asm = _compile(CALL, "x64")
        mnems = _mnemonics(asm)
        assert "push" not in mnems[3:]  # no argument pushes
        call_at = mnems.index("call")
        arg_moves = [
            i for i in asm.instructions[:call_at]
            if i.mnemonic == "mov" and isinstance(i.operands[0], Reg)
            and i.operands[0].name in ("rdi", "rsi")
        ]
        assert len(arg_moves) == 2

    def test_param_spilled_to_frame(self):
        asm = _compile(SIMPLE, "x64")
        spill = asm.instructions[3]
        assert spill.mnemonic == "mov"
        assert isinstance(spill.operands[0], Mem)
        assert spill.operands[1] == Reg("rdi")

    def test_no_comparison_normalisation(self):
        asm = _compile(DIAMOND, "x64")
        cmp = next(i for i in asm.instructions if i.mnemonic == "cmp")
        assert cmp.operands[1] == AImm(1)


class TestARM:
    def test_three_operand_alu(self):
        asm = _compile(SIMPLE, "arm")
        add = next(i for i in asm.instructions if i.mnemonic == "add")
        assert len(add.operands) == 3

    def test_diamond_is_predicated(self):
        asm = _compile(DIAMOND, "arm")
        predicated = [i for i in asm.instructions if i.cond]
        assert predicated, "small if/else should predicate"
        conds = {i.cond for i in predicated}
        assert conds == {"ge", "lt"}
        # no conditional branches at all -> single basic block
        isa = get_isa("arm")
        assert not any(isa.is_conditional_branch(m) for m in _mnemonics(asm))

    def test_else_arm_emitted_first(self):
        """The inverted-condition (else) instructions precede the then ones,
        reproducing the MOVLE-before-STRGT layout of the paper's Figure 2."""
        asm = _compile(DIAMOND, "arm")
        predicated = [i for i in asm.instructions if i.cond]
        assert predicated[0].cond == "ge"  # negated source condition first

    def test_call_uses_bl_and_r0(self):
        asm = _compile(CALL, "arm")
        mnems = _mnemonics(asm)
        assert "bl" in mnems
        bl = next(i for i in asm.instructions if i.mnemonic == "bl")
        assert bl.operands[0] == Sym("g")

    def test_too_many_params_rejected(self):
        fn = _fn([N.ret(N.num(0))], params=("a", "b", "c", "d", "e"))
        with pytest.raises(CodegenError):
            _compile(fn, "arm")

    def test_large_if_not_predicated(self):
        stmts = [N.asg(N.var("v0"), N.binop(Ops.ADD, N.var("a0"), N.num(i)))
                 for i in range(4)]
        fn = _fn([
            N.if_(N.binop(Ops.LT, N.var("a0"), N.num(1)),
                  N.block(*stmts),
                  N.block(N.asg(N.var("v0"), N.var("a0")))),
            N.ret(N.var("v0")),
        ])
        asm = _compile(fn, "arm")
        assert any(get_isa("arm").is_conditional_branch(m) for m in _mnemonics(asm))

    def test_call_in_arm_not_predicated(self):
        fn = _fn([
            N.if_(N.binop(Ops.LT, N.var("a0"), N.num(1)),
                  N.block(N.asg(N.var("v0"), N.call("g", N.num(1)))),
                  N.block(N.asg(N.var("v0"), N.var("a0")))),
            N.ret(N.var("v0")),
        ])
        asm = _compile(fn, "arm")
        assert "bl" in _mnemonics(asm)
        assert any(get_isa("arm").is_conditional_branch(m) for m in _mnemonics(asm))


class TestPPC:
    def test_distinct_mnemonics(self):
        asm = _compile(SIMPLE, "ppc")
        mnems = set(_mnemonics(asm))
        assert "mr" in mnems  # prologue arg move
        assert "addi" in mnems  # add with immediate
        assert "blr" in mnems

    def test_subf_operand_order(self):
        """subf rd, ra, rb computes rb - ra: lhs must be the THIRD operand."""
        fn = _fn([N.asg(N.var("v0"), N.binop(Ops.SUB, N.var("a0"), N.num(3))),
                  N.ret(N.var("v0"))])
        asm = _compile(fn, "ppc")
        subf = next(i for i in asm.instructions if i.mnemonic == "subf")
        assert len(subf.operands) == 3

    def test_cmpwi_for_immediates(self):
        asm = _compile(DIAMOND, "ppc")
        assert "cmpwi" in _mnemonics(asm)

    def test_no_predication(self):
        asm = _compile(DIAMOND, "ppc")
        assert all(not i.cond for i in asm.instructions)


class TestLabels:
    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_branch_targets_resolve(self, arch):
        fn = _fn([
            N.while_(N.binop(Ops.LT, N.var("v0"), N.num(3)),
                     N.block(N.binop(Ops.ASG_ADD, N.var("v0"), N.num(1)))),
            N.ret(N.num(0)),
        ])
        asm = _compile(fn, arch)
        for instr in asm.instructions:
            for operand in instr.operands:
                if isinstance(operand, Lab):
                    assert operand.name in asm.labels
