"""CLI error handling: one-line messages with distinct exit codes.

Missing model / input / index paths used to surface as raw tracebacks;
they now map onto the `repro.api.errors` hierarchy:

* 3 = model checkpoint missing,
* 4 = input binary/firmware missing,
* 5 = index store missing/corrupt/conflicting,
* 6 = bad request (unknown function, unknown CVE, bad config).
"""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def model_path(tmp_path_factory, trained_model):
    path = tmp_path_factory.mktemp("model") / "asteria.npz"
    trained_model.save(path)
    return str(path)


@pytest.fixture(scope="module")
def binary_path(tmp_path_factory):
    root = tmp_path_factory.mktemp("bins")
    assert main(["compile", "--name", "p", "--seed", "3",
                 "--arch", "x86", "--output", str(root)]) == 0
    return str(root / "p.x86.rbin")


class TestMissingModel:
    def test_compare(self, binary_path, capsys):
        code = main(["compare", "--model", "missing.npz",
                     binary_path, "p_fn0", binary_path, "p_fn0"])
        assert code == 3
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "model checkpoint not found" in err
        assert "Traceback" not in err

    def test_search(self, capsys):
        assert main(["search", "--model", "missing.npz"]) == 3
        assert "missing.npz" in capsys.readouterr().err

    def test_serve_fails_fast(self, capsys):
        # the server must refuse to start, not 503 per request
        assert main(["serve", "--model", "missing.npz",
                     "--port", "0"]) == 3
        assert "model checkpoint not found" in capsys.readouterr().err

    def test_index_build(self, tmp_path, capsys):
        assert main(["index", "build", "--model", "missing.npz",
                     "--output", str(tmp_path / "idx")]) == 3
        assert "missing.npz" in capsys.readouterr().err


class TestMissingInput:
    def test_compare_missing_binary(self, model_path, capsys):
        code = main(["compare", "--model", model_path,
                     "nope.rbin", "f1", "nope2.rbin", "f2"])
        assert code == 4
        err = capsys.readouterr().err
        assert "no such binary: nope.rbin" in err

    def test_disasm_missing_binary(self, capsys):
        assert main(["disasm", "nope.rbin"]) == 4
        assert "no such binary" in capsys.readouterr().err

    def test_decompile_missing_binary(self, capsys):
        assert main(["decompile", "nope.rbin"]) == 4
        assert "no such binary" in capsys.readouterr().err


class TestMissingIndex:
    def test_index_search(self, model_path, tmp_path, capsys):
        assert main(["index", "search", "--model", model_path,
                     "--index", str(tmp_path / "nope")]) == 5
        assert "no manifest" in capsys.readouterr().err

    def test_pipeline_run_existing_output(self, model_path, tmp_path,
                                          capsys):
        root = str(tmp_path / "store")
        assert main(["pipeline", "run", "--model", model_path,
                     "--images", "2", "--output", root]) == 0
        capsys.readouterr()
        assert main(["pipeline", "run", "--model", model_path,
                     "--images", "2", "--output", root]) == 5
        assert "already exists" in capsys.readouterr().err


class TestBadRequest:
    def test_compare_unknown_function(self, model_path, binary_path,
                                      capsys):
        code = main(["compare", "--model", model_path,
                     binary_path, "not_a_fn", binary_path, "p_fn0"])
        assert code == 6
        err = capsys.readouterr().err
        assert "not_a_fn" in err
        assert "Traceback" not in err

    def test_exit_codes_are_distinct(self):
        from repro.api.errors import (
            BadRequestError,
            EngineError,
            IndexStoreError,
            InputNotFoundError,
            ModelNotFoundError,
        )

        codes = [cls.exit_code for cls in (
            EngineError, ModelNotFoundError, InputNotFoundError,
            IndexStoreError, BadRequestError,
        )]
        assert len(set(codes)) == len(codes)
        assert 2 not in codes  # argparse owns exit code 2
        assert all(code != 0 for code in codes)
