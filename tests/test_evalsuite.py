"""Tests for metrics, datasets, vulnerability search, and timing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.evalsuite.metrics import (
    confusion_counts,
    roc_auc,
    roc_curve,
    tpr_at_fpr,
    youden_threshold,
)
from repro.evalsuite.datasets import build_buildroot_dataset
from repro.evalsuite.vulnsearch import (
    CVE_LIBRARY,
    build_firmware_dataset,
    patched_function,
    software_package,
    vulnerable_function,
)


class TestMetrics:
    def test_perfect_classifier(self):
        labels = [0, 0, 1, 1]
        scores = [0.1, 0.2, 0.8, 0.9]
        assert roc_auc(labels, scores) == 1.0

    def test_inverted_classifier(self):
        labels = [0, 0, 1, 1]
        scores = [0.9, 0.8, 0.2, 0.1]
        assert roc_auc(labels, scores) == 0.0

    def test_random_classifier_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert abs(roc_auc(labels, scores) - 0.5) < 0.05

    def test_ties_handled(self):
        labels = [0, 1, 0, 1]
        scores = [0.5, 0.5, 0.5, 0.5]
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_curve_endpoints(self):
        fpr, tpr, thresholds = roc_curve([0, 1], [0.3, 0.7])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            roc_curve([1, 1], [0.5, 0.6])  # no negatives
        with pytest.raises(ValueError):
            roc_curve([0, 2], [0.5, 0.6])  # bad label
        with pytest.raises(ValueError):
            roc_curve([], [])

    def test_youden_on_separable(self):
        labels = [0] * 5 + [1] * 5
        scores = [0.1, 0.2, 0.3, 0.35, 0.4, 0.6, 0.7, 0.8, 0.9, 0.95]
        threshold, j = youden_threshold(labels, scores)
        assert 0.4 < threshold <= 0.6
        assert j == 1.0

    def test_confusion_counts(self):
        labels = [0, 0, 1, 1]
        scores = [0.1, 0.9, 0.2, 0.8]
        confusion = confusion_counts(labels, scores, 0.5)
        assert (confusion.tp, confusion.fp, confusion.tn, confusion.fn) == (1, 1, 1, 1)
        assert confusion.tpr == 0.5
        assert confusion.fpr == 0.5
        assert confusion.accuracy == 0.5

    def test_tpr_at_fpr(self):
        labels = [0, 0, 1, 1]
        scores = [0.1, 0.9, 0.8, 0.95]
        assert tpr_at_fpr(labels, scores, 0.0) == pytest.approx(0.5)
        assert tpr_at_fpr(labels, scores, 1.0) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 1),
                              st.floats(0, 1, allow_nan=False)),
                    min_size=4, max_size=60))
    def test_auc_bounded(self, pairs):
        labels = [l for l, _ in pairs]
        scores = [s for _, s in pairs]
        if len(set(labels)) < 2:
            return
        auc = roc_auc(labels, scores)
        assert 0.0 <= auc <= 1.0


class TestDatasets:
    def test_stats_structure(self, buildroot_small):
        stats = buildroot_small.stats()
        assert {s.arch for s in stats} == {"x86", "x64", "arm", "ppc"}
        for s in stats:
            assert s.n_binaries == 3
            assert s.n_functions > 0

    def test_function_counts_match(self, buildroot_small):
        for arch in ("x86", "arm"):
            n_records = sum(
                len(b.functions) for b in buildroot_small.binaries[arch]
            )
            assert len(buildroot_small.functions[arch]) == n_records

    def test_determinism(self):
        a = build_buildroot_dataset(n_packages=1, seed=3)
        b = build_buildroot_dataset(n_packages=1, seed=3)
        assert a.binaries["x86"][0].to_bytes() == b.binaries["x86"][0].to_bytes()

    def test_acfg_cache(self, buildroot_small):
        fn = buildroot_small.functions["x86"][0]
        first = buildroot_small.acfg_for(fn)
        second = buildroot_small.acfg_for(fn)
        assert first is second

    def test_binary_lookup(self, buildroot_small):
        binary = buildroot_small.binaries["arm"][0]
        assert buildroot_small.binary_for("arm", binary.name) is binary


class TestVulnSearchCorpus:
    def test_library_has_seven_cves(self):
        assert len(CVE_LIBRARY) == 7
        assert len({e.cve_id for e in CVE_LIBRARY}) == 7
        softwares = {e.software for e in CVE_LIBRARY}
        assert softwares == {"openssl", "wget", "libcurl", "vsftpd"}

    def test_vulnerable_function_deterministic(self):
        entry = CVE_LIBRARY[0]
        a, b = vulnerable_function(entry), vulnerable_function(entry)
        assert a.body == b.body
        assert a.name == entry.function_name

    def test_patched_differs_by_guard(self):
        entry = CVE_LIBRARY[0]
        vuln = vulnerable_function(entry)
        patched = patched_function(entry)
        assert patched.body != vuln.body
        assert patched.body.children[0].op == "if"
        # the original body is preserved behind the guard
        assert patched.body.children[1:] == vuln.body.children

    def test_software_package_contains_cve_functions(self):
        package = software_package("openssl", "1.0.1", vulnerable=True)
        names = package.function_names()
        for entry in CVE_LIBRARY:
            if entry.software == "openssl":
                assert entry.function_name in names

    def test_firmware_dataset_ground_truth(self):
        dataset = build_firmware_dataset(n_images=6, seed=1)
        assert len(dataset.images) == 6
        assert dataset.provenance
        for (image_id, binary_name), info in dataset.provenance.items():
            if info.vulnerable:
                assert info.version in binary_name or info.software in binary_name

    def test_unknown_format_fraction(self):
        dataset = build_firmware_dataset(
            n_images=20, seed=2, unknown_format_fraction=1.0
        )
        assert dataset.n_unpackable() == 0

    def test_firmware_binaries_stripped(self):
        dataset = build_firmware_dataset(n_images=4, seed=3)
        for image in dataset.images:
            for binary in image.binaries:
                assert binary.is_stripped


class TestTiming:
    def test_offline_rows(self, buildroot_small):
        from repro.baselines.gemini.model import Gemini, GeminiConfig
        from repro.core.model import Asteria, AsteriaConfig
        from repro.evalsuite.timing import measure_offline

        rows = measure_offline(
            buildroot_small,
            Asteria(AsteriaConfig(hidden_dim=16)),
            Gemini(GeminiConfig(embedding_dim=16)),
            max_functions=8,
        )
        assert rows
        for row in rows:
            assert row.ast_size > 0
            assert row.cfg_size > 0
            for value in (row.decompile_s, row.preprocess_s, row.encode_s,
                          row.diaphora_hash_s, row.gemini_extract_s,
                          row.gemini_encode_s):
                assert value >= 0.0

    def test_online_stats(self, buildroot_small):
        from repro.baselines.gemini.model import Gemini, GeminiConfig
        from repro.core.model import Asteria, AsteriaConfig
        from repro.evalsuite.timing import measure_online

        stats = measure_online(
            buildroot_small,
            Asteria(AsteriaConfig(hidden_dim=16)),
            Gemini(GeminiConfig(embedding_dim=16)),
            n_pairs=20,
        )
        assert stats.asteria_s > 0
        assert stats.gemini_s > 0
        assert stats.diaphora_s > 0
        assert stats.n_pairs == 20

    def test_cdf(self):
        from repro.evalsuite.timing import ast_size_cdf

        sizes, fractions = ast_size_cdf([5, 3, 8, 1])
        assert list(sizes) == [1, 3, 5, 8]
        assert fractions[-1] == 1.0
        assert all(np.diff(fractions) > 0)
