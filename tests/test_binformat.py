"""Tests for the binary container, firmware packing, and binwalk."""

import pytest

from repro.binformat.binary import BinaryFile, LinkError, assemble_binary
from repro.binformat.binwalk import UnpackError, scan_firmware, unpack_firmware
from repro.binformat.callgraph import build_call_graph, callees_with_sizes
from repro.binformat.encoding import (
    EncodingError,
    decode_instructions,
    encode_function,
    register_table,
)
from repro.binformat.firmware import FIRMWARE_MAGIC, pack_firmware
from repro.compiler.codegen import (
    AImm,
    AsmFunction,
    FrameInfo,
    Instruction,
    Lab,
    Mem,
    Reg,
    SRef,
    Sym,
)
from repro.compiler.isa import SUPPORTED_ARCHES, get_isa
from repro.compiler.pipeline import compile_package
from repro.disasm.disassembler import disassemble_function


class TestEncoding:
    def _roundtrip(self, arch, instructions, labels=None):
        isa = get_isa(arch)
        fn = AsmFunction("f", arch, FrameInfo(0, 0), list(instructions),
                         labels or {})
        code = encode_function(fn, isa, lambda s: 7, lambda s: 3)
        decoded, _targets = decode_instructions(
            code, isa, lambda i: "callee", lambda off: "str"
        )
        return decoded

    def test_register_operand_roundtrip(self):
        decoded = self._roundtrip("x86", [Instruction("mov", (Reg("eax"), Reg("ecx")))])
        assert decoded[0].mnemonic == "mov"
        assert decoded[0].operands == (Reg("eax"), Reg("ecx"))

    def test_immediate_roundtrip_signed(self):
        decoded = self._roundtrip("x86", [Instruction("mov", (Reg("eax"), AImm(-12345)))])
        assert decoded[0].operands[1] == AImm(-12345)

    def test_memory_operand_roundtrip(self):
        decoded = self._roundtrip("x86", [Instruction("mov", (Mem("ebp", -8), Reg("eax")))])
        assert decoded[0].operands[0] == Mem("ebp", -8)

    def test_label_becomes_target_index(self):
        instrs = [Instruction("jmp", (Lab("L"),)), Instruction("nop")]
        decoded = self._roundtrip("x86", instrs, labels={"L": 1})
        assert decoded[0].operands[0] == Lab("1")

    def test_symbol_and_string(self):
        decoded = self._roundtrip("x86", [
            Instruction("call", (Sym("g"),)),
            Instruction("push", (SRef("hello"),)),
        ])
        assert decoded[0].operands[0] == Sym("callee")
        assert decoded[1].operands[0] == SRef("str")

    def test_arm_condition_roundtrip(self):
        decoded = self._roundtrip("arm", [
            Instruction("mov", (Reg("r4"), AImm(1)), cond="le"),
        ])
        assert decoded[0].cond == "le"

    def test_unknown_mnemonic_rejected(self):
        isa = get_isa("x86")
        fn = AsmFunction("f", "x86", FrameInfo(0, 0),
                         [Instruction("bl", (Sym("g"),))], {})
        with pytest.raises(EncodingError):
            encode_function(fn, isa, lambda s: 0, lambda s: 0)

    def test_undefined_label_rejected(self):
        isa = get_isa("x86")
        fn = AsmFunction("f", "x86", FrameInfo(0, 0),
                         [Instruction("jmp", (Lab("nowhere"),))], {})
        with pytest.raises(EncodingError):
            encode_function(fn, isa, lambda s: 0, lambda s: 0)

    def test_truncated_bytes_rejected(self):
        isa = get_isa("x86")
        with pytest.raises(EncodingError):
            decode_instructions(b"\x01", isa, lambda i: "", lambda o: "")

    def test_unknown_opcode_rejected(self):
        isa = get_isa("x86")
        with pytest.raises(EncodingError):
            decode_instructions(b"\xff\x00\x00", isa, lambda i: "", lambda o: "")

    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_register_table_covers_isa(self, arch):
        isa = get_isa(arch)
        table = register_table(isa)
        assert len(table) == len(set(table))
        for reg in isa.scratch_registers + isa.var_registers:
            assert reg in table


class TestBinaryFile:
    def test_serialise_roundtrip(self, package):
        binary = compile_package(package, "arm")
        restored = BinaryFile.from_bytes(binary.to_bytes())
        assert restored.name == binary.name
        assert restored.arch == binary.arch
        assert len(restored.functions) == len(binary.functions)
        assert restored.string_section == binary.string_section
        for a, b in zip(restored.functions, binary.functions):
            assert a.name == b.name
            assert a.code == b.code
            assert a.frame.n_params == b.frame.n_params

    def test_bad_magic_rejected(self):
        with pytest.raises(EncodingError):
            BinaryFile.from_bytes(b"ELF!" + b"\x00" * 64)

    def test_strip_removes_names(self, package):
        binary = compile_package(package, "x86")
        stripped = binary.strip()
        assert stripped.is_stripped
        assert all(f.name is None for f in stripped.functions)
        assert all(f.display_name().startswith("sub_")
                   for f in stripped.functions)
        # original untouched
        assert not binary.is_stripped

    def test_stripped_serialise_roundtrip(self, package):
        stripped = compile_package(package, "x86").strip()
        restored = BinaryFile.from_bytes(stripped.to_bytes())
        assert restored.is_stripped

    def test_function_lookup(self, package):
        binary = compile_package(package, "ppc")
        fn_name = package.functions[0].name
        record = binary.function_named(fn_name)
        assert record.name == fn_name
        assert binary.function_at(record.address) is record
        with pytest.raises(KeyError):
            binary.function_named("missing")

    def test_string_section_lookup(self, package):
        binary = compile_package(package, "x64")
        if binary.string_section:
            assert isinstance(binary.string_at(0), str)

    def test_addresses_aligned_and_increasing(self, package):
        binary = compile_package(package, "arm")
        addresses = [f.address for f in binary.functions]
        assert addresses == sorted(addresses)
        assert all(a % 16 == 0 for a in addresses)

    def test_unresolved_call_raises(self):
        from repro.compiler.ir import lower_function
        from repro.compiler.codegen import select_instructions
        from repro.lang import nodes as N
        from repro.lang.nodes import FunctionDef

        fn = FunctionDef("f", ("a0",), ("v0",), N.block(
            N.asg(N.var("v0"), N.call("missing", N.var("a0"))),
            N.ret(N.var("v0")),
        ))
        asm = select_instructions(lower_function(fn), "x86")
        with pytest.raises(LinkError):
            assemble_binary("b", "x86", [asm])


class TestFirmware:
    def test_pack_unpack_roundtrip(self, binaries):
        image = pack_firmware("NetGear", "R7000", "1.0",
                              [binaries["arm"], binaries["ppc"]], seed=3)
        extracted = unpack_firmware(image)
        assert len(extracted) == 2
        assert {b.arch for b in extracted} == {"arm", "ppc"}
        assert extracted[0].name == binaries["arm"].name

    def test_junk_prefix_scanned_past(self, binaries):
        image = pack_firmware("Dlink", "DIR-850", "2.0", [binaries["x86"]],
                              seed=9, junk_prefix_max=64)
        signatures = scan_firmware(image.blob)
        assert len(signatures) >= 1
        assert unpack_firmware(image)[0].arch == "x86"

    def test_unknown_format_rejected(self, binaries):
        image = pack_firmware("Schneider", "BMX", "1.1", [binaries["x64"]],
                              seed=5, unknown_format=True)
        assert not scan_firmware(image.blob)
        with pytest.raises(UnpackError):
            unpack_firmware(image)

    def test_identifier(self, binaries):
        image = pack_firmware("V", "M", "1.2", [binaries["arm"]], seed=1)
        assert image.identifier == "V/M/1.2"

    def test_magic_not_in_junk(self, binaries):
        """Determinism check: packing is reproducible for a given seed."""
        a = pack_firmware("V", "M", "1", [binaries["arm"]], seed=4)
        b = pack_firmware("V", "M", "1", [binaries["arm"]], seed=4)
        assert a.blob == b.blob

    def test_stripped_binaries_survive_packing(self, binaries):
        image = pack_firmware("V", "M", "1", [binaries["arm"].strip()], seed=2)
        extracted = unpack_firmware(image)
        assert extracted[0].is_stripped


class TestCallGraph:
    def test_nodes_and_sizes(self, package, binaries):
        graph = build_call_graph(binaries["x86"])
        for record in binaries["x86"].functions:
            assert record.display_name() in graph.nodes
            assert graph.nodes[record.display_name()]["n_instructions"] == \
                record.n_instructions

    def test_callees_with_multiplicity(self, package, binaries):
        binary = binaries["x86"]
        graph = build_call_graph(binary)
        for fn in package.functions:
            from repro.disasm.disassembler import disassemble_function

            record = binary.function_named(fn.name)
            asm = disassemble_function(binary, record)
            callees = callees_with_sizes(binary, fn.name, graph)
            assert len(callees) == len(asm.callee_names())

    def test_callgraph_on_stripped_binary(self, binaries):
        stripped = binaries["arm"].strip()
        graph = build_call_graph(stripped)
        assert all(name.startswith("sub_") for name in graph.nodes)
