"""Tests for the HTTP/JSON serving layer (`repro.api.server`).

A real `EngineServer` runs on an ephemeral localhost port for the whole
module; requests go through urllib like any external client's would.
"""

import base64
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import (
    AsteriaEngine,
    EngineConfig,
    EngineServer,
    IngestRequest,
)
from repro.compiler.pipeline import compile_package
from repro.lang.generator import ProgramGenerator


@pytest.fixture(scope="module")
def server(trained_model):
    engine = AsteriaEngine(EngineConfig(), model=trained_model)
    engine.ingest(IngestRequest(corpus_images=2, corpus_seed=4))
    server = EngineServer(("127.0.0.1", 0), engine)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def query_binary():
    package = ProgramGenerator(seed=44).generate_package("spkg")
    return compile_package(package, "arm")


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _b64(binary) -> str:
    return base64.b64encode(binary.to_bytes()).decode("ascii")


class TestRoutes:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["model_loaded"] is True
        assert body["index_rows"] > 0
        assert body["index_shards"] >= 1
        assert body["uptime_s"] >= 0
        import repro

        assert body["version"] == repro.__version__
        # the index generation tracks rows once a query built the index;
        # before that it reports -1 (not built) -- either is valid here
        assert body["index_generation"] in (-1, body["index_rows"])

    def test_stats(self, server):
        status, body = _get(server, "/v1/stats")
        assert status == 200
        assert body["model_loaded"] is True
        assert body["index_rows"] > 0
        assert "micro_batch_max" in body
        assert body["config"]["backend"] == "exact"

    def test_unknown_route_is_404(self, server):
        status, body = _post(server, "/v1/nope", {})
        assert status == 404
        assert "no route" in body["error"]

    def test_bad_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/query",
            data=b"not json{",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=30)
            status = 200
        except urllib.error.HTTPError as error:
            status = error.code
            body = json.loads(error.read())
        assert status == 400
        assert "not JSON" in body["error"]


class TestQuery:
    def test_query_by_cve(self, server):
        status, body = _post(server, "/v1/query",
                             {"cve": "CVE-2016-2105", "top_k": 3})
        assert status == 200
        assert body["query"] == "CVE-2016-2105"
        assert 0 < len(body["hits"]) <= 3
        assert body["hits"][0]["rank"] == 1
        scores = [hit["score"] for hit in body["hits"]]
        assert scores == sorted(scores, reverse=True)

    def test_query_by_binary_function(self, server, query_binary):
        status, encode_body = _post(server, "/v1/encode",
                                    {"binary_b64": _b64(query_binary)})
        assert status == 200
        name = encode_body["encodings"][0]["name"]
        status, body = _post(server, "/v1/query", {
            "binary_b64": _b64(query_binary), "function": name, "top_k": 4,
        })
        assert status == 200
        assert body["query"].endswith(f":{name}")
        assert len(body["hits"]) <= 4

    def test_unknown_cve_is_400(self, server):
        status, body = _post(server, "/v1/query", {"cve": "CVE-1999-0000"})
        assert status == 400
        assert "unknown CVE" in body["error"]
        assert body["exit_code"] == 6

    def test_missing_binary_is_400(self, server):
        status, body = _post(server, "/v1/query", {"top_k": 3})
        assert status == 400
        assert "binary_b64" in body["error"]

    def test_bad_numeric_types_are_400(self, server):
        status, body = _post(server, "/v1/query",
                             {"cve": "CVE-2016-2105", "top_k": "five"})
        assert status == 400
        assert "top_k" in body["error"]
        status, body = _post(server, "/v1/query",
                             {"cve": "CVE-2016-2105", "threshold": "high"})
        assert status == 400
        assert "threshold" in body["error"]
        status, body = _post(server, "/v1/ingest",
                             {"corpus": {"images": "four"}})
        assert status == 400
        assert "images" in body["error"]

    def test_negative_top_k_and_threshold_are_400(self, server):
        # -1 must not leak the engine-internal USE_DEFAULT sentinel
        status, body = _post(server, "/v1/query",
                             {"cve": "CVE-2016-2105", "top_k": -1})
        assert status == 400
        assert "top_k" in body["error"]
        status, body = _post(server, "/v1/query",
                             {"cve": "CVE-2016-2105", "threshold": -1})
        assert status == 400
        assert "threshold" in body["error"]


class TestQueryBatch:
    def test_batch_matches_single_queries(self, server):
        cves = ["CVE-2016-2105", "CVE-2014-4877", "CVE-2016-2105"]
        status, batch = _post(server, "/v1/query_batch", {
            "queries": [{"cve": cve, "top_k": 3} for cve in cves],
        })
        assert status == 200
        assert len(batch["results"]) == len(cves)
        for cve, result in zip(cves, batch["results"]):
            status, single = _post(server, "/v1/query",
                                   {"cve": cve, "top_k": 3})
            assert status == 200
            assert result["query"] == cve
            assert [h["row"] for h in result["hits"]] \
                == [h["row"] for h in single["hits"]]
            assert [h["score"] for h in result["hits"]] == pytest.approx(
                [h["score"] for h in single["hits"]], rel=1e-5
            )

    def test_mixed_parameters_split_correctly(self, server):
        status, body = _post(server, "/v1/query_batch", {
            "queries": [
                {"cve": "CVE-2016-2105", "top_k": 1},
                {"cve": "CVE-2016-2105", "top_k": 5},
            ],
        })
        assert status == 200
        assert len(body["results"][0]["hits"]) <= 1
        assert len(body["results"][1]["hits"]) <= 5

    def test_empty_or_malformed_batch_is_400(self, server):
        status, body = _post(server, "/v1/query_batch", {"queries": []})
        assert status == 400
        assert "queries" in body["error"]
        status, body = _post(server, "/v1/query_batch", {})
        assert status == 400
        status, body = _post(server, "/v1/query_batch",
                             {"queries": ["CVE-2016-2105"]})
        assert status == 400
        assert "queries[0]" in body["error"]

    def test_bad_member_fails_whole_batch(self, server):
        status, body = _post(server, "/v1/query_batch", {
            "queries": [
                {"cve": "CVE-2016-2105"},
                {"cve": "CVE-1999-0000"},
            ],
        })
        assert status == 400
        assert "unknown CVE" in body["error"]

    def test_stats_report_batches_and_footprint(self, server):
        status, body = _get(server, "/v1/stats")
        assert status == 200
        assert body["n_query_batches"] >= 1
        assert body["index_dtype"] == "float32"
        assert body["index_vector_bytes"] > 0
        assert body["ann_backend"] == "exact"

    def test_unknown_backend_is_typed_400(self, server):
        # an unknown backend is a client error (HTTP 400 / exit 6), not
        # a silent degradation to the exact sweep
        service = server.engine.service
        saved = service.backend
        service.backend = "bogus"
        service._index = None
        service._index_rows = -1
        try:
            status, body = _post(server, "/v1/query",
                                 {"cve": "CVE-2016-2105", "top_k": 3})
            assert status == 400
            assert "bogus" in body["error"]
            assert "ivf-pq" in body["error"]
            assert body["exit_code"] == 6
        finally:
            service.backend = saved
            service._index = None
            service._index_rows = -1


class TestEncodeIngestCompare:
    def test_encode(self, server, trained_model, query_binary):
        status, body = _post(server, "/v1/encode",
                             {"binary_b64": _b64(query_binary)})
        assert status == 200
        assert body["binary"] == query_binary.name
        assert body["arch"] == "arm"
        dim = trained_model.config.hidden_dim
        for encoding in body["encodings"]:
            assert len(encoding["vector"]) == dim

    def test_encode_bad_base64(self, server):
        status, body = _post(server, "/v1/encode", {"binary_b64": "!!!"})
        assert status == 400
        assert "base64" in body["error"]

    def test_ingest_binary_grows_the_index(self, server, query_binary):
        _status, before = _get(server, "/v1/stats")
        status, body = _post(server, "/v1/ingest", {
            "binary_b64": _b64(query_binary), "image_id": "img-test",
        })
        assert status == 200
        assert body["n_functions"] > 0
        assert body["n_rows_total"] \
            == before["index_rows"] + body["n_functions"]
        # the new rows are immediately queryable
        status, query = _post(server, "/v1/query",
                              {"cve": "CVE-2016-2105", "top_k": 3})
        assert status == 200
        assert query["n_rows"] == body["n_rows_total"]

    def test_ingest_needs_input(self, server):
        status, body = _post(server, "/v1/ingest", {})
        assert status == 400
        assert "ingest needs" in body["error"]

    def test_compare(self, server, query_binary):
        _status, encode_body = _post(server, "/v1/encode",
                                     {"binary_b64": _b64(query_binary)})
        name = encode_body["encodings"][0]["name"]
        status, body = _post(server, "/v1/compare", {
            "binary1_b64": _b64(query_binary), "function1": name,
            "binary2_b64": _b64(query_binary), "function2": name,
        })
        assert status == 200
        assert 0.0 < body["similarity"] <= 1.0
        assert body["ast_similarity"] == pytest.approx(body["similarity"])


class TestObservability:
    def _scrape(self, server):
        """GET /metrics -> {series line -> float value}."""
        with urllib.request.urlopen(
            server.url + "/metrics", timeout=30
        ) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        values = {}
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            series, value = line.rsplit(" ", 1)
            values[series] = float(value)
        return text, values

    def test_metrics_is_valid_prometheus_text(self, server):
        _get(server, "/v1/stats")  # at least one request before the scrape
        text, values = self._scrape(server)
        for line in text.splitlines():
            assert line.startswith("#") or " " in line
        assert values  # something was exported
        # histograms expose cumulative le-buckets ending at +Inf
        inf_buckets = [s for s in values if '_bucket{' in s and '+Inf' in s]
        assert inf_buckets

    def test_encoder_metrics_exported(self, server):
        """The encoder's counters/histograms surface in /metrics + stats."""
        _status, stats = _get(server, "/v1/stats")
        _text, values = self._scrape(server)
        # startup ingest encoded the corpus through the batched path
        assert values.get("repro_encode_trees_total", 0) > 0
        assert values["repro_encode_trees_total"] == stats["n_encoded_trees"]
        assert values.get("repro_encode_block_rows", 0) >= 1
        assert values["repro_encode_block_rows"] == stats["encode_block_rows"]
        fill = [s for s in values
                if s.startswith("repro_encode_batch_fill_bucket")]
        assert fill, "scheduler chunk-fill histogram missing"
        level = [s for s in values
                 if s.startswith("repro_encode_level_seconds_bucket")]
        assert level, "per-level encode-seconds histogram missing"

    def test_metrics_agree_with_stats_after_query_storm(self, server):
        n_threads, per_thread = 8, 3
        barrier = threading.Barrier(n_threads)
        errors = []

        def client():
            barrier.wait()
            try:
                for _ in range(per_thread):
                    status, _body = _post(
                        server, "/v1/query",
                        {"cve": "CVE-2016-2105", "top_k": 2},
                    )
                    assert status == 200
            except Exception as exc:  # noqa: BLE001 - asserted below
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        _status, stats = _get(server, "/v1/stats")
        _text, values = self._scrape(server)
        # the stats view and the exposition read the same registry, so
        # the counters cannot disagree
        assert values["repro_queries_total"] == stats["n_queries"]
        assert values["repro_query_encodes_total"] == stats["n_query_encodes"]
        assert stats["n_queries"] >= n_threads * per_thread
        # per-endpoint request counter and latency histogram moved too
        query_requests = sum(
            v for series, v in values.items()
            if series.startswith("repro_requests_total")
            and 'endpoint="/v1/query"' in series
        )
        assert query_requests >= n_threads * per_thread
        assert values[
            'repro_request_seconds_count{endpoint="/v1/query"}'
        ] >= n_threads * per_thread

    def test_request_id_minted_and_echoed(self, server):
        with urllib.request.urlopen(
            server.url + "/healthz", timeout=30
        ) as response:
            minted = response.headers["X-Request-Id"]
        assert minted and len(minted) == 16

    def test_client_request_id_is_honoured(self, server):
        request = urllib.request.Request(
            server.url + "/healthz", headers={"X-Request-Id": "trace-me-42"}
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["X-Request-Id"] == "trace-me-42"

    def test_404_is_counted_as_error(self, server):
        _post(server, "/v1/nope", {})
        _text, values = self._scrape(server)
        errors_404 = sum(
            v for series, v in values.items()
            if series.startswith("repro_request_errors_total")
            and '_unknown_' in series
        )
        assert errors_404 >= 1


class TestShutdown:
    def test_shutdown_endpoint_stops_the_server(self, trained_model):
        engine = AsteriaEngine(EngineConfig(), model=trained_model)
        server = EngineServer(("127.0.0.1", 0), engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        status, body = _post(server, "/v1/shutdown", {})
        assert (status, body["status"]) == (200, "shutting down")
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()

    def test_shutdown_body_carries_final_metrics_snapshot(
        self, trained_model
    ):
        """Regression: counters accumulated in flight used to die with
        the process before anyone could scrape them -- the shutdown reply
        now carries the flushed registry snapshot."""
        engine = AsteriaEngine(EngineConfig(), model=trained_model)
        server = EngineServer(("127.0.0.1", 0), engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        _get(server, "/healthz")
        _get(server, "/v1/stats")
        status, body = _post(server, "/v1/shutdown", {})
        assert status == 200
        snapshot = body["stats"]
        requests_served = sum(
            series["value"]
            for series in snapshot["repro_requests_total"]["series"]
        )
        # the two GETs above plus the shutdown POST itself may or may not
        # have been recorded yet (its _observe runs after the handler);
        # the pre-shutdown traffic must all be there
        assert requests_served >= 2
        assert snapshot["repro_model_loaded"]["series"][0]["value"] == 1.0
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()
