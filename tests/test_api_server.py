"""Tests for the HTTP/JSON serving layer (`repro.api.server`).

A real `EngineServer` runs on an ephemeral localhost port for the whole
module; requests go through urllib like any external client's would.
"""

import base64
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import (
    AsteriaEngine,
    EngineConfig,
    EngineServer,
    IngestRequest,
)
from repro.compiler.pipeline import compile_package
from repro.lang.generator import ProgramGenerator


@pytest.fixture(scope="module")
def server(trained_model):
    engine = AsteriaEngine(EngineConfig(), model=trained_model)
    engine.ingest(IngestRequest(corpus_images=2, corpus_seed=4))
    server = EngineServer(("127.0.0.1", 0), engine)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def query_binary():
    package = ProgramGenerator(seed=44).generate_package("spkg")
    return compile_package(package, "arm")


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _b64(binary) -> str:
    return base64.b64encode(binary.to_bytes()).decode("ascii")


class TestRoutes:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert (status, body) == (200, {"status": "ok"})

    def test_stats(self, server):
        status, body = _get(server, "/v1/stats")
        assert status == 200
        assert body["model_loaded"] is True
        assert body["index_rows"] > 0
        assert "micro_batch_max" in body
        assert body["config"]["backend"] == "exact"

    def test_unknown_route_is_404(self, server):
        status, body = _post(server, "/v1/nope", {})
        assert status == 404
        assert "no route" in body["error"]

    def test_bad_json_is_400(self, server):
        request = urllib.request.Request(
            server.url + "/v1/query",
            data=b"not json{",
            headers={"Content-Type": "application/json"},
        )
        try:
            urllib.request.urlopen(request, timeout=30)
            status = 200
        except urllib.error.HTTPError as error:
            status = error.code
            body = json.loads(error.read())
        assert status == 400
        assert "not JSON" in body["error"]


class TestQuery:
    def test_query_by_cve(self, server):
        status, body = _post(server, "/v1/query",
                             {"cve": "CVE-2016-2105", "top_k": 3})
        assert status == 200
        assert body["query"] == "CVE-2016-2105"
        assert 0 < len(body["hits"]) <= 3
        assert body["hits"][0]["rank"] == 1
        scores = [hit["score"] for hit in body["hits"]]
        assert scores == sorted(scores, reverse=True)

    def test_query_by_binary_function(self, server, query_binary):
        status, encode_body = _post(server, "/v1/encode",
                                    {"binary_b64": _b64(query_binary)})
        assert status == 200
        name = encode_body["encodings"][0]["name"]
        status, body = _post(server, "/v1/query", {
            "binary_b64": _b64(query_binary), "function": name, "top_k": 4,
        })
        assert status == 200
        assert body["query"].endswith(f":{name}")
        assert len(body["hits"]) <= 4

    def test_unknown_cve_is_400(self, server):
        status, body = _post(server, "/v1/query", {"cve": "CVE-1999-0000"})
        assert status == 400
        assert "unknown CVE" in body["error"]
        assert body["exit_code"] == 6

    def test_missing_binary_is_400(self, server):
        status, body = _post(server, "/v1/query", {"top_k": 3})
        assert status == 400
        assert "binary_b64" in body["error"]

    def test_bad_numeric_types_are_400(self, server):
        status, body = _post(server, "/v1/query",
                             {"cve": "CVE-2016-2105", "top_k": "five"})
        assert status == 400
        assert "top_k" in body["error"]
        status, body = _post(server, "/v1/query",
                             {"cve": "CVE-2016-2105", "threshold": "high"})
        assert status == 400
        assert "threshold" in body["error"]
        status, body = _post(server, "/v1/ingest",
                             {"corpus": {"images": "four"}})
        assert status == 400
        assert "images" in body["error"]

    def test_negative_top_k_and_threshold_are_400(self, server):
        # -1 must not leak the engine-internal USE_DEFAULT sentinel
        status, body = _post(server, "/v1/query",
                             {"cve": "CVE-2016-2105", "top_k": -1})
        assert status == 400
        assert "top_k" in body["error"]
        status, body = _post(server, "/v1/query",
                             {"cve": "CVE-2016-2105", "threshold": -1})
        assert status == 400
        assert "threshold" in body["error"]


class TestQueryBatch:
    def test_batch_matches_single_queries(self, server):
        cves = ["CVE-2016-2105", "CVE-2014-4877", "CVE-2016-2105"]
        status, batch = _post(server, "/v1/query_batch", {
            "queries": [{"cve": cve, "top_k": 3} for cve in cves],
        })
        assert status == 200
        assert len(batch["results"]) == len(cves)
        for cve, result in zip(cves, batch["results"]):
            status, single = _post(server, "/v1/query",
                                   {"cve": cve, "top_k": 3})
            assert status == 200
            assert result["query"] == cve
            assert [h["row"] for h in result["hits"]] \
                == [h["row"] for h in single["hits"]]
            assert [h["score"] for h in result["hits"]] == pytest.approx(
                [h["score"] for h in single["hits"]], rel=1e-5
            )

    def test_mixed_parameters_split_correctly(self, server):
        status, body = _post(server, "/v1/query_batch", {
            "queries": [
                {"cve": "CVE-2016-2105", "top_k": 1},
                {"cve": "CVE-2016-2105", "top_k": 5},
            ],
        })
        assert status == 200
        assert len(body["results"][0]["hits"]) <= 1
        assert len(body["results"][1]["hits"]) <= 5

    def test_empty_or_malformed_batch_is_400(self, server):
        status, body = _post(server, "/v1/query_batch", {"queries": []})
        assert status == 400
        assert "queries" in body["error"]
        status, body = _post(server, "/v1/query_batch", {})
        assert status == 400
        status, body = _post(server, "/v1/query_batch",
                             {"queries": ["CVE-2016-2105"]})
        assert status == 400
        assert "queries[0]" in body["error"]

    def test_bad_member_fails_whole_batch(self, server):
        status, body = _post(server, "/v1/query_batch", {
            "queries": [
                {"cve": "CVE-2016-2105"},
                {"cve": "CVE-1999-0000"},
            ],
        })
        assert status == 400
        assert "unknown CVE" in body["error"]

    def test_stats_report_batches_and_footprint(self, server):
        status, body = _get(server, "/v1/stats")
        assert status == 200
        assert body["n_query_batches"] >= 1
        assert body["index_dtype"] == "float32"
        assert body["index_vector_bytes"] > 0
        assert body["ann_backend"] == "exact"


class TestEncodeIngestCompare:
    def test_encode(self, server, trained_model, query_binary):
        status, body = _post(server, "/v1/encode",
                             {"binary_b64": _b64(query_binary)})
        assert status == 200
        assert body["binary"] == query_binary.name
        assert body["arch"] == "arm"
        dim = trained_model.config.hidden_dim
        for encoding in body["encodings"]:
            assert len(encoding["vector"]) == dim

    def test_encode_bad_base64(self, server):
        status, body = _post(server, "/v1/encode", {"binary_b64": "!!!"})
        assert status == 400
        assert "base64" in body["error"]

    def test_ingest_binary_grows_the_index(self, server, query_binary):
        _status, before = _get(server, "/v1/stats")
        status, body = _post(server, "/v1/ingest", {
            "binary_b64": _b64(query_binary), "image_id": "img-test",
        })
        assert status == 200
        assert body["n_functions"] > 0
        assert body["n_rows_total"] \
            == before["index_rows"] + body["n_functions"]
        # the new rows are immediately queryable
        status, query = _post(server, "/v1/query",
                              {"cve": "CVE-2016-2105", "top_k": 3})
        assert status == 200
        assert query["n_rows"] == body["n_rows_total"]

    def test_ingest_needs_input(self, server):
        status, body = _post(server, "/v1/ingest", {})
        assert status == 400
        assert "ingest needs" in body["error"]

    def test_compare(self, server, query_binary):
        _status, encode_body = _post(server, "/v1/encode",
                                     {"binary_b64": _b64(query_binary)})
        name = encode_body["encodings"][0]["name"]
        status, body = _post(server, "/v1/compare", {
            "binary1_b64": _b64(query_binary), "function1": name,
            "binary2_b64": _b64(query_binary), "function2": name,
        })
        assert status == 200
        assert 0.0 < body["similarity"] <= 1.0
        assert body["ast_similarity"] == pytest.approx(body["similarity"])


class TestShutdown:
    def test_shutdown_endpoint_stops_the_server(self, trained_model):
        engine = AsteriaEngine(EngineConfig(), model=trained_model)
        server = EngineServer(("127.0.0.1", 0), engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        status, body = _post(server, "/v1/shutdown", {})
        assert (status, body["status"]) == (200, "shutting down")
        thread.join(timeout=10)
        assert not thread.is_alive()
        server.server_close()
