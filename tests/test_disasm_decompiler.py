"""Tests for disassembly and decompilation, including the semantic
round-trip property (source behaviour == decompiled behaviour on every
architecture) and the paper's cross-architecture AST artefacts."""

import pytest

from repro.binformat.encoding import EncodingError
from repro.compiler.isa import SUPPORTED_ARCHES
from repro.compiler.pipeline import (
    CompilationOptions,
    compile_function,
    compile_package,
    cross_compile,
    library_function_defs,
)
from repro.decompiler import (
    DecompilationError,
    decompile_binary,
    decompile_function,
)
from repro.disasm import disassemble_binary, disassemble_function, DisassemblyError
from repro.lang import nodes as N
from repro.lang.interp import Interpreter, run_decompiled
from repro.lang.nodes import FunctionDef, Node, Ops
from repro.utils.rng import RNG

DIAMOND = FunctionDef("histsizesetfn", ("a0",), ("v0",), N.block(
    N.if_(N.binop(Ops.LT, N.var("a0"), N.num(1)),
          N.block(N.asg(N.var("v0"), N.num(1))),
          N.block(N.asg(N.var("v0"), N.var("a0")))),
    N.ret(N.var("v0")),
))

LOOP = FunctionDef("looper", ("a0",), ("v0",), N.block(
    N.asg(N.var("v0"), N.num(0)),
    N.for_(N.asg(N.var("t0"), N.num(0)),
           N.binop(Ops.LT, N.var("t0"), N.var("a0")),
           N.asg(N.var("t0"), N.binop(Ops.ADD, N.var("t0"), N.num(1))),
           N.block(N.binop(Ops.ASG_ADD, N.var("v0"), N.num(2)))),
    N.ret(N.var("v0")),
))
LOOP = FunctionDef("looper", ("a0",), ("v0", "t0"), LOOP.body)


def _decompiled(fn, arch):
    binary = compile_function(fn, arch)
    record = binary.function_named(fn.name)
    return decompile_function(binary, record)


def _ops_in(ast):
    return {n.op for n in ast.walk()}


class TestDisassembler:
    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_roundtrip_instructions(self, package, binaries, arch):
        """Disassembly reproduces the instruction stream exactly."""
        from repro.compiler.ir import Lowerer
        from repro.compiler.codegen import select_instructions
        from repro.compiler.optimizer import fold_constants, inline_small_functions
        from repro.compiler.optimizer import DEFAULT_INLINE_THRESHOLDS
        from repro.lang.nodes import Package

        binary = binaries[arch]
        augmented = Package(
            name=package.name,
            functions=list(package.functions) + library_function_defs(),
        )
        inlined = inline_small_functions(
            augmented, DEFAULT_INLINE_THRESHOLDS[arch]
        )
        for fn in inlined.functions:
            asm = select_instructions(fold_constants(Lowerer().lower(fn)), arch)
            record = binary.function_named(fn.name)
            decoded = disassemble_function(binary, record)
            assert [i.mnemonic for i in decoded.instructions] == [
                i.mnemonic for i in asm.instructions
            ]
            # Every label actually referenced by a branch is reconstructed
            # (labels only reached by fallthrough carry no information).
            from repro.compiler.codegen import Lab

            referenced = {
                asm.labels[op.name]
                for instr in asm.instructions
                for op in instr.operands
                if isinstance(op, Lab)
            }
            assert set(decoded.labels.values()) == referenced

    def test_stripped_names(self, binaries):
        stripped = binaries["arm"].strip()
        fns = disassemble_binary(stripped)
        assert all(f.name.startswith("sub_") for f in fns)

    def test_corrupt_code_raises(self, binaries):
        import dataclasses

        binary = binaries["x86"]
        bad = dataclasses.replace(binary.functions[0], code=b"\xff\x01\x02")
        with pytest.raises(DisassemblyError):
            disassemble_function(binary, bad)


class TestSemanticRoundTrip:
    """The central property: decompiled(compile(f)) behaves exactly like f."""

    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_known_functions(self, arch):
        interp = Interpreter(library_function_defs() + [DIAMOND, LOOP])
        for fn in (DIAMOND, LOOP):
            decompiled = _decompiled(fn, arch)
            for args in ([0], [1], [5], [-3], [17]):
                expected = interp.run(fn, args)
                actual = run_decompiled(interp, decompiled.ast,
                                        len(fn.params), args)
                assert actual == expected, (arch, fn.name, args)

    @pytest.mark.parametrize("seed", [21, 77])
    def test_generated_corpus(self, seed):
        from repro.lang.generator import generate_corpus

        rng = RNG(seed)
        for pkg in generate_corpus(seed=seed, n_packages=1):
            interp = Interpreter(list(pkg.functions) + library_function_defs())
            for arch, binary in cross_compile(pkg).items():
                decompiled = {f.name: f for f in decompile_binary(binary)}
                for fn in pkg.functions:
                    args = [rng.randint(0, 60) for _ in fn.params]
                    assert run_decompiled(
                        interp, decompiled[fn.name].ast, len(fn.params), args
                    ) == interp.run(fn, args), (arch, fn.name, args)


class TestArchitectureArtefacts:
    """The systematic per-architecture AST differences (paper Figs. 1-2)."""

    def test_arm_predication_flips_comparison(self):
        x86 = _decompiled(DIAMOND, "x86")
        arm = _decompiled(DIAMOND, "arm")
        x86_if = next(n for n in x86.ast.walk() if n.op == Ops.IF)
        arm_if = next(n for n in arm.ast.walk() if n.op == Ops.IF)
        # x86 sees le (strict-immediate normalisation); ARM sees the
        # inverted comparison with swapped arms.
        assert x86_if.children[0].op == Ops.LE
        assert arm_if.children[0].op == Ops.GE

    def test_for_loop_only_on_x86_family(self):
        for arch, expected in (("x86", Ops.FOR), ("x64", Ops.FOR),
                               ("arm", Ops.WHILE), ("ppc", Ops.WHILE)):
            ops = _ops_in(_decompiled(LOOP, arch).ast)
            assert expected in ops, arch

    def test_compound_assignment_only_on_x86_family(self):
        x86_ops = _ops_in(_decompiled(LOOP, "x86").ast)
        ppc_ops = _ops_in(_decompiled(LOOP, "ppc").ast)
        assert Ops.ASG_ADD in x86_ops
        assert Ops.ASG_ADD not in ppc_ops

    def test_arm_diamond_single_block(self):
        assert _decompiled(DIAMOND, "arm").n_blocks == 1
        assert _decompiled(DIAMOND, "x86").n_blocks == 4


class TestDecompiledMetadata:
    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_callees_with_sizes(self, package, binaries, arch):
        binary = binaries[arch]
        fns = decompile_binary(binary)
        by_name = {f.name: f for f in fns}
        for fn in fns:
            for callee_name, size in fn.callees:
                assert size == binary.function_named(callee_name).n_instructions

    def test_callee_count_filter(self, binaries):
        fns = decompile_binary(binaries["x86"])
        for fn in fns:
            assert fn.callee_count(0) == len(fn.callees)
            assert fn.callee_count(10 ** 9) == 0

    def test_ast_size_positive(self, binaries):
        for fn in decompile_binary(binaries["arm"]):
            assert fn.ast_size() >= 1

    def test_decompile_stripped_binary(self, binaries):
        fns = decompile_binary(binaries["ppc"].strip())
        assert all(f.name.startswith("sub_") for f in fns)
        # callee references also use stripped names
        for fn in fns:
            for callee_name, _size in fn.callees:
                assert callee_name.startswith("sub_")

    def test_skip_errors(self, binaries):
        import dataclasses

        binary = binaries["x86"]
        broken = dataclasses.replace(
            binary,
            functions=[
                dataclasses.replace(binary.functions[0], code=b"\xff\x00\x00")
            ] + binary.functions[1:],
        )
        fns = decompile_binary(broken, skip_errors=True)
        assert len(fns) == len(binary.functions) - 1
        with pytest.raises(DecompilationError):
            decompile_binary(broken, skip_errors=False)

    def test_table_one_vocabulary_only(self, binaries):
        """Decompiled ASTs stay within the digitisable Table-I vocabulary."""
        from repro.core.labels import NODE_LABELS

        for arch in SUPPORTED_ARCHES:
            for fn in decompile_binary(binaries[arch]):
                for node in fn.ast.walk():
                    assert node.op in NODE_LABELS
