"""Tests for the observability layer (`repro.obs`) and logging helpers.

Covers the metrics registry under thread contention, the fixed-bucket
histogram math, Prometheus text exposition, span nesting/request-id
inheritance, and the JSON/text log formats with request-id stamping.
"""

import json
import logging
import math
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    current_request_id,
    current_span,
    new_request_id,
    trace,
)
from repro.utils.logging import (
    JsonFormatter,
    _level_from_env,
    _RequestIdFilter,
    _TextFormatter,
)


class TestCounterAndGauge:
    def test_counter_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert registry.value("c_total") == 3.5

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_goes_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert registry.value("g") == 7.0

    def test_sixteen_thread_increment_storm_loses_nothing(self):
        registry = MetricsRegistry()
        n_threads, per_thread = 16, 1000
        barrier = threading.Barrier(n_threads)

        def worker(i):
            counter = registry.counter("storm_total", worker=str(i % 4))
            histogram = registry.histogram("storm_seconds")
            barrier.wait()
            for j in range(per_thread):
                counter.inc()
                histogram.observe(j / per_thread)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.value("storm_total") == n_threads * per_thread
        assert registry.value("storm_seconds") == n_threads * per_thread


class TestHistogram:
    def test_bucket_math_is_cumulative(self):
        histogram = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.7, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.cumulative() == [
            (1.0, 1), (2.0, 3), (4.0, 4), (math.inf, 5),
        ]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.7)

    def test_percentiles_interpolate_and_clamp(self):
        histogram = Histogram(buckets=(10.0, 20.0))
        for value in (5.0, 15.0, 15.0, 15.0):
            histogram.observe(value)
        # p0/p100 clamp to the observed extremes
        assert histogram.percentile(0.0) == 5.0
        assert histogram.percentile(1.0) == 15.0
        # the median lands inside the (10, 20] bucket
        assert 10.0 <= histogram.percentile(0.5) <= 15.0

    def test_inf_bucket_ends_at_observed_max(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(50.0)
        assert histogram.percentile(0.99) == 50.0

    def test_empty_histogram_reads_zero(self):
        histogram = Histogram()
        assert histogram.percentile(0.5) == 0.0
        assert histogram.summary()["count"] == 0

    def test_bad_buckets_raise(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_summary_fields(self):
        histogram = Histogram(buckets=DEFAULT_LATENCY_BUCKETS)
        for value in (0.001, 0.002, 0.004):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.007)
        assert summary["mean"] == pytest.approx(0.007 / 3)
        assert summary["p50"] <= summary["p95"] <= summary["p99"]


class TestRegistry:
    def test_get_or_create_returns_same_child(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total", kind="x") \
            is registry.counter("a_total", kind="x")
        assert registry.counter("a_total", kind="y") \
            is not registry.counter("a_total", kind="x")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_value_sums_over_labels_and_missing_reads_zero(self):
        registry = MetricsRegistry()
        registry.counter("r_total", endpoint="/a").inc(2)
        registry.counter("r_total", endpoint="/b").inc(3)
        assert registry.value("r_total") == 5.0
        assert registry.value("r_total", endpoint="/a") == 2.0
        assert registry.value("r_total", endpoint="/nope") == 0.0
        assert registry.value("never_registered") == 0.0

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", help_text="a counter").inc()
        registry.histogram("h_seconds").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["c_total"]["kind"] == "counter"
        assert snapshot["c_total"]["series"][0]["value"] == 1.0
        assert snapshot["h_seconds"]["series"][0]["count"] == 1
        json.dumps(snapshot)  # JSON-shaped by construction


class TestPrometheusExposition:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("q_total", help_text="queries").inc(3)
        registry.gauge("rows", endpoint="/v1/query").set(12)
        text = registry.to_prometheus()
        assert "# HELP q_total queries\n" in text
        assert "# TYPE q_total counter\n" in text
        assert "q_total 3\n" in text
        assert 'rows{endpoint="/v1/query"} 12\n' in text

    def test_histogram_exposition_is_cumulative_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 2.0):
            histogram.observe(value)
        text = registry.to_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1\n' in text
        assert 'lat_seconds_bucket{le="1"} 2\n' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3\n' in text
        assert "lat_seconds_sum 2.55\n" in text
        assert "lat_seconds_count 3\n" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("e_total", path='a"b\\c\nd').inc()
        text = registry.to_prometheus()
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestTrace:
    def test_no_open_span_reads_none(self):
        assert current_span() is None
        assert current_request_id() is None

    def test_nesting_builds_a_tree_with_one_request_id(self):
        with trace("root", n=1) as root:
            with trace("child") as child:
                with trace("grandchild") as grandchild:
                    assert current_span() is grandchild
                assert current_span() is child
        assert current_span() is None
        assert root.children == [child]
        assert child.children == [grandchild]
        assert root.request_id == child.request_id == grandchild.request_id
        assert len(root.request_id) == 16

    def test_explicit_request_id_wins(self):
        with trace("root", request_id="abc123") as root:
            assert current_request_id() == "abc123"
        assert root.request_id == "abc123"

    def test_to_dict_carries_times_attrs_children(self):
        with trace("root", query="q") as root:
            with trace("child"):
                pass
            root.set(n_hits=3)
        tree = root.to_dict()
        assert tree["name"] == "root"
        assert tree["attrs"] == {"query": "q", "n_hits": 3}
        assert tree["wall_ms"] >= 0.0 and tree["cpu_ms"] >= 0.0
        assert [c["name"] for c in tree["children"]] == ["child"]
        json.dumps(tree)

    def test_stack_pops_on_error(self):
        with pytest.raises(RuntimeError):
            with trace("boom"):
                raise RuntimeError("x")
        assert current_span() is None

    def test_threads_have_isolated_stacks(self):
        seen = {}

        def worker(name):
            with trace(name):
                seen[name] = (current_span().name, current_request_id())

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        with trace("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert current_span().name == "main"
        names = {name for name, (span_name, _rid) in seen.items()}
        assert names == {"t0", "t1", "t2", "t3"}
        request_ids = {rid for _name, (_s, rid) in seen.items()}
        assert len(request_ids) == 4  # no cross-thread inheritance

    def test_new_request_ids_are_distinct(self):
        assert new_request_id() != new_request_id()


def _record(message="hello", level=logging.INFO):
    return logging.LogRecord(
        "repro.test", level, __file__, 1, message, (), None
    )


class TestLogging:
    def test_text_format_appends_rid_inside_a_span(self):
        formatter = _TextFormatter("%(message)s")
        record = _record()
        with trace("req", request_id="rid42"):
            assert _RequestIdFilter().filter(record)
        assert formatter.format(record) == "hello rid=rid42"

    def test_text_format_plain_outside_spans(self):
        formatter = _TextFormatter("%(message)s")
        record = _record()
        _RequestIdFilter().filter(record)
        assert formatter.format(record) == "hello"

    def test_json_format_is_one_object_per_line(self):
        record = _record()
        with trace("req", request_id="ridjson"):
            _RequestIdFilter().filter(record)
        entry = json.loads(JsonFormatter().format(record))
        assert entry["message"] == "hello"
        assert entry["level"] == "INFO"
        assert entry["logger"] == "repro.test"
        assert entry["request_id"] == "ridjson"

    def test_level_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        assert _level_from_env() == logging.INFO
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        assert _level_from_env() == logging.DEBUG
        monkeypatch.setenv("REPRO_LOG_LEVEL", "35")
        assert _level_from_env() == 35
        monkeypatch.setenv("REPRO_LOG_LEVEL", "NOPE")
        assert _level_from_env() == logging.INFO

    def test_configure_rejects_bad_fmt(self):
        from repro.utils.logging import configure

        with pytest.raises(ValueError):
            configure(fmt="xml", force=True)
