"""Tests for the Asteria core: labels, preprocessing, siamese heads,
calibration, the model facade, pairs and training."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.calibration import (
    DEFAULT_BETA,
    calibrated_similarity,
    callee_similarity,
    filtered_callee_count,
)
from repro.core.labels import NODE_LABELS, NUM_LABELS, label_of
from repro.core.model import Asteria, AsteriaConfig
from repro.core.pairs import (
    ARCH_COMBINATIONS,
    build_cross_arch_pairs,
    split_pairs,
    to_tree_pairs,
)
from repro.core.preprocess import (
    PreprocessError,
    digitize,
    preprocess_ast,
    try_preprocess_ast,
)
from repro.core.siamese import SiameseClassifier, SiameseRegression
from repro.core.training import TrainConfig, Trainer
from repro.lang import nodes as N
from repro.lang.nodes import ALL_OPS, Node, Ops
from repro.nn.treelstm import BinaryTreeLSTM


class TestLabels:
    def test_every_op_labelled(self):
        for op in ALL_OPS:
            assert op in NODE_LABELS

    def test_table_one_ranges(self):
        assert NODE_LABELS[Ops.IF] == 1
        assert NODE_LABELS[Ops.BREAK] == 9
        assert 10 <= NODE_LABELS[Ops.ASG] <= 17
        assert 18 <= NODE_LABELS[Ops.EQ] <= 23
        assert 24 <= NODE_LABELS[Ops.ADD] <= 34
        assert NODE_LABELS[Ops.VAR] >= 35

    def test_labels_unique(self):
        assert len(set(NODE_LABELS.values())) == len(NODE_LABELS)

    def test_num_labels_covers(self):
        assert NUM_LABELS == max(NODE_LABELS.values()) + 1

    def test_label_of_unknown(self):
        with pytest.raises(KeyError):
            label_of("banana")


@st.composite
def asts(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        kind = draw(st.sampled_from([Ops.VAR, Ops.NUM, Ops.STR]))
        value = {"var": "x", "num": 1, "str": "s"}[kind]
        return Node(kind, value=value)
    kind = draw(st.sampled_from([Ops.BLOCK, Ops.ADD, Ops.ASG, Ops.IF]))
    n_children = draw(st.integers(min_value=1, max_value=3))
    children = tuple(draw(asts(depth=depth - 1)) for _ in range(n_children))
    return Node(kind, children)


class TestPreprocess:
    def test_lcrs_known_tree(self):
        """block(a, b, c): a becomes left child, b the right of a, etc."""
        tree = N.block(N.num(1), N.num(2), N.num(3))
        binary = digitize(tree)
        assert binary.label == label_of(Ops.BLOCK)
        assert binary.left.label == label_of(Ops.NUM)
        assert binary.right is None
        assert binary.left.right.label == label_of(Ops.NUM)
        assert binary.left.right.right.label == label_of(Ops.NUM)

    def test_values_dropped(self):
        a = digitize(N.num(42))
        b = digitize(N.num(7))
        assert a.label == b.label

    @settings(max_examples=50, deadline=None)
    @given(asts())
    def test_lcrs_preserves_node_count(self, ast):
        assert digitize(ast).size() == ast.size()

    @settings(max_examples=50, deadline=None)
    @given(asts())
    def test_lcrs_preserves_label_multiset(self, ast):
        from collections import Counter

        original = Counter(label_of(n.op) for n in ast.walk())
        binarised = Counter(n.label for n in digitize(ast).postorder())
        assert original == binarised

    def test_min_size_enforced(self):
        tiny = N.block(N.ret(N.num(0)))
        with pytest.raises(PreprocessError):
            preprocess_ast(tiny, min_size=5)
        assert try_preprocess_ast(tiny, min_size=5) is None
        assert try_preprocess_ast(tiny, min_size=3) is not None

    def test_wide_deep_tree_no_recursion_error(self):
        wide = N.block(*[N.num(i) for i in range(5000)])
        assert digitize(wide).size() == 5001


class TestSiamese:
    def _trees(self):
        t1 = digitize(N.block(N.asg(N.var("x"), N.num(1)), N.ret(N.var("x"))))
        t2 = digitize(N.block(N.asg(N.var("y"), N.num(2)),
                              N.asg(N.var("z"), N.var("y")),
                              N.ret(N.var("z"))))
        return t1, t2

    def test_classifier_output_is_distribution(self):
        encoder = BinaryTreeLSTM(NUM_LABELS, 8, 16, seed=0)
        siamese = SiameseClassifier(encoder, seed=0)
        t1, t2 = self._trees()
        out = siamese(t1, t2)
        assert out.shape == (2,)
        assert float(out.data.sum()) == pytest.approx(1.0)
        assert np.all(out.data >= 0)

    def test_classifier_symmetric_in_arguments(self):
        encoder = BinaryTreeLSTM(NUM_LABELS, 8, 16, seed=0)
        siamese = SiameseClassifier(encoder, seed=0)
        t1, t2 = self._trees()
        assert siamese.similarity(t1, t2) == pytest.approx(
            siamese.similarity(t2, t1)
        )

    def test_fast_path_matches_forward(self):
        encoder = BinaryTreeLSTM(NUM_LABELS, 8, 16, seed=0)
        siamese = SiameseClassifier(encoder, seed=0)
        t1, t2 = self._trees()
        from repro.nn.tensor import no_grad

        with no_grad():
            v1 = encoder(t1).data
            v2 = encoder(t2).data
        assert siamese.similarity_from_vectors(v1, v2) == pytest.approx(
            siamese.similarity(t1, t2)
        )

    def test_identical_trees_same_encoding(self):
        encoder = BinaryTreeLSTM(NUM_LABELS, 8, 16, seed=0)
        t1, _ = self._trees()
        np.testing.assert_array_equal(encoder(t1).data, encoder(t1).data)

    def test_regression_head_in_unit_interval(self):
        encoder = BinaryTreeLSTM(NUM_LABELS, 8, 16, seed=0)
        siamese = SiameseRegression(encoder)
        t1, t2 = self._trees()
        assert 0.0 <= siamese.similarity(t1, t2) <= 1.0
        assert siamese.similarity(t1, t1) == pytest.approx(1.0)


class TestCalibration:
    def test_equation_nine(self):
        assert callee_similarity(3, 3) == 1.0
        assert callee_similarity(3, 5) == pytest.approx(np.exp(-2))
        assert callee_similarity(5, 3) == callee_similarity(3, 5)

    def test_equation_ten(self):
        assert calibrated_similarity(0.9, 2, 2) == pytest.approx(0.9)
        assert calibrated_similarity(0.9, 2, 4) == pytest.approx(0.9 * np.exp(-2))

    def test_inline_filter(self):
        callees = [("a", 5), ("b", 50), ("b", 50), ("c", DEFAULT_BETA)]
        assert filtered_callee_count(callees, DEFAULT_BETA) == 3
        assert filtered_callee_count(callees, 1000) == 0
        assert filtered_callee_count([], DEFAULT_BETA) == 0


class TestAsteriaModel:
    def test_config_defaults_match_paper(self):
        config = AsteriaConfig()
        assert config.embedding_dim == 16  # Figure 8's chosen size
        assert config.leaf_init == "zero"  # Figure 9
        assert config.head == "classification"  # Figure 9
        assert config.min_ast_size == 5

    def test_bad_head_rejected(self):
        with pytest.raises(ValueError):
            Asteria(AsteriaConfig(head="mlp"))

    def test_save_load_roundtrip(self, tmp_path, buildroot_small):
        model = Asteria(AsteriaConfig(hidden_dim=16))
        fn = buildroot_small.functions["x86"][0]
        encoding = model.encode_function(fn)
        path = tmp_path / "asteria.npz"
        model.save(path)
        restored = Asteria.load(path)
        assert restored.config == model.config
        np.testing.assert_allclose(
            restored.encode_function(fn).vector, encoding.vector
        )

    def test_encode_function_metadata(self, buildroot_small):
        model = Asteria(AsteriaConfig(hidden_dim=16))
        fn = buildroot_small.functions["arm"][0]
        encoding = model.encode_function(fn)
        assert encoding.arch == "arm"
        assert encoding.vector.shape == (16,)
        assert encoding.callee_count >= 0
        assert encoding.ast_size == fn.ast_size()

    def test_similarity_woc_vs_calibrated(self, buildroot_small):
        model = Asteria(AsteriaConfig(hidden_dim=16))
        fns = buildroot_small.functions["x86"]
        e1, e2 = model.encode_function(fns[0]), model.encode_function(fns[1])
        woc = model.similarity(e1, e2, calibrate=False)
        cal = model.similarity(e1, e2, calibrate=True)
        assert cal <= woc  # calibration only multiplies by a factor <= 1

    def test_tiny_ast_rejected(self):
        model = Asteria()
        with pytest.raises(PreprocessError):
            model.encode(N.ret(N.num(0)))


class TestPairs:
    def test_labels_and_archs(self, buildroot_small):
        pairs = build_cross_arch_pairs(buildroot_small.functions, 5, seed=0)
        assert pairs
        for pair in pairs:
            assert pair.label in (-1, +1)
            assert pair.first.arch != pair.second.arch
            if pair.label == +1:
                assert pair.first.name == pair.second.name
                assert pair.first.binary_name == pair.second.binary_name
            else:
                assert (pair.first.binary_name, pair.first.name) != (
                    pair.second.binary_name, pair.second.name
                )

    def test_library_functions_excluded(self, buildroot_small):
        pairs = build_cross_arch_pairs(buildroot_small.functions, 20, seed=0)
        for pair in pairs:
            assert not pair.first.name.startswith("lib_")
            assert not pair.second.name.startswith("lib_")

    def test_combo_restriction(self, buildroot_small):
        pairs = build_cross_arch_pairs(
            buildroot_small.functions, 5, combos=(("x86", "arm"),), seed=0
        )
        assert all({p.first.arch, p.second.arch} == {"x86", "arm"} for p in pairs)

    def test_six_combinations(self):
        assert len(ARCH_COMBINATIONS) == 6

    def test_negative_ratio(self, buildroot_small):
        pairs = build_cross_arch_pairs(
            buildroot_small.functions, 8, combos=(("x86", "arm"),),
            negative_ratio=2.0, seed=0,
        )
        n_pos = sum(1 for p in pairs if p.label > 0)
        n_neg = sum(1 for p in pairs if p.label < 0)
        assert n_neg == pytest.approx(2 * n_pos, abs=2)

    def test_deterministic(self, buildroot_small):
        a = build_cross_arch_pairs(buildroot_small.functions, 5, seed=3)
        b = build_cross_arch_pairs(buildroot_small.functions, 5, seed=3)
        assert [(p.first.name, p.second.name, p.label) for p in a] == [
            (p.first.name, p.second.name, p.label) for p in b
        ]

    def test_to_tree_pairs_filters_small(self, buildroot_small):
        pairs = build_cross_arch_pairs(buildroot_small.functions, 5, seed=0)
        tree_pairs = to_tree_pairs(pairs, min_ast_size=5)
        assert len(tree_pairs) <= len(pairs)
        huge = to_tree_pairs(pairs, min_ast_size=10 ** 6)
        assert not huge

    def test_split_pairs(self):
        train, test = split_pairs(list(range(100)), 0.8, seed=1)
        assert len(train) == 80 and len(test) == 20
        assert sorted(train + test) == list(range(100))
        with pytest.raises(ValueError):
            split_pairs([1], 1.5)


class TestTraining:
    def test_loss_decreases(self, buildroot_small):
        pairs = to_tree_pairs(
            build_cross_arch_pairs(buildroot_small.functions, 6, seed=5)
        )[:30]
        model = Asteria(AsteriaConfig(hidden_dim=16))
        trainer = Trainer(model.siamese, TrainConfig(epochs=2, lr=0.05))
        history = trainer.train(pairs)
        assert history.epochs[-1].mean_loss < history.epochs[0].mean_loss

    def test_best_weights_kept(self, buildroot_small):
        pairs = to_tree_pairs(
            build_cross_arch_pairs(buildroot_small.functions, 6, seed=6)
        )
        train, dev = pairs[:24], pairs[24:36]
        model = Asteria(AsteriaConfig(hidden_dim=16))
        trainer = Trainer(model.siamese, TrainConfig(epochs=2))
        history = trainer.train(train, dev)
        assert 0.0 <= history.best_auc <= 1.0
        assert history.best_epoch >= 0

    def test_scores_are_probabilities(self, buildroot_small, trained_model):
        pairs = to_tree_pairs(
            build_cross_arch_pairs(buildroot_small.functions, 4, seed=7)
        )
        trainer = Trainer(trained_model.siamese, TrainConfig(epochs=1))
        for pair in pairs[:10]:
            assert 0.0 <= trainer.score(pair) <= 1.0

    def test_trained_model_separates(self, buildroot_small, trained_model):
        """After brief training, homologous pairs outscore non-homologous."""
        pairs = to_tree_pairs(
            build_cross_arch_pairs(buildroot_small.functions, 10, seed=8)
        )
        trainer = Trainer(trained_model.siamese, TrainConfig(epochs=1))
        pos = [trainer.score(p) for p in pairs if p.label > 0]
        neg = [trainer.score(p) for p in pairs if p.label < 0]
        assert np.mean(pos) > np.mean(neg)

    def test_unknown_optimizer_rejected(self):
        model = Asteria(AsteriaConfig(hidden_dim=16))
        with pytest.raises(ValueError):
            Trainer(model.siamese, TrainConfig(optimizer="rmsprop"))

    def test_invalid_batch_size_rejected(self):
        model = Asteria(AsteriaConfig(hidden_dim=16))
        trainer = Trainer(model.siamese, TrainConfig(batch_size=0))
        with pytest.raises(ValueError):
            trainer.train([])

    def test_batched_training_loss_decreases(self, buildroot_small):
        pairs = to_tree_pairs(
            build_cross_arch_pairs(buildroot_small.functions, 6, seed=5)
        )[:32]
        model = Asteria(AsteriaConfig(hidden_dim=16))
        trainer = Trainer(
            model.siamese, TrainConfig(epochs=2, lr=0.05, batch_size=8)
        )
        history = trainer.train(pairs)
        assert history.epochs[-1].mean_loss < history.epochs[0].mean_loss

    def test_batched_training_same_auc_ballpark(self, buildroot_small):
        """Minibatching through the level-batched engine converges to the
        same AUC ballpark as the paper's batch-size-1 setting."""
        from repro.core.pairs import split_pairs

        pairs = to_tree_pairs(
            build_cross_arch_pairs(buildroot_small.functions, 10, seed=12)
        )
        train, dev = split_pairs(pairs, 0.8, seed=3)

        def best_auc(batch_size):
            model = Asteria(AsteriaConfig(hidden_dim=16))
            trainer = Trainer(
                model.siamese,
                TrainConfig(epochs=2, lr=0.05, batch_size=batch_size),
            )
            return trainer.train(train, dev).best_auc

        auc_single = best_auc(1)
        auc_batched = best_auc(4)
        assert auc_batched >= 0.6
        assert abs(auc_batched - auc_single) <= 0.2

    def test_score_batch_matches_per_pair(self, buildroot_small, trained_model):
        pairs = to_tree_pairs(
            build_cross_arch_pairs(buildroot_small.functions, 6, seed=14)
        )[:16]
        trainer = Trainer(
            trained_model.siamese, TrainConfig(epochs=1, batch_size=4)
        )
        batched = trainer.score_batch(pairs)
        singles = [trainer.score(p) for p in pairs]
        np.testing.assert_allclose(batched, singles, atol=1e-10)

    def test_batched_training_regression_head(self, buildroot_small):
        pairs = to_tree_pairs(
            build_cross_arch_pairs(buildroot_small.functions, 4, seed=13)
        )[:12]
        model = Asteria(AsteriaConfig(hidden_dim=16, head="regression"))
        trainer = Trainer(model.siamese, TrainConfig(epochs=1, batch_size=4))
        history = trainer.train(pairs)
        assert len(history.epochs) == 1
        assert np.isfinite(history.epochs[0].mean_loss)

    def test_regression_head_trainable(self, buildroot_small):
        pairs = to_tree_pairs(
            build_cross_arch_pairs(buildroot_small.functions, 4, seed=9)
        )[:12]
        model = Asteria(AsteriaConfig(hidden_dim=16, head="regression"))
        trainer = Trainer(model.siamese, TrainConfig(epochs=1))
        history = trainer.train(pairs)
        assert len(history.epochs) == 1
