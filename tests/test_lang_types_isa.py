"""Tests for the mini type system and the ISA definitions."""

import pytest

from repro.compiler.isa import SUPPORTED_ARCHES, get_isa
from repro.lang.types import ArrayType, FunctionType, IntType, PtrType, VoidType


class TestTypes:
    def test_int_widths(self):
        assert str(IntType(32)) == "i32"
        assert str(IntType(8)) == "i8"
        with pytest.raises(ValueError):
            IntType(12)

    def test_pointer(self):
        assert str(PtrType(IntType(32))) == "i32*"
        assert str(PtrType(PtrType(IntType(8)))) == "i8**"

    def test_void_array_function(self):
        assert str(VoidType()) == "void"
        assert str(ArrayType(IntType(32), 4)) == "i32[4]"
        fn_type = FunctionType((IntType(32), PtrType()), IntType(64))
        assert str(fn_type) == "i64(i32, i32*)"

    def test_types_hashable(self):
        assert len({IntType(32), IntType(32), IntType(64)}) == 2


class TestISA:
    def test_unknown_arch(self):
        with pytest.raises(ValueError):
            get_isa("mips")

    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_opcode_table_bijective(self, arch):
        isa = get_isa(arch)
        opcodes = isa.opcode_table()
        mnemonics = isa.mnemonic_table()
        assert len(opcodes) == len(isa.mnemonics)
        for mnemonic, opcode in opcodes.items():
            assert mnemonics[opcode] == mnemonic
        assert 0 not in mnemonics  # opcode 0 reserved

    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_branch_condition_inverse(self, arch):
        isa = get_isa(arch)
        for kind, mnemonic in isa.branches.items():
            assert isa.is_conditional_branch(mnemonic)
            assert isa.branch_condition(mnemonic) == kind
        with pytest.raises(KeyError):
            isa.branch_condition(isa.jump)

    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_alu_mnemonics_in_vocabulary(self, arch):
        isa = get_isa(arch)
        for mnemonic in isa.alu.values():
            assert mnemonic in isa.mnemonics
        for mnemonic in isa.branches.values():
            assert mnemonic in isa.mnemonics
        assert isa.jump in isa.mnemonics
        assert isa.call in isa.mnemonics

    def test_family_properties(self):
        assert not get_isa("x86").three_operand
        assert get_isa("arm").three_operand
        assert get_isa("arm").supports_predication
        assert not get_isa("ppc").supports_predication
        assert get_isa("x86").arg_registers == ()  # stack args
        assert get_isa("x64").arg_registers[0] == "rdi"
        assert get_isa("x64").word_size == 8

    @pytest.mark.parametrize("arch", SUPPORTED_ARCHES)
    def test_var_scratch_disjoint_from_frame_regs(self, arch):
        isa = get_isa(arch)
        special = {isa.frame_pointer, isa.stack_pointer}
        assert not special & set(isa.var_registers)


class TestRegallocUnit:
    def test_exhaustion_raises(self):
        from repro.compiler.ir import IRFunction, Temp
        from repro.compiler.regalloc import AllocationError, ScratchAllocator

        ir = IRFunction("f", (), (), [])
        alloc = ScratchAllocator(("r1",), ir)
        alloc.define(Temp(0))
        with pytest.raises(AllocationError):
            alloc.define(Temp(1))

    def test_release_recycles(self):
        from repro.compiler.ir import IRFunction, Move, Temp, Var
        from repro.compiler.regalloc import ScratchAllocator

        ir = IRFunction("f", (), ("x",), [Move(Var("x"), Temp(0))])
        alloc = ScratchAllocator(("r1",), ir)
        register = alloc.define(Temp(0))
        alloc.release_after_use(Temp(0), 0)
        assert alloc.define(Temp(1)) == register

    def test_double_define_rejected(self):
        from repro.compiler.ir import IRFunction, Temp
        from repro.compiler.regalloc import AllocationError, ScratchAllocator

        ir = IRFunction("f", (), (), [])
        alloc = ScratchAllocator(("r1", "r2"), ir)
        alloc.define(Temp(0))
        with pytest.raises(AllocationError):
            alloc.define(Temp(0))

    def test_use_before_define_rejected(self):
        from repro.compiler.ir import IRFunction, Temp
        from repro.compiler.regalloc import AllocationError, ScratchAllocator

        ir = IRFunction("f", (), (), [])
        alloc = ScratchAllocator(("r1",), ir)
        with pytest.raises(AllocationError):
            alloc.location(Temp(3))
