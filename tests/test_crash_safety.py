"""Crash-safety tests: kill -9 during writes, torn shards, recovery.

Real crashes are simulated two ways:

* **subprocess kills** -- a child process arms a ``kill``-mode failpoint
  (`repro.faults`) and dies with ``os._exit(137)`` at exactly the moment
  a power cut would strike (shard bytes written but unpublished, shards
  published but manifest stale, manifest written to temp only).  The
  parent then reopens the store and must see the last consistent
  generation;
* **in-place corruption** -- shard files are truncated / bit-flipped /
  deleted after a clean shutdown.  Verification on open must quarantine
  the damage and keep serving the surviving prefix, with ``degraded``
  visible all the way up through engine stats, ``/healthz`` and
  ``/metrics``.
"""

import json
import os
import subprocess
import sys
import threading
import urllib.request
from pathlib import Path

import numpy as np
import pytest

import repro.faults as faults
from repro.api import AsteriaEngine, EngineConfig, EngineServer
from repro.core.model import FunctionEncoding
from repro.faults import FaultInjected, KILL_EXIT_CODE
from repro.index.search import SearchService
from repro.index.store import (
    MANIFEST_NAME,
    QUARANTINE_DIR,
    EmbeddingStore,
)
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.cache import ArtifactCache

SRC = str(Path(__file__).resolve().parents[1] / "src")

DIM = 8


@pytest.fixture(autouse=True)
def _disarm_faults():
    faults.clear()
    yield
    faults.clear()


def _encoding(i: int, dim: int = DIM) -> FunctionEncoding:
    rng = np.random.default_rng(i)
    return FunctionEncoding(
        name=f"fn_{i}",
        arch="x86",
        binary_name=f"bin-{i % 3}",
        vector=rng.normal(size=dim),
        callee_count=i % 5,
        ast_size=10 + i,
    )


#: Child program: create a 6-row store, or grow it by 8 rows with an
#: optional failpoint spec armed right before the flush.  Mirrors
#: `_encoding` above so the parent can predict every vector.
_CHILD = """
import sys
import numpy as np
import repro.faults as faults
from repro.core.model import FunctionEncoding
from repro.index.store import EmbeddingStore

root, phase, spec = sys.argv[1], sys.argv[2], sys.argv[3]

def encodings(lo, hi, dim=8):
    for i in range(lo, hi):
        rng = np.random.default_rng(i)
        yield FunctionEncoding(
            name=f"fn_{i}", arch="x86", binary_name=f"bin-{i % 3}",
            vector=rng.normal(size=dim), callee_count=i % 5,
            ast_size=10 + i,
        )

if phase == "create":
    store = EmbeddingStore.create(root, dim=8, shard_size=4)
    store.add_batch(encodings(0, 6))
else:
    store = EmbeddingStore.open(root)
    store.add_batch(encodings(6, 14))
if spec:
    faults.configure(spec)
store.flush()
print("flushed", len(store))
"""


def _run_child(root, phase: str, spec: str = "") -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_FAULTS", None)
    return subprocess.run(
        [sys.executable, "-c", _CHILD, str(root), phase, spec],
        capture_output=True, text=True, env=env, timeout=120,
    )


def _seed_store(root) -> np.ndarray:
    """6 rows across 2 shards, written by a clean child process."""
    proc = _run_child(root, "create")
    assert proc.returncode == 0, proc.stderr
    return np.stack([_encoding(i).vector for i in range(6)])


# -- kill -9 during writes -------------------------------------------------


class TestKillDuringFlush:
    @pytest.mark.parametrize("failpoint", [
        "store.flush.pre_rename",    # shard bytes durable, unpublished
        "store.flush.pre_manifest",  # shards visible, manifest stale
        "store.manifest.pre_rename", # new manifest exists as temp only
    ])
    def test_reopen_serves_last_consistent_generation(
        self, tmp_path, failpoint
    ):
        root = tmp_path / "idx"
        baseline = _seed_store(root)
        proc = _run_child(root, "grow", f"{failpoint}=kill")
        assert proc.returncode == KILL_EXIT_CODE, proc.stderr
        store = EmbeddingStore.open(root)
        assert len(store) == 6  # the crashed generation never happened
        assert not store.degraded  # nothing referenced was torn
        assert np.allclose(
            np.asarray(store.vectors(), dtype=np.float64), baseline,
            atol=1e-6,
        )
        assert [m.name for m in store.iter_metadata()] \
            == [f"fn_{i}" for i in range(6)]

    def test_interrupted_growth_can_be_retried(self, tmp_path):
        root = tmp_path / "idx"
        _seed_store(root)
        proc = _run_child(root, "grow", "store.flush.pre_manifest=kill")
        assert proc.returncode == KILL_EXIT_CODE, proc.stderr
        # the orphaned shard files from the crashed flush are simply
        # overwritten when the ingest is retried
        proc = _run_child(root, "grow")
        assert proc.returncode == 0, proc.stderr
        store = EmbeddingStore.open(root)
        assert len(store) == 14
        assert not store.degraded
        assert [m.name for m in store.iter_metadata()] \
            == [f"fn_{i}" for i in range(14)]

    def test_temp_files_never_count_as_shards(self, tmp_path):
        root = tmp_path / "idx"
        _seed_store(root)
        proc = _run_child(root, "grow", "store.flush.pre_rename=kill")
        assert proc.returncode == KILL_EXIT_CODE
        leftovers = list(root.glob("*.tmp"))
        assert leftovers  # the crash left its torn temp file behind
        store = EmbeddingStore.open(root)
        assert len(store) == 6


# -- torn / corrupt shards on open -----------------------------------------


class TestTornShardRecovery:
    def _fill(self, root, n=10) -> EmbeddingStore:
        store = EmbeddingStore.create(root, dim=DIM, shard_size=4)
        store.add_batch(_encoding(i) for i in range(n))
        store.flush()
        return store

    def test_manifest_records_checksums(self, tmp_path):
        root = tmp_path / "idx"
        self._fill(root)
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        for entry in manifest["shards"]:
            assert set(entry["sha256"]) == {
                f"{entry['name']}.npy", f"{entry['name']}.meta.npz",
            }
            for digest in entry["sha256"].values():
                assert len(digest) == 64

    def test_truncated_tail_shard_is_quarantined(self, tmp_path):
        root = tmp_path / "idx"
        baseline = np.asarray(self._fill(root).vectors(), dtype=np.float64)
        shard = root / "shard-00002.npy"
        shard.write_bytes(shard.read_bytes()[:-16])  # torn write
        store = EmbeddingStore.open(root)
        assert store.degraded
        assert store.quarantined == ["shard-00002"]
        assert len(store) == 8  # 4 + 4 surviving rows
        assert np.allclose(
            np.asarray(store.vectors(), dtype=np.float64), baseline[:8],
            atol=1e-6,
        )
        # the damaged files moved aside for post-mortem, not deleted
        assert (root / QUARANTINE_DIR / "shard-00002.npy").exists()
        # recovery persisted: a second open is already clean but still
        # reports the degradation
        reopened = EmbeddingStore.open(root)
        assert reopened.degraded
        assert len(reopened) == 8

    def test_bitflip_is_caught_by_checksum(self, tmp_path):
        root = tmp_path / "idx"
        self._fill(root)
        shard = root / "shard-00001.npy"
        data = bytearray(shard.read_bytes())
        data[-1] ^= 0xFF  # same size, different bytes
        shard.write_bytes(bytes(data))
        store = EmbeddingStore.open(root)
        assert store.degraded
        # rows are positional: everything after the bad shard goes too
        assert store.quarantined == ["shard-00001", "shard-00002"]
        assert len(store) == 4

    def test_missing_file_truncates_to_prefix(self, tmp_path):
        root = tmp_path / "idx"
        self._fill(root)
        (root / "shard-00000.meta.npz").unlink()
        store = EmbeddingStore.open(root)
        assert store.degraded
        assert len(store) == 0  # first shard bad: nothing survives
        assert len(store.quarantined) == 3

    def test_verify_can_be_skipped(self, tmp_path):
        root = tmp_path / "idx"
        self._fill(root)
        store = EmbeddingStore.open(root, verify=False)
        assert not store.degraded
        assert len(store) == 10

    def test_stale_ann_state_is_dropped_with_the_rows(self, tmp_path):
        root = tmp_path / "idx"
        store = self._fill(root)
        store.write_ann_state(
            {"backend": "lsh", "n_rows": 10},
            {"planes": np.zeros((4, DIM))},
        )
        shard = root / "shard-00002.npy"
        shard.write_bytes(shard.read_bytes()[:-8])
        recovered = EmbeddingStore.open(root)
        assert len(recovered) == 8
        # signatures covering vanished rows must not survive recovery
        assert recovered.read_ann_state() is None


# -- ANN persistence and construction faults -------------------------------


class TestAnnFaults:
    def test_ann_persist_crash_keeps_previous_state(self, tmp_path):
        root = tmp_path / "idx"
        store = EmbeddingStore.create(root, dim=DIM, shard_size=4)
        store.add_batch(_encoding(i) for i in range(4))
        store.flush()
        store.write_ann_state(
            {"backend": "lsh", "n_rows": 4, "generation": 1},
            {"planes": np.ones((4, DIM))},
        )
        faults.configure("ann.persist.pre_rename=raise*1")
        with pytest.raises(FaultInjected):
            store.write_ann_state(
                {"backend": "lsh", "n_rows": 4, "generation": 2},
                {"planes": np.zeros((4, DIM))},
            )
        # the interrupted write left generation 1 fully intact
        reopened = EmbeddingStore.open(root)
        state = reopened.read_ann_state()
        assert state is not None
        params, arrays = state
        assert params["generation"] == 1
        assert np.allclose(arrays["planes"], 1.0)

    def test_ann_build_failure_degrades_to_exact(self, trained_model):
        dim = trained_model.config.hidden_dim
        store = EmbeddingStore.in_memory(dim=dim)
        store.add_batch(_encoding(i, dim=dim) for i in range(12))
        store.flush()
        registry = MetricsRegistry()
        service = SearchService(
            trained_model, store, backend="lsh", registry=registry,
        )
        faults.configure("ann.build=raise")
        hits = service.query(_encoding(99, dim=dim), top_k=3)
        assert len(hits) == 3  # exact sweep answered instead of failing
        assert any(
            "serving exact sweeps" in r for r in service.degraded_reasons
        )
        assert registry.value("repro_ann_fallback_total") >= 1
        # once construction works again, a rebuild clears the flag
        faults.clear()
        store.add_batch([_encoding(100, dim=dim)])
        store.flush()
        service.query(_encoding(99, dim=dim), top_k=3)
        assert service.degraded_reasons == []


# -- artifact cache crashes ------------------------------------------------


class TestCacheCrashes:
    def test_interrupted_put_leaves_no_entry(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        faults.configure("cache.put.pre_rename=raise*1")
        with pytest.raises(FaultInjected):
            cache.put("key-a", {"x": np.arange(4.0)}, {"kind": "test"})
        cache.flush()
        recovered = ArtifactCache(tmp_path / "cache")
        assert recovered.get("key-a") is None  # a miss, not a crash
        # and the retried put works
        recovered.put("key-a", {"x": np.arange(4.0)}, {"kind": "test"})
        state, meta = recovered.get("key-a")
        assert np.array_equal(state["x"], np.arange(4.0))
        assert meta["kind"] == "test"

    def test_corrupt_object_detected_on_get(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.put("key-b", {"x": np.arange(8.0)}, {})
        cache.flush()
        reopened = ArtifactCache(tmp_path / "cache")
        [obj] = list((tmp_path / "cache").glob("**/key-b.npz"))
        data = bytearray(obj.read_bytes())
        data[len(data) // 2] ^= 0xFF
        obj.write_bytes(bytes(data))
        assert reopened.get("key-b") is None  # checksum caught it


# -- end-to-end degraded-mode surfacing ------------------------------------


class TestDegradedSurfacing:
    def _degraded_root(self, tmp_path, dim) -> Path:
        root = tmp_path / "idx"
        store = EmbeddingStore.create(root, dim=dim, shard_size=4)
        store.add_batch(_encoding(i, dim=dim) for i in range(10))
        store.flush()
        shard = root / "shard-00002.npy"
        shard.write_bytes(shard.read_bytes()[:-8])
        return root

    def test_engine_stats_and_metrics_report_degraded(
        self, tmp_path, trained_model
    ):
        root = self._degraded_root(tmp_path, trained_model.config.hidden_dim)
        engine = AsteriaEngine(
            EngineConfig(index_root=str(root)), model=trained_model,
        )
        engine.store  # serve() opens the configured index up front too
        stats = engine.stats()
        assert stats.degraded is True
        assert stats.index_quarantined_shards == 1
        assert any("quarantined" in r for r in stats.degraded_reasons)
        assert stats.index_rows == 8
        text = engine.metrics_text()
        assert "repro_engine_degraded 1" in text
        assert "repro_index_quarantined_shards 1" in text

    def test_healthz_shows_degraded_status(self, tmp_path, trained_model):
        root = self._degraded_root(tmp_path, trained_model.config.hidden_dim)
        engine = AsteriaEngine(
            EngineConfig(index_root=str(root)), model=trained_model,
        )
        engine.store  # serve() opens the configured index up front too
        server = EngineServer(("127.0.0.1", 0), engine)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                server.url + "/healthz", timeout=30
            ) as response:
                body = json.loads(response.read())
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)
        assert body["status"] == "degraded"
        assert body["degraded"] is True
        assert body["quarantined_shards"] == 1
        assert any("quarantined" in r for r in body["degraded_reasons"])
