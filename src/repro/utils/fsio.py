"""Crash-safe filesystem primitives: atomic commit + checksums.

Every durable artifact in the repo (store shards and manifests, LSH
state, cache objects) reaches its final name the same way: the bytes
are written to a temporary sibling, flushed and ``fsync``-ed, then
``os.replace``-d over the target, and the directory entry is fsynced
too.  A crash at any instant leaves either the old file or the new one
-- never a torn hybrid -- and at worst an orphaned ``*.tmp*`` sibling
that the next writer overwrites.

:func:`file_sha256` provides the per-artifact checksums recorded in
manifests, so corruption that bypasses the atomic-rename guarantee
(disk bitrot, an out-of-band truncation, a partially synced page) is
*detected* on open instead of surfacing as garbage query results.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Optional

import repro.faults as faults

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "commit_file",
    "file_sha256",
    "fsync_dir",
    "fsync_file",
]

_CHUNK = 1 << 20


def fsync_file(path) -> None:
    """Flush one file's data to stable storage."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path) -> None:
    """Flush a directory entry (the rename itself) to stable storage.

    Best effort: some filesystems refuse to fsync a directory -- the
    rename is still atomic, just not yet durable, which matches the
    pre-fsync behaviour rather than failing the write.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def commit_file(tmp, target, failpoint: Optional[str] = None) -> None:
    """Atomically publish ``tmp`` (already fully written) as ``target``.

    fsyncs the temp file, fires ``failpoint`` (the crash-window a chaos
    test aims at: bytes durable under the wrong name), renames, and
    fsyncs the directory so the rename itself survives a power cut.
    """
    tmp, target = Path(tmp), Path(target)
    fsync_file(tmp)
    if failpoint:
        faults.inject(failpoint)
    os.replace(tmp, target)
    fsync_dir(target.parent)


def atomic_write_bytes(path, data: bytes,
                       failpoint: Optional[str] = None) -> None:
    """Write ``data`` to ``path`` via the temp→fsync→rename protocol."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    if failpoint:
        faults.inject(failpoint)
    os.replace(tmp, path)
    fsync_dir(path.parent)


def atomic_write_text(path, text: str,
                      failpoint: Optional[str] = None) -> None:
    atomic_write_bytes(path, text.encode("utf-8"), failpoint=failpoint)


def file_sha256(path) -> str:
    """Streaming sha256 of one file (the manifest checksum format)."""
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            hasher.update(chunk)
    return hasher.hexdigest()
