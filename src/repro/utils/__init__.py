"""Shared utilities: RNG, logging, crash-safe file IO, retry/backoff."""

from repro.utils.rng import RNG, derive_seed
from repro.utils.logging import get_logger
from repro.utils.retry import RetryError, backoff_delays, retry

__all__ = [
    "RNG",
    "RetryError",
    "backoff_delays",
    "derive_seed",
    "get_logger",
    "retry",
]
