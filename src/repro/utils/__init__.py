"""Shared utilities: deterministic RNG, logging, and serialization helpers."""

from repro.utils.rng import RNG, derive_seed
from repro.utils.logging import get_logger

__all__ = ["RNG", "derive_seed", "get_logger"]
