"""Deterministic random number generation.

Every stochastic component of the reproduction accepts an explicit seed and
derives child seeds with :func:`derive_seed`, so that a single top-level seed
fully determines the generated corpus, the model initialisation, and the
sampled training pairs.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK_63 = (1 << 63) - 1


def derive_seed(seed: int, *names: object) -> int:
    """Derive a child seed from ``seed`` and a path of component names.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash()``), so corpora generated from the same seed
    are bit-identical everywhere.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(seed)).encode("utf-8"))
    for name in names:
        hasher.update(b"/")
        hasher.update(str(name).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "little") & _MASK_63


class RNG:
    """Thin wrapper over :class:`numpy.random.Generator` with seed derivation.

    The wrapper exposes the handful of draws the codebase needs and the
    :meth:`child` method for deterministic fan-out.
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._gen = np.random.default_rng(self.seed)

    def child(self, *names: object) -> "RNG":
        """Return a new independent RNG derived from this one's seed."""
        return RNG(derive_seed(self.seed, *names))

    # -- draws -------------------------------------------------------------

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return int(self._gen.integers(low, high + 1))

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return float(self._gen.random())

    def choice(self, items, weights=None):
        """Choose one item, optionally weighted."""
        seq = list(items)
        if weights is not None:
            probs = np.asarray(weights, dtype=float)
            probs = probs / probs.sum()
            index = int(self._gen.choice(len(seq), p=probs))
        else:
            index = int(self._gen.integers(0, len(seq)))
        return seq[index]

    def sample(self, items, k: int):
        """Choose ``k`` distinct items (order randomised)."""
        seq = list(items)
        if k > len(seq):
            raise ValueError(f"cannot sample {k} items from {len(seq)}")
        indices = self._gen.choice(len(seq), size=k, replace=False)
        return [seq[int(i)] for i in indices]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = int(self._gen.integers(0, i + 1))
            items[i], items[j] = items[j], items[i]

    def normal(self, loc: float = 0.0, scale: float = 1.0, size=None):
        """Gaussian draw(s)."""
        return self._gen.normal(loc=loc, scale=scale, size=size)

    def uniform(self, low: float, high: float, size=None):
        """Uniform draw(s) in ``[low, high)``."""
        return self._gen.uniform(low, high, size=size)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator, for vectorised draws."""
        return self._gen
