"""Logging helpers.

All modules obtain loggers through :func:`get_logger`, which namespaces
them under ``repro`` so applications can configure the whole library at
once.  :func:`configure` installs one stderr handler with either the
human-readable text format or a JSON-lines format (``fmt="json"``) for
log shippers; the level defaults to the ``REPRO_LOG_LEVEL`` environment
variable (a name like ``DEBUG`` or a numeric level) and falls back to
``INFO``.

When a log record is emitted inside an open trace span
(:mod:`repro.obs.trace`), the span's ``request_id`` is attached to the
record -- the text format appends ``rid=<id>``, the JSON format adds a
``request_id`` field -- so one grep follows a request through the access
log, the engine and the slow-query log.
"""

from __future__ import annotations

import json
import logging
import os

_CONFIGURED = False
_TEXT_FORMAT = "%(asctime)s %(name)s %(levelname)s %(message)s"


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


class _RequestIdFilter(logging.Filter):
    """Stamp the current trace span's request id onto every record."""

    def filter(self, record: logging.LogRecord) -> bool:
        # imported lazily so the logging module never forces obs to load
        from repro.obs.trace import current_request_id

        record.request_id = current_request_id()
        return True


class _TextFormatter(logging.Formatter):
    """The classic text format, with ``rid=<id>`` inside a span."""

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        request_id = getattr(record, "request_id", None)
        return f"{base} rid={request_id}" if request_id else base


class JsonFormatter(logging.Formatter):
    """One JSON object per line (for log shippers and tests)."""

    def format(self, record: logging.LogRecord) -> str:
        entry = {
            "ts": self.formatTime(record),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = getattr(record, "request_id", None)
        if request_id:
            entry["request_id"] = request_id
        if record.exc_info:
            entry["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(entry, sort_keys=True)


def _level_from_env(default: int = logging.INFO) -> int:
    """``REPRO_LOG_LEVEL`` as a level number (name or digits), or default."""
    raw = os.environ.get("REPRO_LOG_LEVEL", "").strip()
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    value = logging.getLevelName(raw.upper())
    return value if isinstance(value, int) else default


def configure(
    level: int = None, fmt: str = "text", force: bool = False
) -> None:
    """Install a stderr handler once (idempotent unless ``force``).

    ``level=None`` reads ``REPRO_LOG_LEVEL`` (falling back to ``INFO``);
    ``fmt`` is ``"text"`` or ``"json"``.  ``force=True`` replaces the
    previously installed handler, so a long-lived process can switch
    format.
    """
    global _CONFIGURED
    if _CONFIGURED and not force:
        return
    if fmt not in ("text", "json"):
        raise ValueError(f"fmt must be 'text' or 'json', got {fmt!r}")
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(
        JsonFormatter() if fmt == "json" else _TextFormatter(_TEXT_FORMAT)
    )
    handler.addFilter(_RequestIdFilter())
    root.addHandler(handler)
    root.setLevel(_level_from_env() if level is None else level)
    _CONFIGURED = True
