"""Logging helpers.

All modules obtain loggers through :func:`get_logger`, which namespaces them
under ``repro`` so applications can configure the whole library at once.
"""

from __future__ import annotations

import logging

_CONFIGURED = False


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure(level: int = logging.INFO) -> None:
    """Install a basic stderr handler once (idempotent)."""
    global _CONFIGURED
    if _CONFIGURED:
        return
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    root = logging.getLogger("repro")
    root.addHandler(handler)
    root.setLevel(level)
    _CONFIGURED = True
