"""Retry with exponential backoff and jitter.

The pipeline's worker supervisor (and anything else facing transient
faults) retries through one shared implementation, so attempt budgets
and backoff behaviour are uniform and testable.  Jitter is decorrelated
-- each delay is drawn uniformly from ``[delay * (1 - jitter), delay]``
-- so a fleet of workers retrying the same stalled resource does not
thunder back in lockstep.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.utils.logging import get_logger

_LOG = get_logger("utils.retry")

__all__ = ["RetryError", "backoff_delays", "retry"]

DEFAULT_ATTEMPTS = 3
DEFAULT_BASE_DELAY_S = 0.05
DEFAULT_MAX_DELAY_S = 2.0
DEFAULT_FACTOR = 2.0
DEFAULT_JITTER = 0.5


class RetryError(RuntimeError):
    """Every attempt failed; ``last`` carries the final exception."""

    def __init__(self, message: str, last: Optional[BaseException] = None):
        super().__init__(message)
        self.last = last


def backoff_delays(
    attempts: int,
    base_delay_s: float = DEFAULT_BASE_DELAY_S,
    max_delay_s: float = DEFAULT_MAX_DELAY_S,
    factor: float = DEFAULT_FACTOR,
    jitter: float = DEFAULT_JITTER,
    rng: Optional[random.Random] = None,
) -> Iterator[float]:
    """Delays to sleep *between* attempts (``attempts - 1`` values).

    Deterministic when given a seeded ``rng``; jitter=0 gives the pure
    exponential sequence ``base, base*factor, ...`` capped at
    ``max_delay_s``.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    if not 0 <= jitter <= 1:
        raise ValueError(f"jitter must be in [0, 1], got {jitter}")
    rng = rng if rng is not None else random.Random()
    delay = base_delay_s
    for _ in range(attempts - 1):
        capped = min(delay, max_delay_s)
        yield capped * (1.0 - jitter * rng.random())
        delay *= factor


def retry(
    fn: Callable,
    attempts: int = DEFAULT_ATTEMPTS,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    base_delay_s: float = DEFAULT_BASE_DELAY_S,
    max_delay_s: float = DEFAULT_MAX_DELAY_S,
    factor: float = DEFAULT_FACTOR,
    jitter: float = DEFAULT_JITTER,
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
):
    """Call ``fn()`` up to ``attempts`` times with backoff between tries.

    Only exceptions matching ``retry_on`` are retried; anything else
    propagates immediately.  After the budget is spent a
    :class:`RetryError` wraps the last failure.  ``on_retry(attempt,
    exc)`` fires before each backoff sleep (counters, logging).
    """
    delays = backoff_delays(
        attempts, base_delay_s=base_delay_s, max_delay_s=max_delay_s,
        factor=factor, jitter=jitter, rng=rng,
    )
    last: Optional[BaseException] = None
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt == attempts:
                break
            if on_retry is not None:
                on_retry(attempt, exc)
            _LOG.warning(
                "attempt %d/%d failed (%s); retrying", attempt, attempts, exc
            )
            sleep(next(delays))
    raise RetryError(
        f"all {attempts} attempts failed (last: {last})", last=last
    )
