"""repro: a full reproduction of Asteria (DSN 2021).

Asteria detects semantically equivalent binary functions across CPU
architectures by encoding decompiled ASTs with a Binary Tree-LSTM inside a
Siamese network, then calibrating with callee counts.

This package contains the complete system *and* every substrate it needs:

- :mod:`repro.lang` -- a mini C-like language + random program generator;
- :mod:`repro.compiler` -- a 4-target compiler (x86/x64/ARM/PPC);
- :mod:`repro.binformat` -- binaries, firmware images, binwalk;
- :mod:`repro.disasm` / :mod:`repro.decompiler` -- disassembly and
  Hex-Rays-style decompilation back to ASTs;
- :mod:`repro.nn` -- numpy autograd, Tree-LSTM, structure2vec;
- :mod:`repro.core` -- the Asteria model, training, calibration;
- :mod:`repro.baselines` -- Gemini and Diaphora;
- :mod:`repro.evalsuite` -- metrics, datasets, vulnerability search, timing.

Quickstart::

    from repro import Asteria, AsteriaConfig
    from repro.evalsuite.datasets import build_buildroot_dataset
    from repro.core import build_cross_arch_pairs, to_tree_pairs, Trainer

    dataset = build_buildroot_dataset(n_packages=6, seed=7)
    pairs = to_tree_pairs(build_cross_arch_pairs(dataset.functions, 30))
    model = Asteria(AsteriaConfig())
    Trainer(model.siamese).train(pairs[: int(len(pairs) * 0.8)],
                                 pairs[int(len(pairs) * 0.8):])
"""

from repro.api.config import EngineConfig
from repro.api.engine import AsteriaEngine
from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.core.training import TrainConfig, Trainer

__version__ = "1.0.0"

__all__ = [
    "Asteria",
    "AsteriaConfig",
    "AsteriaEngine",
    "EngineConfig",
    "FunctionEncoding",
    "TrainConfig",
    "Trainer",
    "__version__",
]
