"""Query service over a persistent embedding store.

:class:`SearchService` ties the index subsystem together into the paper's
offline/online split:

* **offline** -- :meth:`SearchService.ingest_firmware` /
  :meth:`ingest_binary` run the corpus through the staged pipeline
  (:class:`~repro.pipeline.corpus.CorpusPipeline`: unpack, decompile,
  preprocess, level-batched encode), appending the encodings to an
  :class:`~repro.index.store.EmbeddingStore`.  The pipeline's artifact
  cache makes warm re-ingests skip decompile + encode, and ``jobs``
  extracts with a worker pool;
* **online** -- :meth:`SearchService.query` encodes nothing but the query:
  the ANN backend proposes candidate rows, the batched Siamese head
  exact-reranks them, and an optional threshold (e.g. the Youden-derived
  cutoff from §IV) prunes the rest.  :meth:`SearchService.query_batch`
  answers Q queries in one corpus pass: candidate sets are unioned and
  scored as a single ``(Q, n)`` Siamese GEMM sweep over the store's
  memory-mapped shards.  For the ``lsh`` backend over a durable store,
  the fitted index (hyperplanes + signatures) is persisted next to the
  shards and reloaded on open, so no full re-projection pass runs when
  the corpus has not changed -- appended rows are signed incrementally.

The service is deliberately model-agnostic about where queries come from:
pass a ready :class:`FunctionEncoding`, or use :meth:`encode_query` /
:meth:`query_function` for a decompiled function.

Services are normally assembled by :class:`~repro.api.engine.AsteriaEngine`
(``engine.service`` / ``engine.make_service``), which owns the model,
artifact cache and pipeline they share.  Constructing one directly with
``model`` + ``store`` remains supported as the deprecated compatibility
path: it routes through a private engine so the assembly still happens
in :mod:`repro.api`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.binformat.binary import BinaryFile
from repro.core.model import (
    DEFAULT_ENCODE_BATCH_SIZE,
    Asteria,
    FunctionEncoding,
)
from repro.decompiler.hexrays import DecompiledFunction
from repro.index.ann import AnnIndex, backend_is_stateful, make_index
from repro.index.store import EmbeddingStore, StoredFunction
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import ArtifactCache, CorpusPipeline, PipelineStats
from repro.utils.logging import get_logger

_LOG = get_logger("index.search")


@dataclass(frozen=True)
class SearchHit:
    """One query result: score plus the stored function's metadata."""

    row: int
    score: float
    name: str
    binary_name: str
    arch: str
    callee_count: int
    ast_size: int
    image_id: str = ""


@dataclass
class IngestStats:
    """What one offline ingest pass actually processed.

    ``pipeline`` carries the underlying
    :class:`~repro.pipeline.corpus.PipelineStats` (per-stage times, cache
    hit/miss accounting) for callers that report them.
    """

    n_images: int = 0
    n_unpack_failures: int = 0
    n_binaries: int = 0
    n_functions: int = 0
    n_skipped_small: int = 0
    pipeline: PipelineStats = field(default_factory=PipelineStats)


class SearchService:
    """Encode-once / query-fast search over an embedding store."""

    def __init__(
        self,
        model: Asteria,
        store: EmbeddingStore,
        backend: str = "exact",
        calibrate: bool = True,
        encode_batch_size: int = DEFAULT_ENCODE_BATCH_SIZE,
        jobs: int = 1,
        cache: Optional[ArtifactCache] = None,
        pipeline: Optional[CorpusPipeline] = None,
        registry: Optional[MetricsRegistry] = None,
        **backend_options,
    ):
        self.model = model
        self.store = store
        self.backend = backend
        self.calibrate = calibrate
        self.encode_batch_size = encode_batch_size
        self.backend_options = backend_options
        self.registry = registry
        if pipeline is None:
            # deprecated shim: assemble the pipeline through the facade
            # (imported lazily; repro.api imports this module)
            from repro.api.config import EngineConfig
            from repro.api.engine import AsteriaEngine

            pipeline = AsteriaEngine(
                EngineConfig(
                    jobs=jobs, encode_batch_size=encode_batch_size
                ),
                model=model,
                cache=cache,
            ).pipeline
        self.pipeline = pipeline
        self._index: Optional[AnnIndex] = None
        self._index_rows = -1
        #: Human-readable reasons the service is running below full
        #: fidelity (e.g. ANN build failed -> exact fallback); surfaced
        #: through engine stats and ``/healthz``.
        self.degraded_reasons: List[str] = []

    # -- offline phase -----------------------------------------------------

    def ingest_binary(self, binary: BinaryFile, image_id: str = "") -> int:
        """Decompile + encode every function of one binary; returns count.

        Runs the binary through the staged pipeline: cached artifacts are
        reused and eligible functions are encoded through the
        level-batched Tree-LSTM, ``encode_batch_size`` trees per stacked
        GEMM pass.
        """
        encodings = self.pipeline.encode_binary(binary)
        for encoding in encodings:
            self.store.add(encoding, image_id=image_id)
        return len(encodings)

    def ingest_firmware(self, images: Iterable) -> IngestStats:
        """Unpack + ingest a firmware corpus (the paper's offline phase).

        The pipeline's Index stage appends straight into (and flushes)
        this service's store.
        """
        result = self.pipeline.run_images(images, sink=self.store)
        s = result.stats
        stats = IngestStats(
            n_images=s.n_images,
            n_unpack_failures=s.n_unpack_failures,
            n_binaries=s.n_binaries,
            n_functions=s.n_functions,
            n_skipped_small=s.n_skipped_small,
            pipeline=s,
        )
        _LOG.info(
            "ingested %d functions from %d binaries "
            "(%d images unidentifiable)",
            stats.n_functions, stats.n_binaries, stats.n_unpack_failures,
        )
        return stats

    def ingest_encodings(
        self, encodings: Iterable[FunctionEncoding], image_id: str = ""
    ) -> int:
        """Ingest pre-computed encodings (no decompilation)."""
        n = self.store.add_batch(encodings, image_id=image_id)
        self.store.flush()
        return n

    # -- online phase ------------------------------------------------------

    def index(self) -> AnnIndex:
        """The ANN index over the store (refreshed when the store grows).

        Stateful backends (``lsh``, ``ivf-pq``) over a durable store
        round-trip through the persisted state in the store manifest: an
        unchanged corpus reopens without any projection/quantization
        pass, a grown corpus processes only the appended rows, and
        either way the refreshed state is written back.
        """
        if self._index is None or self._index_rows != self.store.n_flushed:
            options = dict(self.backend_options)
            if self.registry is not None:
                options.setdefault("registry", self.registry)
            if (
                backend_is_stateful(self.backend)
                and self.store.root is not None
            ):
                options.setdefault("state", self.store.read_ann_state())
            try:
                self._index = make_index(
                    self.backend,
                    self.model,
                    self.store.vectors(),
                    self.store.callee_counts(),
                    calibrate=self.calibrate,
                    **options,
                )
                self._persist_index(self._index)
                # a successful (re)build clears any earlier fallback
                self.degraded_reasons = [
                    r for r in self.degraded_reasons
                    if "serving exact sweeps" not in r
                ]
            except Exception as exc:
                # client errors (unknown backend, bad knob values) are
                # the caller's to fix -- degrading them to exact sweeps
                # would mask the typo (imported lazily; repro.api
                # imports this module)
                from repro.api.errors import BadRequestError

                if isinstance(exc, BadRequestError):
                    raise
                if self.backend == "exact":
                    raise  # nothing simpler to fall back to
                # graceful degradation: answer with the exact sweep
                # (correct, slower) rather than failing every query
                reason = (
                    f"{self.backend} index construction failed ({exc}); "
                    f"serving exact sweeps"
                )
                if reason not in self.degraded_reasons:
                    self.degraded_reasons.append(reason)
                _LOG.warning("ANN fallback: %s", reason)
                if self.registry is not None:
                    self.registry.counter(
                        "repro_ann_fallback_total",
                        "ANN construction failures degraded to exact "
                        "sweeps",
                    ).inc()
                self._index = make_index(
                    "exact",
                    self.model,
                    self.store.vectors(),
                    self.store.callee_counts(),
                    calibrate=self.calibrate,
                    registry=self.registry,
                )
            self._index_rows = self.store.n_flushed
            if self.registry is not None:
                self.registry.counter(
                    "repro_index_rebuilds_total",
                    "ANN index (re)constructions over the store",
                ).inc()
        return self._index

    @property
    def index_generation(self) -> int:
        """Store rows covered by the materialised index (-1 = not built).

        Changes exactly when :meth:`index` rebuilds, so health endpoints
        can report "which corpus snapshot queries are answered from"
        without triggering a build.
        """
        return self._index_rows

    def ann_info(self) -> Optional[dict]:
        """Monitoring snapshot of the materialised ANN index, or ``None``.

        Deliberately side-effect free (never builds the index), so stats
        endpoints can poll it without perturbing the service.
        """
        if self._index is None:
            return None
        info = {
            "backend": self.backend,
            "persisted": getattr(self._index, "loaded_from_state", None),
            "rows_projected": getattr(self._index, "rows_projected", 0),
        }
        # tiered-backend knobs, when the materialised index has them
        for knob in ("n_lists", "nprobe", "rows_quantized"):
            value = getattr(self._index, knob, None)
            if value is not None:
                info[knob] = int(value)
        return info

    def _persist_index(self, index: AnnIndex) -> None:
        """Write refreshed ANN state back beside the shards (best effort)."""
        if not backend_is_stateful(self.backend) or self.store.root is None:
            return
        if index.loaded_from_state and not index.rows_projected:
            return  # persisted state already current
        try:
            params, arrays = index.state_dict()
            self.store.write_ann_state(params, arrays)
        except OSError as exc:
            _LOG.warning("could not persist ANN state: %s", exc)

    def encode_query(self, fn: DecompiledFunction) -> FunctionEncoding:
        return self.model.encode_function(fn)

    def query(
        self,
        encoding: FunctionEncoding,
        top_k: Optional[int] = 10,
        threshold: Optional[float] = None,
    ) -> List[SearchHit]:
        """Top-k (or all-above-threshold with ``top_k=None``) matches."""
        hits = []
        for neighbor in self.index().top_k(
            encoding, k=top_k, threshold=threshold
        ):
            meta = self.store.metadata_at(neighbor.row)
            hits.append(_hit(neighbor.row, neighbor.score, meta))
        return hits

    def query_batch(
        self,
        encodings: Sequence[FunctionEncoding],
        top_k: Optional[int] = 10,
        threshold: Optional[float] = None,
    ) -> List[List[SearchHit]]:
        """Top-k matches for Q queries in one corpus pass.

        Selects the same hits as mapping :meth:`query` -- every corpus
        block is read once and scored against all Q queries in one
        broadcasted Siamese GEMM (:meth:`AnnIndex.top_k_batch
        <repro.index.ann.AnnIndex.top_k_batch>`); scores match the
        per-query path to float rounding, so near-exact score ties may
        order differently.
        """
        neighbor_lists = self.index().top_k_batch(
            encodings, k=top_k, threshold=threshold
        )
        return [
            [
                _hit(n.row, n.score, self.store.metadata_at(n.row))
                for n in neighbors
            ]
            for neighbors in neighbor_lists
        ]

    def query_function(
        self,
        fn: DecompiledFunction,
        top_k: Optional[int] = 10,
        threshold: Optional[float] = None,
    ) -> List[SearchHit]:
        return self.query(self.encode_query(fn), top_k, threshold)


def _hit(row: int, score: float, meta: StoredFunction) -> SearchHit:
    return SearchHit(
        row=row,
        score=score,
        name=meta.name,
        binary_name=meta.binary_name,
        arch=meta.arch,
        callee_count=meta.callee_count,
        ast_size=meta.ast_size,
        image_id=meta.image_id,
    )
