"""Million-scale tiered ANN: int8 quantized sweep + IVF coarse partitions.

:class:`IvfPqIndex` is the third :class:`~repro.index.ann.AnnIndex`
backend (``ann_backend="ivf-pq"``).  It layers three tiers so a query
touches a small, controllable fraction of a million-row corpus:

1. **Coarse partitioning** -- corpus rows are assigned to k-means
   centroids (inverted lists).  A query ranks centroids by L2 distance
   and probes only the ``nprobe`` nearest lists, so the swept fraction
   is roughly ``nprobe / n_lists``.
2. **Quantized sweep** -- probed rows are scored against a symmetric
   per-dimension int8 code book (¼ the bytes of the float32 shards;
   optionally product-quantization codebooks at ``pq_m`` bytes/row).
   Codes are widened block-by-block and pushed through the same
   calibrated Siamese margin as the exact path, so the approximate
   ranking respects the model's actual similarity, not a proxy metric.
3. **Exact rerank** -- the best ``k * rerank`` survivors per query are
   handed back to :meth:`AnnIndex.top_k_batch`, which re-scores them
   against the float32 store through the union-vs-per-query cost gate
   and selects the final top-k with :func:`select_top_k`.

Like :class:`~repro.index.ann.LSHIndex`, the expensive construction
passes (quantization, k-means, assignment) serialise through
:meth:`IvfPqIndex.state_dict` into a crash-safe store artifact; a state
covering a prefix of the corpus is extended incrementally and
:attr:`IvfPqIndex.rows_quantized` counts exactly how many corpus rows
each construction actually (re)quantized -- 0 on a clean reopen.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.faults as faults
from repro.core.model import Asteria, FunctionEncoding
from repro.index.ann import (
    SCORE_BLOCK_ROWS,
    AnnIndex,
    select_top_k,
)
from repro.obs.metrics import (
    FRACTION_BUCKETS,
    SIZE_BUCKETS,
    MetricsRegistry,
)

from repro.utils.rng import RNG, derive_seed

#: IVF-PQ persisted-state schema version (bump on incompatible layout).
IVFPQ_STATE_VERSION = 1

#: Lloyd iterations for the coarse quantizer (and PQ codebooks).  The
#: partitions only gate candidate generation -- the exact rerank fixes
#: ranking -- so a handful of iterations is plenty.
KMEANS_ITERATIONS = 6

#: Hard ceiling on the k-means training sample: keeps centroid training
#: O(sample * n_lists) even for multi-million-row corpora.
KMEANS_SAMPLE_CAP = 200_000


def default_n_lists(n_rows: int) -> int:
    """``n_lists=0`` resolves to ~sqrt(n): 1M rows -> 1000 lists."""
    return max(1, min(4096, int(round(math.sqrt(max(0, n_rows))))))


def quantize_int8(
    matrix: np.ndarray, scales: Optional[np.ndarray] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Symmetric per-dimension int8: ``codes[i, d] ~= matrix[i, d] / scales[d]``.

    ``scales`` defaults to ``max|column| / 127`` (1.0 for all-zero
    columns so dequantization never divides by zero); pass existing
    scales to quantize appended rows consistently with a persisted code
    book.
    """
    matrix = np.asarray(matrix, dtype=np.float32)
    if scales is None:
        peak = (
            np.abs(matrix).max(axis=0)
            if matrix.shape[0]
            else np.zeros(matrix.shape[1], dtype=np.float32)
        )
        scales = np.where(peak > 0, peak / 127.0, 1.0).astype(np.float32)
    codes = np.clip(np.rint(matrix / scales), -127, 127).astype(np.int8)
    return codes, np.asarray(scales, dtype=np.float32)


def dequantize_int8(codes: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Widen int8 codes back to float32 (the sweep-tier GEMM operand)."""
    return codes.astype(np.float32) * scales


def _nearest_centroid(
    matrix: np.ndarray, centroids: np.ndarray
) -> np.ndarray:
    """Argmin-L2 centroid per row, chunked so the ``(rows, n_lists)``
    distance matrix never exceeds a scoring block."""
    centroids = np.asarray(centroids, dtype=np.float32)
    c_norm = (centroids * centroids).sum(axis=1)
    out = np.empty(matrix.shape[0], dtype=np.int32)
    for start in range(0, matrix.shape[0], SCORE_BLOCK_ROWS):
        block = np.asarray(
            matrix[start:start + SCORE_BLOCK_ROWS], dtype=np.float32
        )
        d2 = c_norm[None, :] - 2.0 * (block @ centroids.T)
        out[start:start + block.shape[0]] = np.argmin(d2, axis=1)
    return out


def kmeans_centroids(
    sample: np.ndarray,
    n_lists: int,
    seed: int,
    iterations: int = KMEANS_ITERATIONS,
) -> np.ndarray:
    """Deterministic Lloyd's k-means over a training sample.

    Empty clusters are re-seeded from random sample rows each round, so
    the quantizer always ends with ``n_lists`` live centroids (assuming
    the sample has that many rows).
    """
    sample = np.asarray(sample, dtype=np.float32)
    n = sample.shape[0]
    if n == 0:
        raise ValueError("cannot train centroids on an empty sample")
    n_lists = min(n_lists, n)
    gen = RNG(derive_seed(seed, "ivf-kmeans")).generator
    centroids = sample[gen.choice(n, size=n_lists, replace=False)].copy()
    for _ in range(iterations):
        assign = _nearest_centroid(sample, centroids)
        counts = np.bincount(assign, minlength=n_lists)
        sums = np.stack(
            [
                np.bincount(
                    assign, weights=sample[:, d], minlength=n_lists
                )
                for d in range(sample.shape[1])
            ],
            axis=1,
        )
        live = counts > 0
        centroids[live] = (
            sums[live] / counts[live, None]
        ).astype(np.float32)
        dead = np.flatnonzero(~live)
        if dead.size:
            centroids[dead] = sample[
                gen.choice(n, size=dead.size, replace=False)
            ]
    return centroids


class IvfPqIndex(AnnIndex):
    """IVF coarse partitioning over an int8 (or PQ) quantized corpus.

    Parameters
    ----------
    n_lists:
        Coarse partitions (0 = auto, ~sqrt(corpus rows)).
    nprobe:
        Inverted lists swept per query; the recall-vs-speed knob.
    rerank:
        Exact-rerank oversampling: the quantized tier forwards
        ``k * rerank`` candidates per query to the float32 rerank.
    pq_m:
        0 keeps plain per-dimension int8 codes (dim bytes/row).  m > 0
        trains m product-quantization codebooks of 256 centroids each
        (m bytes/row); dim must divide evenly by m.
    state:
        A ``(params, arrays)`` pair from :meth:`state_dict`: matching
        state skips quantization/k-means entirely; a prefix state
        quantizes only the appended rows.
    """

    def __init__(
        self,
        model: Asteria,
        vectors,
        callee_counts: Optional[np.ndarray] = None,
        calibrate: bool = True,
        n_lists: int = 0,
        nprobe: int = 8,
        rerank: int = 8,
        pq_m: int = 0,
        seed: int = 0,
        state: Optional[Tuple[Dict, Dict[str, np.ndarray]]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(model, vectors, callee_counts, calibrate, registry)
        # chaos hook shared with the LSH backend: lets tests fail ANN
        # construction to exercise the search layer's exact fallback
        faults.inject("ann.build")
        n = len(self)
        dim = int(self.vectors.shape[1])
        if nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        if rerank <= 0:
            raise ValueError(f"rerank must be positive, got {rerank}")
        if pq_m < 0:
            raise ValueError(f"pq_m must be >= 0, got {pq_m}")
        if pq_m and dim % pq_m != 0:
            raise ValueError(
                f"pq_m={pq_m} must divide the embedding dim {dim}"
            )
        #: auto list count (n_lists=0) resolves from the corpus size,
        #: but a persisted state's partitioning wins over re-deriving it
        #: -- otherwise growing past a sqrt boundary would discard the
        #: state and re-quantize everything instead of extending it
        self._auto_lists = not n_lists
        self.n_lists = int(n_lists) if n_lists else default_n_lists(n)
        self.n_lists = max(1, min(self.n_lists, max(1, n)))
        self.nprobe = int(nprobe)
        self.oversample = int(rerank)  # default exact-rerank depth
        self.pq_m = int(pq_m)
        self.seed = int(seed)
        #: corpus rows this construction actually quantized+assigned
        #: (instrumentation: a persisted-state reopen of an unchanged
        #: corpus reports 0)
        self.rows_quantized = 0
        self.loaded_from_state = False
        if state is not None and self._state_matches(state[0]):
            self.n_lists = int(state[0]["n_lists"])
            self._load_arrays(state[1])
            self.loaded_from_state = True
            if self._assignments.shape[0] < n:
                self._extend(self._assignments.shape[0])
        else:
            self._build()
        self._lists = self._lists_from_assignments()

    # -- construction ------------------------------------------------------

    def _build(self) -> None:
        n = len(self)
        dim = int(self.vectors.shape[1])
        if n == 0:
            self._scales = np.ones(dim, dtype=np.float32)
            self._codes = np.zeros((0, dim), dtype=np.int8)
            self._centroids = np.zeros((self.n_lists, dim), np.float32)
            self._assignments = np.zeros(0, dtype=np.int32)
            self._pq_codes = np.zeros((0, self.pq_m), dtype=np.uint8)
            self._pq_codebooks = self._empty_codebooks(dim)
            return
        # pass 1: per-dimension dynamic range for the symmetric scales
        peak = np.zeros(dim, dtype=np.float32)
        for _start, block in self.vectors.iter_blocks():
            peak = np.maximum(
                peak, np.abs(np.asarray(block, np.float32)).max(axis=0)
            )
        self._scales = np.where(peak > 0, peak / 127.0, 1.0).astype(
            np.float32
        )
        # coarse quantizer trains on a bounded uniform sample
        gen = RNG(derive_seed(self.seed, "ivf-sample")).generator
        sample_size = min(
            n, max(4096, 40 * self.n_lists), KMEANS_SAMPLE_CAP
        )
        sample_rows = np.sort(
            gen.choice(n, size=sample_size, replace=False)
        )
        sample = np.asarray(self.vectors.take(sample_rows), np.float32)
        self._centroids = kmeans_centroids(
            sample, self.n_lists, self.seed
        )
        self.n_lists = self._centroids.shape[0]
        if self.pq_m:
            self._train_pq(sample)
        # pass 2: quantize + assign every row, block by block
        self._codes = np.empty(
            (n if not self.pq_m else 0, dim), dtype=np.int8
        )
        self._pq_codes = np.empty(
            (n if self.pq_m else 0, self.pq_m), dtype=np.uint8
        )
        self._assignments = np.empty(n, dtype=np.int32)
        for start, block in self.vectors.iter_blocks():
            stop = start + block.shape[0]
            block32 = np.asarray(block, dtype=np.float32)
            if self.pq_m:
                self._pq_codes[start:stop] = self._pq_encode(block32)
            else:
                self._codes[start:stop], _ = quantize_int8(
                    block32, self._scales
                )
            self._assignments[start:stop] = _nearest_centroid(
                block32, self._centroids
            )
        self.rows_quantized = n

    def _extend(self, done: int) -> None:
        """Quantize + assign corpus rows past ``done`` (appended since
        the state was persisted), reusing the stored scales/centroids."""
        n = len(self)
        dim = int(self.vectors.shape[1])
        fresh_codes = np.empty(
            (n - done if not self.pq_m else 0, dim), dtype=np.int8
        )
        fresh_pq = np.empty(
            (n - done if self.pq_m else 0, self.pq_m), dtype=np.uint8
        )
        fresh_assign = np.empty(n - done, dtype=np.int32)
        for start, block in self.vectors.iter_blocks():
            stop = start + block.shape[0]
            if stop <= done:
                continue
            lo = max(start, done)
            rows = np.asarray(block[lo - start:], dtype=np.float32)
            if self.pq_m:
                fresh_pq[lo - done:stop - done] = self._pq_encode(rows)
            else:
                fresh_codes[lo - done:stop - done], _ = quantize_int8(
                    rows, self._scales
                )
            fresh_assign[lo - done:stop - done] = _nearest_centroid(
                rows, self._centroids
            )
        if self.pq_m:
            self._pq_codes = np.concatenate([self._pq_codes, fresh_pq])
        else:
            self._codes = np.concatenate([self._codes, fresh_codes])
        self._assignments = np.concatenate(
            [self._assignments, fresh_assign]
        )
        self.rows_quantized += n - done

    def _lists_from_assignments(self) -> List[np.ndarray]:
        """Inverted lists, each ascending (stable sort of an
        already-ascending row order)."""
        order = np.argsort(self._assignments, kind="stable")
        bounds = np.searchsorted(
            self._assignments[order], np.arange(self.n_lists + 1)
        )
        return [
            order[bounds[i]:bounds[i + 1]].astype(np.int64)
            for i in range(self.n_lists)
        ]

    # -- product quantization ----------------------------------------------

    def _sub_dim(self, dim: int) -> int:
        return dim // self.pq_m if self.pq_m else 0

    def _empty_codebooks(self, dim: int) -> np.ndarray:
        return np.zeros(
            (self.pq_m, 256, self._sub_dim(dim)), dtype=np.float32
        )

    def _train_pq(self, sample: np.ndarray) -> None:
        dim = sample.shape[1]
        sub = self._sub_dim(dim)
        books = np.zeros((self.pq_m, 256, sub), dtype=np.float32)
        for s in range(self.pq_m):
            piece = sample[:, s * sub:(s + 1) * sub]
            trained = kmeans_centroids(
                piece, min(256, piece.shape[0]),
                derive_seed(self.seed, "pq-book", s),
            )
            books[s, : trained.shape[0]] = trained
        self._pq_codebooks = books

    def _pq_encode(self, block: np.ndarray) -> np.ndarray:
        sub = self._sub_dim(block.shape[1])
        codes = np.empty((block.shape[0], self.pq_m), dtype=np.uint8)
        for s in range(self.pq_m):
            codes[:, s] = _nearest_centroid(
                block[:, s * sub:(s + 1) * sub], self._pq_codebooks[s]
            ).astype(np.uint8)
        return codes

    # -- quantized scoring --------------------------------------------------

    def _approx_block(self, rows: np.ndarray) -> np.ndarray:
        """Float32 reconstruction of ``rows`` from the resident codes."""
        if self.pq_m:
            sub = self._pq_codebooks.shape[2]
            out = np.empty(
                (rows.shape[0], self.pq_m * sub), dtype=np.float32
            )
            for s in range(self.pq_m):
                out[:, s * sub:(s + 1) * sub] = self._pq_codebooks[s][
                    self._pq_codes[rows, s]
                ]
            return out
        return dequantize_int8(self._codes[rows], self._scales)

    def _approx_scores(
        self, queries: Sequence[FunctionEncoding], rows: np.ndarray
    ) -> np.ndarray:
        """Calibrated Siamese scores against the *quantized* corpus.

        Same margin computation as the exact tier, fed with block-wise
        dequantized codes -- so the candidate ranking already reflects
        calibration and head weights, and rerank only has to undo the
        quantization error.
        """
        out = np.empty((len(queries), rows.shape[0]))
        calibrate = self.calibrate and self.callee_counts is not None
        for start in range(0, rows.shape[0], SCORE_BLOCK_ROWS):
            chunk = rows[start:start + SCORE_BLOCK_ROWS]
            counts = (
                None if self.callee_counts is None
                else self.callee_counts[chunk]
            )
            out[:, start:start + chunk.shape[0]] = (
                self.model.similarity_matrix(
                    queries, self._approx_block(chunk), counts,
                    calibrate=calibrate,
                )
            )
        return out

    # -- candidate generation ----------------------------------------------

    def candidate_rows(
        self,
        query_vector: np.ndarray,
        n: Optional[int],
        queries: Optional[Sequence[FunctionEncoding]] = None,
    ) -> np.ndarray:
        return self.candidate_rows_batch(
            np.asarray(query_vector)[None, :], n, queries
        )[0]

    def candidate_rows_batch(
        self,
        query_matrix: np.ndarray,
        n: Optional[int],
        queries: Optional[Sequence[FunctionEncoding]] = None,
    ) -> List[Optional[np.ndarray]]:
        """Probe the ``nprobe`` nearest inverted lists per query, rank
        the probed rows by quantized score, return the top-``n`` rows
        (ascending) for exact rerank."""
        total_rows = len(self)
        empty = np.zeros(0, dtype=np.int64)
        if total_rows == 0:
            return [empty for _ in range(query_matrix.shape[0])]
        q32 = np.asarray(query_matrix, dtype=np.float32)
        c_norm = (self._centroids * self._centroids).sum(axis=1)
        d2 = c_norm[None, :] - 2.0 * (q32 @ self._centroids.T)
        nprobe = min(self.nprobe, self.n_lists)
        probe = np.argsort(d2, axis=1, kind="stable")[:, :nprobe]
        gathered: List[np.ndarray] = []
        for i in range(q32.shape[0]):
            lists = [self._lists[c] for c in probe[i]]
            rows = (
                np.sort(np.concatenate(lists)) if lists else empty
            )
            gathered.append(rows)
        if queries is None:
            queries = [
                FunctionEncoding(
                    name=f"q{i}", arch="", binary_name="",
                    vector=np.asarray(query_matrix[i], np.float64),
                    callee_count=0,
                )
                for i in range(query_matrix.shape[0])
            ]
        n_queries = len(gathered)
        total = sum(rows.size for rows in gathered)
        union = (
            np.unique(np.concatenate(gathered)) if total else None
        )
        if union is None:
            picked = [empty for _ in gathered]
        elif n_queries * union.size <= 2 * total:
            # heavily-overlapping probes: quantize-score the union once
            scores = self._approx_scores(queries, union)
            picked = [
                self._pick(
                    scores[i, np.searchsorted(union, rows)], rows, n
                )
                for i, rows in enumerate(gathered)
            ]
        else:
            picked = [
                self._pick(
                    self._approx_scores([queries[i]], rows)[0], rows, n
                )
                if rows.size else empty
                for i, rows in enumerate(gathered)
            ]
        self._observe_sweep(gathered, picked, total_rows)
        return picked

    def _pick(
        self, scores: np.ndarray, rows: np.ndarray, n: Optional[int]
    ) -> np.ndarray:
        wanted = rows.size if n is None else min(n, rows.size)
        top = select_top_k(scores, rows, wanted)
        return np.sort(rows[top])

    def _observe_sweep(
        self,
        gathered: List[np.ndarray],
        picked: List[np.ndarray],
        total_rows: int,
    ) -> None:
        if self.registry is None or not total_rows:
            return
        swept = self.registry.histogram(
            "repro_ann_swept_fraction",
            "Fraction of the corpus swept by the quantized tier "
            "per query",
            buckets=FRACTION_BUCKETS,
        )
        depth = self.registry.histogram(
            "repro_ann_rerank_depth",
            "Candidate rows surviving to the float32 exact rerank "
            "per query",
            buckets=SIZE_BUCKETS,
        )
        for rows in gathered:
            swept.observe(rows.size / total_rows)
        for rows in picked:
            depth.observe(rows.size)

    # -- persisted state ---------------------------------------------------

    @property
    def rows_projected(self) -> int:
        """Alias so stats/persist logic treats IVF-PQ like LSH: rows of
        construction work this instance actually performed."""
        return self.rows_quantized

    @property
    def resident_nbytes(self) -> int:
        """Bytes held resident by the quantized tier (codes, lists,
        centroids) -- the number the bytes/vector floor measures."""
        arrays = [
            self._scales, self._centroids, self._assignments,
            self._pq_codes if self.pq_m else self._codes,
        ]
        if self.pq_m:
            arrays.append(self._pq_codebooks)
        return int(sum(a.nbytes for a in arrays))

    def _state_matches(self, params: Dict) -> bool:
        return (
            params.get("kind") == "ivf-pq"
            and params.get("version") == IVFPQ_STATE_VERSION
            and int(params.get("dim", -1)) == self.vectors.shape[1]
            and (
                self._auto_lists
                or int(params.get("n_lists", -1)) == self.n_lists
            )
            and int(params.get("n_lists", -1)) >= 1
            and int(params.get("pq_m", -1)) == self.pq_m
            and int(params.get("seed", -1)) == self.seed
            and int(params.get("n_rows", -1)) <= len(self)
        )

    def _load_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        dim = int(self.vectors.shape[1])
        self._scales = np.asarray(arrays["scales"], dtype=np.float32)
        self._centroids = np.asarray(
            arrays["centroids"], dtype=np.float32
        )
        self._assignments = np.asarray(
            arrays["assignments"], dtype=np.int32
        )
        if self.pq_m:
            self._codes = np.zeros((0, dim), dtype=np.int8)
            self._pq_codes = np.asarray(
                arrays["pq_codes"], dtype=np.uint8
            )
            self._pq_codebooks = np.asarray(
                arrays["pq_codebooks"], dtype=np.float32
            )
        else:
            self._codes = np.asarray(arrays["codes"], dtype=np.int8)
            self._pq_codes = np.zeros((0, 0), dtype=np.uint8)
            self._pq_codebooks = self._empty_codebooks(dim)

    def state_dict(self) -> Tuple[Dict, Dict[str, np.ndarray]]:
        """``(params, arrays)`` serialisable into the store manifest.

        ``nprobe``/``rerank`` are deliberately absent: they are
        query-time knobs, so retuning them reuses the persisted codes.
        """
        params = {
            "kind": "ivf-pq",
            "version": IVFPQ_STATE_VERSION,
            "dim": int(self.vectors.shape[1]),
            "n_lists": self.n_lists,
            "pq_m": self.pq_m,
            "seed": self.seed,
            "n_rows": len(self),
        }
        arrays: Dict[str, np.ndarray] = {
            "scales": self._scales,
            "centroids": self._centroids,
            "assignments": self._assignments,
        }
        if self.pq_m:
            arrays["pq_codes"] = self._pq_codes
            arrays["pq_codebooks"] = self._pq_codebooks
        else:
            arrays["codes"] = self._codes
        return params, arrays
