"""Persistent embedding index + top-k ANN search.

The corpus-scale answer to the paper's §V workload: encode every corpus
function once into a durable sharded store (:mod:`repro.index.store`),
then answer similarity queries online through an approximate or exact
top-k index (:mod:`repro.index.ann`) wrapped in a query service
(:mod:`repro.index.search`).
"""

from repro.index.ann import (
    AnnIndex,
    BruteForceIndex,
    LSHIndex,
    Neighbor,
    make_index,
    select_top_k,
)
from repro.index.search import IngestStats, SearchHit, SearchService
from repro.index.store import (
    EmbeddingStore,
    ShardedMatrix,
    StoreError,
    StoredFunction,
)

__all__ = [
    "AnnIndex",
    "BruteForceIndex",
    "LSHIndex",
    "Neighbor",
    "make_index",
    "select_top_k",
    "IngestStats",
    "SearchHit",
    "SearchService",
    "EmbeddingStore",
    "ShardedMatrix",
    "StoreError",
    "StoredFunction",
]
