"""Persistent embedding index + top-k ANN search.

The corpus-scale answer to the paper's §V workload: encode every corpus
function once into a durable sharded store (:mod:`repro.index.store`),
then answer similarity queries online through an approximate or exact
top-k index (:mod:`repro.index.ann`) wrapped in a query service
(:mod:`repro.index.search`).
"""

from repro.index.ann import (
    AnnIndex,
    BruteForceIndex,
    LSHIndex,
    Neighbor,
    known_backends,
    make_index,
    select_top_k,
)
from repro.index.quant import IvfPqIndex
from repro.index.search import IngestStats, SearchHit, SearchService
from repro.index.store import (
    EmbeddingStore,
    ShardedMatrix,
    StoreError,
    StoredFunction,
)
from repro.index.synth import SynthSpec, synth_corpus, synth_queries

__all__ = [
    "AnnIndex",
    "BruteForceIndex",
    "IvfPqIndex",
    "LSHIndex",
    "Neighbor",
    "known_backends",
    "make_index",
    "select_top_k",
    "IngestStats",
    "SearchHit",
    "SearchService",
    "EmbeddingStore",
    "ShardedMatrix",
    "StoreError",
    "StoredFunction",
    "SynthSpec",
    "synth_corpus",
    "synth_queries",
]
