"""Persistent, sharded embedding store for function encodings.

The offline half of the paper's offline/online split (Fig. 10(b)/(c)):
every corpus function is encoded *once* and the resulting
:class:`~repro.core.model.FunctionEncoding` vectors -- plus the metadata
needed for calibration and reporting (function name, binary, architecture,
filtered callee count, AST size, owning firmware image) -- are serialised
to disk so later query sessions never re-encode the corpus.

Layout of a store directory::

    <root>/manifest.json         versioned manifest (dim, shard table, count)
    <root>/shard-00000.npz       vectors + metadata for rows [0, n0)
    <root>/shard-00001.npz       rows [n0, n0+n1), and so on

Shards reuse the :mod:`repro.nn.serialize` npz format: numeric columns are
arrays, string columns travel in the JSON ``meta`` block.  Shards are loaded
lazily on first access and cached, so opening a large store is O(manifest)
and a query touches only the shards it reads.  ``root=None`` gives an
ephemeral in-memory store with the same API (used by tests and by
single-process pipelines that do not need persistence).
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core.model import FunctionEncoding
from repro.nn.serialize import load_state, save_state
from repro.utils.logging import get_logger

_LOG = get_logger("index.store")

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1
DEFAULT_SHARD_SIZE = 1024


class StoreError(Exception):
    """Raised on malformed stores or incompatible writes."""


@dataclass(frozen=True)
class StoredFunction:
    """Metadata for one row of the store (everything but the vector)."""

    row: int
    name: str
    binary_name: str
    arch: str
    callee_count: int
    ast_size: int
    image_id: str = ""

    def encoding(self, vector: np.ndarray) -> FunctionEncoding:
        """Rebuild the original :class:`FunctionEncoding` for this row."""
        return FunctionEncoding(
            name=self.name,
            arch=self.arch,
            binary_name=self.binary_name,
            vector=vector,
            callee_count=self.callee_count,
            ast_size=self.ast_size,
        )


@dataclass
class _Shard:
    """In-memory form of one shard (column arrays + string columns)."""

    vectors: np.ndarray
    callee_counts: np.ndarray
    ast_sizes: np.ndarray
    names: List[str]
    binary_names: List[str]
    arches: List[str]
    image_ids: List[str]

    def __len__(self) -> int:
        return int(self.vectors.shape[0])


@dataclass
class _ShardInfo:
    name: str
    n_rows: int


@dataclass
class _PendingRow:
    encoding: FunctionEncoding
    image_id: str = ""


class EmbeddingStore:
    """Append-only sharded store of function encodings.

    Use :meth:`create` for a new store, :meth:`open` for an existing one,
    and :meth:`in_memory` for an ephemeral store.  Rows are buffered by
    :meth:`add` and become durable (and visible to readers) on
    :meth:`flush`, which cuts the buffer into fixed-size shards and rewrites
    the manifest last -- a crash mid-flush leaves the previous manifest
    intact and at worst an orphaned shard file.
    """

    def __init__(
        self,
        root: Optional[Path],
        dim: int,
        shard_size: int = DEFAULT_SHARD_SIZE,
        shards: Optional[List[_ShardInfo]] = None,
        meta: Optional[Dict] = None,
    ):
        if shard_size <= 0:
            raise StoreError(f"shard_size must be positive, got {shard_size}")
        self.root = Path(root) if root is not None else None
        self.dim = int(dim)
        self.shard_size = int(shard_size)
        self.meta = dict(meta or {})
        self._shards: List[_ShardInfo] = list(shards or [])
        self._cache: Dict[int, _Shard] = {}
        self._pending: List[_PendingRow] = []
        self._offsets: List[int] = []
        self._stacked: Optional[np.ndarray] = None
        self._stacked_counts: Optional[np.ndarray] = None
        self._rebuild_offsets()

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        root,
        dim: int,
        shard_size: int = DEFAULT_SHARD_SIZE,
        meta: Optional[Dict] = None,
    ) -> "EmbeddingStore":
        """Create a new store at ``root`` (which must be empty or absent)."""
        root = Path(root)
        if (root / MANIFEST_NAME).exists():
            raise StoreError(f"store already exists at {root}")
        root.mkdir(parents=True, exist_ok=True)
        store = cls(root, dim=dim, shard_size=shard_size, meta=meta)
        store._write_manifest()
        return store

    @classmethod
    def in_memory(
        cls, dim: int, shard_size: int = DEFAULT_SHARD_SIZE
    ) -> "EmbeddingStore":
        """An ephemeral store: same API, nothing touches disk."""
        return cls(None, dim=dim, shard_size=shard_size)

    @classmethod
    def open(cls, root) -> "EmbeddingStore":
        """Open an existing store for reading or appending."""
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise StoreError(
                f"unsupported store format_version {version!r} "
                f"(this reader supports {FORMAT_VERSION})"
            )
        shards = [
            _ShardInfo(name=entry["name"], n_rows=int(entry["n_rows"]))
            for entry in manifest["shards"]
        ]
        return cls(
            root,
            dim=int(manifest["dim"]),
            shard_size=int(manifest["shard_size"]),
            shards=shards,
            meta=manifest.get("meta", {}),
        )

    # -- writes ------------------------------------------------------------

    def add(self, encoding: FunctionEncoding, image_id: str = "") -> int:
        """Buffer one encoding; returns its (future) global row index."""
        vector = np.asarray(encoding.vector)
        if vector.shape != (self.dim,):
            raise StoreError(
                f"vector shape {vector.shape} does not match store dim "
                f"({self.dim},)"
            )
        self._pending.append(_PendingRow(encoding=encoding, image_id=image_id))
        return len(self) - 1

    def add_batch(
        self, encodings: Iterable[FunctionEncoding], image_id: str = ""
    ) -> int:
        """Buffer many encodings; returns the number added."""
        n = 0
        for encoding in encodings:
            self.add(encoding, image_id=image_id)
            n += 1
        return n

    def flush(self) -> int:
        """Persist buffered rows as new shards; returns rows written."""
        written = 0
        while self._pending:
            batch = self._pending[: self.shard_size]
            self._pending = self._pending[self.shard_size :]
            shard = _Shard(
                vectors=np.stack(
                    [np.asarray(row.encoding.vector) for row in batch]
                ),
                callee_counts=np.array(
                    [row.encoding.callee_count for row in batch], dtype=np.int64
                ),
                ast_sizes=np.array(
                    [row.encoding.ast_size for row in batch], dtype=np.int64
                ),
                names=[row.encoding.name for row in batch],
                binary_names=[row.encoding.binary_name for row in batch],
                arches=[row.encoding.arch for row in batch],
                image_ids=[row.image_id for row in batch],
            )
            index = len(self._shards)
            info = _ShardInfo(name=f"shard-{index:05d}.npz", n_rows=len(shard))
            if self.root is not None:
                self._write_shard(info, shard)
            self._shards.append(info)
            self._cache[index] = shard
            written += len(shard)
        if written:
            self._rebuild_offsets()
            self._stacked = None
            self._stacked_counts = None
            if self.root is not None:
                self._write_manifest()
        return written

    def _write_shard(self, info: _ShardInfo, shard: _Shard) -> None:
        save_state(
            self.root / info.name,
            {
                "vectors": shard.vectors,
                "callee_counts": shard.callee_counts,
                "ast_sizes": shard.ast_sizes,
            },
            meta={
                "names": shard.names,
                "binary_names": shard.binary_names,
                "arches": shard.arches,
                "image_ids": shard.image_ids,
            },
        )

    def _write_manifest(self) -> None:
        manifest = {
            "format_version": FORMAT_VERSION,
            "dim": self.dim,
            "shard_size": self.shard_size,
            "n_rows": len(self),
            "shards": [
                {"name": info.name, "n_rows": info.n_rows}
                for info in self._shards
            ],
            "meta": self.meta,
        }
        path = self.root / MANIFEST_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        tmp.replace(path)

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return (self._offsets[-1] if self._offsets else 0) + len(self._pending)

    @property
    def n_flushed(self) -> int:
        return self._offsets[-1] if self._offsets else 0

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def _rebuild_offsets(self) -> None:
        self._offsets = [0]
        for info in self._shards:
            self._offsets.append(self._offsets[-1] + info.n_rows)

    def _load_shard(self, index: int) -> _Shard:
        if index in self._cache:
            return self._cache[index]
        if self.root is None:
            raise StoreError(f"shard {index} missing from in-memory store")
        info = self._shards[index]
        state, meta = load_state(self.root / info.name)
        shard = _Shard(
            vectors=state["vectors"],
            callee_counts=state["callee_counts"],
            ast_sizes=state["ast_sizes"],
            names=list(meta["names"]),
            binary_names=list(meta["binary_names"]),
            arches=list(meta["arches"]),
            image_ids=list(meta["image_ids"]),
        )
        if shard.vectors.shape != (info.n_rows, self.dim):
            raise StoreError(
                f"shard {info.name} has shape {shard.vectors.shape}, "
                f"manifest says ({info.n_rows}, {self.dim})"
            )
        self._cache[index] = shard
        return shard

    def _locate(self, row: int) -> tuple:
        if not 0 <= row < self.n_flushed:
            raise IndexError(
                f"row {row} out of range ({self.n_flushed} flushed rows)"
            )
        shard_index = bisect_right(self._offsets, row) - 1
        return shard_index, row - self._offsets[shard_index]

    def metadata_at(self, row: int) -> StoredFunction:
        """Metadata for one flushed row."""
        shard_index, local = self._locate(row)
        shard = self._load_shard(shard_index)
        return StoredFunction(
            row=row,
            name=shard.names[local],
            binary_name=shard.binary_names[local],
            arch=shard.arches[local],
            callee_count=int(shard.callee_counts[local]),
            ast_size=int(shard.ast_sizes[local]),
            image_id=shard.image_ids[local],
        )

    def vector_at(self, row: int) -> np.ndarray:
        shard_index, local = self._locate(row)
        shard = self._load_shard(shard_index)
        return shard.vectors[local]

    def iter_metadata(self) -> Iterable[StoredFunction]:
        for row in range(self.n_flushed):
            yield self.metadata_at(row)

    def vectors(self) -> np.ndarray:
        """All flushed vectors stacked as one ``(n, dim)`` matrix (cached)."""
        if self._stacked is None:
            if self.n_flushed == 0:
                self._stacked = np.zeros((0, self.dim))
            else:
                self._stacked = np.concatenate(
                    [
                        self._load_shard(i).vectors
                        for i in range(len(self._shards))
                    ]
                )
        return self._stacked

    def callee_counts(self) -> np.ndarray:
        """All flushed callee counts as one length-``n`` int array (cached)."""
        if self._stacked_counts is None:
            if self.n_flushed == 0:
                self._stacked_counts = np.zeros(0, dtype=np.int64)
            else:
                self._stacked_counts = np.concatenate(
                    [
                        self._load_shard(i).callee_counts
                        for i in range(len(self._shards))
                    ]
                )
        return self._stacked_counts
