"""Persistent, sharded embedding store for function encodings.

The offline half of the paper's offline/online split (Fig. 10(b)/(c)):
every corpus function is encoded *once* and the resulting
:class:`~repro.core.model.FunctionEncoding` vectors -- plus the metadata
needed for calibration and reporting (function name, binary, architecture,
filtered callee count, AST size, owning firmware image) -- are serialised
to disk so later query sessions never re-encode the corpus.

Layout of a format-2 store directory::

    <root>/manifest.json           versioned manifest (dim, dtype, shard
                                   table, row count, persisted-ANN state)
    <root>/shard-00000.npy         raw vector matrix for rows [0, n0),
                                   opened with ``np.load(mmap_mode="r")``
    <root>/shard-00000.meta.npz    callee counts / AST sizes / string
                                   columns for the same rows
    <root>/ann-lsh.npz             optional persisted ANN state (LSH
                                   hyperplanes + signatures)

Vectors are stored in a configurable ``dtype`` (default float32 -- half
the bytes of the float64 the encoder emits, far below the noise floor of
the Siamese scores) and memory-mapped on read, so opening a store is
O(manifest) in corpus size and resident memory stays bounded by what
queries actually touch.  :meth:`EmbeddingStore.vectors` exposes the whole
corpus as a :class:`ShardedMatrix` -- a zero-copy row-concatenated view
over the per-shard maps that the ANN layer consumes block-by-block; no
full ``np.concatenate`` materialisation ever happens.

Format-1 stores (all-in-one ``shard-NNNNN.npz`` files, always float64)
are still readable: :meth:`EmbeddingStore.open` migrates them to format
2 in place when the directory is writable and falls back to an eager
read-compat load when it is not.  Metadata columns keep the
:mod:`repro.nn.serialize` npz format either way and are loaded lazily
per shard.  ``root=None`` gives an ephemeral in-memory store with the
same API (used by tests and by single-process pipelines that do not
need persistence).
"""

from __future__ import annotations

import json
import os
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

import repro.faults as faults
from repro.core.model import FunctionEncoding
from repro.nn.serialize import load_state, save_state
from repro.utils.fsio import atomic_write_text, commit_file, file_sha256
from repro.utils.logging import get_logger

_LOG = get_logger("index.store")

MANIFEST_NAME = "manifest.json"
ANN_STATE_NAME = "ann-lsh.npz"
QUARANTINE_DIR = "quarantine"
FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (1, 2)
DEFAULT_SHARD_SIZE = 1024
DEFAULT_DTYPE = "float32"
_DTYPES = ("float32", "float64")


class StoreError(Exception):
    """Raised on malformed stores or incompatible writes."""


def _check_dtype(dtype) -> np.dtype:
    name = np.dtype(dtype).name
    if name not in _DTYPES:
        raise StoreError(
            f"unsupported vector dtype {name!r} "
            f"(choose from {', '.join(_DTYPES)})"
        )
    return np.dtype(name)


class ShardedMatrix:
    """A read-only ``(n, dim)`` view over row-blocks that never copies.

    The blocks are the store's per-shard vector arrays (memory-maps for
    durable stores); the view concatenates them logically.  Consumers
    that can stream -- the ANN scorers -- iterate :meth:`iter_blocks`;
    consumers that need a handful of rows use :meth:`take` / indexing,
    which gathers only those rows.  ``np.asarray(view)`` still
    materialises the full matrix for compatibility, but nothing on the
    query path does that.
    """

    def __init__(self, dim: int, dtype, blocks: Optional[List] = None):
        self.dim = int(dim)
        self.dtype = np.dtype(dtype)
        self._blocks: List[np.ndarray] = []
        self._offsets: List[int] = [0]
        for block in blocks or []:
            self.append_block(block)

    def append_block(self, block: np.ndarray) -> None:
        """Extend the view in place (no reload/copy of prior blocks)."""
        if block.ndim != 2 or block.shape[1] != self.dim:
            raise StoreError(
                f"block shape {block.shape} does not fit view dim {self.dim}"
            )
        self._blocks.append(block)
        self._offsets.append(self._offsets[-1] + block.shape[0])

    def snapshot(self) -> "ShardedMatrix":
        """A fixed-length copy of the view sharing the same blocks.

        The store extends its cached view in place on flush; consumers
        that must stay self-consistent across store growth (an ANN index
        whose signatures/callee counts were taken at construction) hold
        a snapshot instead.  Blocks are immutable once flushed, so
        sharing them is free.
        """
        return ShardedMatrix(self.dim, self.dtype, self._blocks)

    def slice_rows(self, start: int, stop: int) -> "ShardedMatrix":
        """A zero-copy sub-view over rows ``[start, stop)``.

        Blocks fully inside the range are shared outright; boundary
        blocks contribute an ndarray/memmap slice (still no copy).  The
        serving pool hands each worker one of these so a disjoint shard
        range can be swept with the ordinary block-streaming scorers.
        """
        n = len(self)
        start = max(0, min(int(start), n))
        stop = max(start, min(int(stop), n))
        view = ShardedMatrix(self.dim, self.dtype)
        for first, block in self.iter_blocks():
            last = first + block.shape[0]
            if last <= start:
                continue
            if first >= stop:
                break
            lo = max(start, first) - first
            hi = min(stop, last) - first
            view.append_block(
                block if (lo == 0 and hi == block.shape[0])
                else block[lo:hi]
            )
        return view

    # -- shape protocol ----------------------------------------------------

    @property
    def shape(self) -> Tuple[int, int]:
        return (self._offsets[-1], self.dim)

    @property
    def ndim(self) -> int:
        return 2

    def __len__(self) -> int:
        return self._offsets[-1]

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    # -- reads -------------------------------------------------------------

    def iter_blocks(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(first_row, block)`` pairs in row order."""
        for i, block in enumerate(self._blocks):
            yield self._offsets[i], block

    def row(self, index: int) -> np.ndarray:
        if not 0 <= index < len(self):
            raise IndexError(f"row {index} out of range ({len(self)} rows)")
        block_i = bisect_right(self._offsets, index) - 1
        return self._blocks[block_i][index - self._offsets[block_i]]

    def take(self, rows) -> np.ndarray:
        """Gather ``rows`` (any order, duplicates allowed) into one array.

        Negative indices wrap like ndarray indexing; anything still out
        of range raises rather than returning uninitialised memory.
        """
        requested = np.asarray(rows, dtype=np.int64)
        n = len(self)
        rows = np.where(requested < 0, requested + n, requested)
        bad = (rows < 0) | (rows >= n)
        if bad.any():
            raise IndexError(
                f"row {int(requested[np.argmax(bad)])} out of range "
                f"({n} rows)"
            )
        out = np.empty((rows.size, self.dim), dtype=self.dtype)
        block_of = np.searchsorted(self._offsets, rows, side="right") - 1
        for i in range(len(self._blocks)):
            mask = block_of == i
            if mask.any():
                out[mask] = self._blocks[i][rows[mask] - self._offsets[i]]
        return out

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            return self.row(int(key))
        if isinstance(key, slice):
            return self.take(np.arange(*key.indices(len(self))))
        return self.take(key)

    def __array__(self, dtype=None, copy=None):
        out = (
            np.empty((0, self.dim), dtype=self.dtype)
            if not self._blocks
            else np.concatenate([np.asarray(b) for b in self._blocks])
        )
        return out if dtype is None else out.astype(dtype)

    # -- accounting --------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Logical size of the full matrix."""
        return len(self) * self.dim * self.dtype.itemsize

    @property
    def resident_nbytes(self) -> int:
        """Heap-allocated bytes: memory-mapped blocks count as zero."""
        return sum(
            0 if isinstance(block, np.memmap) else block.nbytes
            for block in self._blocks
        )

    @property
    def mmapped(self) -> bool:
        """Is any block a memory map (i.e. disk-backed, demand-paged)?"""
        return any(isinstance(block, np.memmap) for block in self._blocks)


@dataclass(frozen=True)
class StoredFunction:
    """Metadata for one row of the store (everything but the vector)."""

    row: int
    name: str
    binary_name: str
    arch: str
    callee_count: int
    ast_size: int
    image_id: str = ""

    def encoding(self, vector: np.ndarray) -> FunctionEncoding:
        """Rebuild the original :class:`FunctionEncoding` for this row."""
        return FunctionEncoding(
            name=self.name,
            arch=self.arch,
            binary_name=self.binary_name,
            vector=vector,
            callee_count=self.callee_count,
            ast_size=self.ast_size,
        )


@dataclass
class _ShardMeta:
    """In-memory metadata columns of one shard (vectors live elsewhere)."""

    callee_counts: np.ndarray
    ast_sizes: np.ndarray
    names: List[str]
    binary_names: List[str]
    arches: List[str]
    image_ids: List[str]

    def __len__(self) -> int:
        return int(self.callee_counts.shape[0])


@dataclass
class _ShardInfo:
    name: str
    n_rows: int
    #: ``{filename: sha256 hexdigest}`` for the shard's files; absent on
    #: stores written before checksums existed (and on migrated rows
    #: until their first rewrite) -- verification skips what it lacks.
    sha256: Optional[Dict[str, str]] = None


@dataclass
class _PendingRow:
    encoding: FunctionEncoding
    image_id: str = ""


class EmbeddingStore:
    """Append-only sharded store of function encodings.

    Use :meth:`create` for a new store, :meth:`open` for an existing one,
    and :meth:`in_memory` for an ephemeral store.  Rows are buffered by
    :meth:`add` and become durable (and visible to readers) on
    :meth:`flush`, which cuts the buffer into fixed-size shards, appends
    them to the cached :class:`ShardedMatrix` view incrementally (no
    re-stack of earlier shards), and rewrites the manifest last -- a
    crash mid-flush leaves the previous manifest intact and at worst an
    orphaned shard file.
    """

    def __init__(
        self,
        root: Optional[Path],
        dim: int,
        shard_size: int = DEFAULT_SHARD_SIZE,
        shards: Optional[List[_ShardInfo]] = None,
        meta: Optional[Dict] = None,
        dtype=DEFAULT_DTYPE,
        format_version: int = FORMAT_VERSION,
        ann: Optional[Dict] = None,
        quarantined: Optional[List[str]] = None,
    ):
        if shard_size <= 0:
            raise StoreError(f"shard_size must be positive, got {shard_size}")
        if format_version not in SUPPORTED_VERSIONS:
            raise StoreError(
                f"unsupported store format_version {format_version!r} "
                f"(this build supports {SUPPORTED_VERSIONS})"
            )
        self.root = Path(root) if root is not None else None
        self.dim = int(dim)
        self.shard_size = int(shard_size)
        self.format_version = int(format_version)
        self.dtype = (
            np.dtype("float64") if format_version == 1
            else _check_dtype(dtype)
        )
        self.meta = dict(meta or {})
        self.ann = dict(ann or {})
        #: Shard names moved aside by :meth:`_verify_and_recover` (this
        #: open or a previous one -- the list persists in the manifest).
        self.quarantined: List[str] = list(quarantined or [])
        self._shards: List[_ShardInfo] = list(shards or [])
        self._meta_cache: Dict[int, _ShardMeta] = {}
        self._pending: List[_PendingRow] = []
        self._offsets: List[int] = []
        # in-memory stores have no disk shards to rebuild a view from, so
        # their view exists up front and flush() feeds it directly
        self._vectors: Optional[ShardedMatrix] = (
            ShardedMatrix(self.dim, self.dtype) if root is None else None
        )
        self._count_blocks: List[np.ndarray] = []
        self._stacked_counts: Optional[np.ndarray] = None
        self._rebuild_offsets()

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        root,
        dim: int,
        shard_size: int = DEFAULT_SHARD_SIZE,
        meta: Optional[Dict] = None,
        dtype=DEFAULT_DTYPE,
        format_version: int = FORMAT_VERSION,
    ) -> "EmbeddingStore":
        """Create a new store at ``root`` (which must be empty or absent).

        ``format_version=1`` writes the legacy all-npz layout (float64,
        no memory-mapping) -- kept writable so migration stays covered by
        tests and CI.
        """
        root = Path(root)
        if (root / MANIFEST_NAME).exists():
            raise StoreError(f"store already exists at {root}")
        root.mkdir(parents=True, exist_ok=True)
        store = cls(
            root, dim=dim, shard_size=shard_size, meta=meta, dtype=dtype,
            format_version=format_version,
        )
        store._write_manifest()
        return store

    @classmethod
    def in_memory(
        cls,
        dim: int,
        shard_size: int = DEFAULT_SHARD_SIZE,
        dtype=DEFAULT_DTYPE,
    ) -> "EmbeddingStore":
        """An ephemeral store: same API, nothing touches disk."""
        return cls(None, dim=dim, shard_size=shard_size, dtype=dtype)

    @classmethod
    def open(
        cls, root, migrate: bool = True, verify: bool = True
    ) -> "EmbeddingStore":
        """Open an existing store for reading or appending.

        Format-1 stores are migrated to format 2 in place (raw ``.npy``
        vector shards + metadata companions) when ``migrate`` is true and
        the directory is writable; otherwise they are served read-compat
        with the old eager npz loads.

        With ``verify`` (the default) every shard file is checked for
        existence and -- when the manifest records checksums -- content
        integrity.  A torn or corrupt shard does not fail the open:
        :meth:`_verify_and_recover` quarantines it (and every later
        shard, since rows are positional) and the store serves the last
        consistent prefix with :attr:`degraded` set.
        """
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise StoreError(f"no manifest at {manifest_path}")
        manifest = json.loads(manifest_path.read_text())
        version = manifest.get("format_version")
        if version not in SUPPORTED_VERSIONS:
            raise StoreError(
                f"unsupported store format_version {version!r} "
                f"(this reader supports {SUPPORTED_VERSIONS})"
            )
        shards = [
            _ShardInfo(
                name=entry["name"],
                n_rows=int(entry["n_rows"]),
                sha256=entry.get("sha256"),
            )
            for entry in manifest["shards"]
        ]
        store = cls(
            root,
            dim=int(manifest["dim"]),
            shard_size=int(manifest["shard_size"]),
            shards=shards,
            meta=manifest.get("meta", {}),
            dtype=manifest.get("dtype", "float64"),
            format_version=version,
            ann=manifest.get("ann"),
            quarantined=manifest.get("quarantined"),
        )
        if version == 1 and migrate:
            store = store._migrated()
        if verify:
            store._verify_and_recover()
        return store

    def _migrated(self) -> "EmbeddingStore":
        """Rewrite this v1 store as v2 in place; fall back on failure.

        Any failure (unwritable directory, corrupt shard, ...) reverts
        to read-compat serving of the untouched v1 files; partially
        written v2 files are harmless leftovers.  The legacy ``.npz``
        shards are deleted only after the v2 manifest is durable, so a
        crash at any point leaves a readable store.
        """
        legacy = [info.name for info in self._shards]
        try:
            for info in self._shards:
                state, meta = load_state(self.root / info.name)
                base = Path(info.name).stem  # shard-NNNNN
                vectors = np.ascontiguousarray(
                    state["vectors"], dtype=self.dtype
                )
                self._save_vectors(self.root / f"{base}.npy", vectors)
                save_state(
                    self.root / f"{base}.meta.npz",
                    {
                        "callee_counts": state["callee_counts"],
                        "ast_sizes": state["ast_sizes"],
                    },
                    meta=meta,
                )
                info.name = base
                info.sha256 = {
                    f"{base}.npy": file_sha256(self.root / f"{base}.npy"),
                    f"{base}.meta.npz": file_sha256(
                        self.root / f"{base}.meta.npz"
                    ),
                }
            self.format_version = FORMAT_VERSION
            self._write_manifest()
        except Exception as exc:
            for info, name in zip(self._shards, legacy):
                info.name = name
            self.format_version = 1  # keep reads on the v1 file layout
            _LOG.warning(
                "cannot migrate v1 store at %s (%s); serving read-compat",
                self.root, exc,
            )
            return self
        for name in legacy:  # reclaim the doubled vector bytes
            try:
                (self.root / name).unlink()
            except OSError:
                pass
        _LOG.info(
            "migrated v1 store at %s to format %d (%d shards)",
            self.root, FORMAT_VERSION, len(self._shards),
        )
        return self

    # -- integrity ---------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True when recovery dropped shards: the store serves a
        consistent but incomplete prefix of the corpus."""
        return bool(self.quarantined)

    def _verify_and_recover(self) -> None:
        """Detect torn/corrupt shards and recover to a consistent prefix.

        Walks the manifest's shard table in row order checking that every
        file exists and (when the manifest records a checksum) that its
        content matches.  Rows are positional, so the first bad shard
        poisons every global row index after it: that shard *and all
        later ones* are moved to ``<root>/quarantine/`` for post-mortem,
        the in-memory tables are truncated to the surviving prefix, and
        the manifest is rewritten so the next open is clean.  The store
        keeps serving -- :attr:`degraded` (surfaced through engine stats
        and ``/healthz``) is the signal that rows are missing.
        """
        if self.root is None:
            return
        first_bad: Optional[int] = None
        reason = ""
        for i, info in enumerate(self._shards):
            for path in self._shard_paths(info):
                if not path.exists():
                    first_bad, reason = i, f"missing file {path.name}"
                    break
                expected = (info.sha256 or {}).get(path.name)
                if expected is not None and file_sha256(path) != expected:
                    first_bad, reason = (
                        i, f"checksum mismatch in {path.name}"
                    )
                    break
            if first_bad is not None:
                break
        if first_bad is None:
            return
        dropped = self._shards[first_bad:]
        self._shards = self._shards[:first_bad]
        self._rebuild_offsets()
        self._meta_cache = {
            k: v for k, v in self._meta_cache.items() if k < first_bad
        }
        self._vectors = None
        self._count_blocks = []
        self._stacked_counts = None
        quarantine = self.root / QUARANTINE_DIR
        for info in dropped:
            self.quarantined.append(info.name)
            for path in self._shard_paths(info):
                if not path.exists():
                    continue
                try:
                    quarantine.mkdir(parents=True, exist_ok=True)
                    path.replace(quarantine / path.name)
                except OSError:  # unwritable dir: serving still degrades
                    pass
        if self.ann and int(self.ann.get("n_rows", 0)) > self.n_flushed:
            self.ann = {}  # signatures cover rows that no longer exist
        _LOG.warning(
            "store at %s is degraded: %s; quarantined %d shard(s), "
            "serving %d rows",
            self.root, reason, len(dropped), self.n_flushed,
        )
        try:
            self._write_manifest()
        except OSError as exc:
            _LOG.warning(
                "cannot persist recovered manifest at %s: %s", self.root, exc
            )

    # -- writes ------------------------------------------------------------

    def add(self, encoding: FunctionEncoding, image_id: str = "") -> int:
        """Buffer one encoding; returns its (future) global row index."""
        vector = np.asarray(encoding.vector)
        if vector.shape != (self.dim,):
            raise StoreError(
                f"vector shape {vector.shape} does not match store dim "
                f"({self.dim},)"
            )
        self._pending.append(_PendingRow(encoding=encoding, image_id=image_id))
        return len(self) - 1

    def add_batch(
        self, encodings: Iterable[FunctionEncoding], image_id: str = ""
    ) -> int:
        """Buffer many encodings; returns the number added."""
        n = 0
        for encoding in encodings:
            self.add(encoding, image_id=image_id)
            n += 1
        return n

    def flush(self) -> int:
        """Persist buffered rows as new shards; returns rows written.

        The cached :meth:`vectors` / :meth:`callee_counts` views are
        extended with just the new shards -- earlier shards are never
        reloaded or re-stacked, so a flush costs O(new rows), not
        O(corpus), in both time and transient memory.
        """
        written = 0
        while self._pending:
            batch = self._pending[: self.shard_size]
            self._pending = self._pending[self.shard_size :]
            vectors = np.stack(
                [np.asarray(row.encoding.vector) for row in batch]
            ).astype(self.dtype, copy=False)
            shard_meta = _ShardMeta(
                callee_counts=np.array(
                    [row.encoding.callee_count for row in batch],
                    dtype=np.int64,
                ),
                ast_sizes=np.array(
                    [row.encoding.ast_size for row in batch], dtype=np.int64
                ),
                names=[row.encoding.name for row in batch],
                binary_names=[row.encoding.binary_name for row in batch],
                arches=[row.encoding.arch for row in batch],
                image_ids=[row.image_id for row in batch],
            )
            index = len(self._shards)
            base = f"shard-{index:05d}"
            name = f"{base}.npz" if self.format_version == 1 else base
            info = _ShardInfo(name=name, n_rows=len(shard_meta))
            if self.root is not None:
                self._write_shard(info, vectors, shard_meta)
                if self.format_version != 1:
                    # hand the view the on-disk map, not the heap copy
                    vectors = np.load(
                        self.root / f"{base}.npy", mmap_mode="r"
                    )
            self._shards.append(info)
            self._meta_cache[index] = shard_meta
            self._append_to_views(vectors, shard_meta.callee_counts)
            self._offsets.append(self._offsets[-1] + info.n_rows)
            written += len(shard_meta)
        if written:
            if self.root is not None:
                # crash window: new shards fully visible on disk but the
                # manifest (rewritten atomically below) still lists only
                # the previous generation -- reopen serves that prefix
                faults.inject("store.flush.pre_manifest")
                self._write_manifest()
        return written

    def append_rows(
        self,
        vectors: np.ndarray,
        callee_counts: np.ndarray,
        ast_sizes: Optional[np.ndarray] = None,
        names: Optional[List[str]] = None,
        binary_names: Optional[List[str]] = None,
        arches: Optional[List[str]] = None,
        image_ids: Optional[List[str]] = None,
        name_prefix: str = "fn",
    ) -> int:
        """Bulk-append pre-built rows, bypassing the per-row buffer.

        The corpus-synthesis path: a ``(n, dim)`` matrix plus metadata
        columns is cut straight into durable shards (same crash-safety
        ordering as :meth:`flush` -- shards first, manifest last), with
        no per-row :class:`FunctionEncoding` objects in between.  Any
        metadata column left ``None`` gets a cheap default (names are
        ``{name_prefix}_{row:08d}``).  Returns the rows written.
        """
        if self._pending:
            raise StoreError(
                "flush buffered rows before a bulk append_rows"
            )
        vectors = np.asarray(vectors)
        if vectors.ndim != 2 or vectors.shape[1] != self.dim:
            raise StoreError(
                f"vector matrix shape {vectors.shape} does not match "
                f"store dim {self.dim}"
            )
        n = vectors.shape[0]
        counts = np.asarray(callee_counts, dtype=np.int64)
        sizes = (
            np.zeros(n, dtype=np.int64) if ast_sizes is None
            else np.asarray(ast_sizes, dtype=np.int64)
        )
        for label, column in (
            ("callee_counts", counts), ("ast_sizes", sizes),
        ):
            if column.shape != (n,):
                raise StoreError(
                    f"{label} shape {column.shape} does not match "
                    f"{n} rows"
                )
        base_row = len(self)
        if names is None:
            names = [
                f"{name_prefix}_{base_row + i:08d}" for i in range(n)
            ]
        binary_names = binary_names or [""] * n
        arches = arches or [""] * n
        image_ids = image_ids or [""] * n
        written = 0
        for start in range(0, n, self.shard_size):
            stop = min(n, start + self.shard_size)
            batch = np.ascontiguousarray(
                vectors[start:stop], dtype=self.dtype
            )
            shard_meta = _ShardMeta(
                callee_counts=counts[start:stop],
                ast_sizes=sizes[start:stop],
                names=list(names[start:stop]),
                binary_names=list(binary_names[start:stop]),
                arches=list(arches[start:stop]),
                image_ids=list(image_ids[start:stop]),
            )
            index = len(self._shards)
            base = f"shard-{index:05d}"
            name = f"{base}.npz" if self.format_version == 1 else base
            info = _ShardInfo(name=name, n_rows=len(shard_meta))
            if self.root is not None:
                self._write_shard(info, batch, shard_meta)
                if self.format_version != 1:
                    batch = np.load(
                        self.root / f"{base}.npy", mmap_mode="r"
                    )
            self._shards.append(info)
            self._meta_cache[index] = shard_meta
            self._append_to_views(batch, shard_meta.callee_counts)
            self._offsets.append(self._offsets[-1] + info.n_rows)
            written += len(shard_meta)
        if written and self.root is not None:
            faults.inject("store.flush.pre_manifest")
            self._write_manifest()
        return written

    def _append_to_views(
        self, vectors: np.ndarray, counts: np.ndarray
    ) -> None:
        if self._vectors is not None:
            self._vectors.append_block(vectors)
        self._count_blocks.append(counts)
        self._stacked_counts = None  # re-concat lazily from blocks

    @staticmethod
    def _save_vectors(
        path: Path, vectors: np.ndarray, failpoint: Optional[str] = None
    ) -> None:
        """Write a raw ``.npy`` vector shard via temp→fsync→rename.

        ``np.save`` appends ``.npy`` to string paths lacking it, so the
        temp file is written through an open handle to keep its name.
        """
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            np.save(handle, vectors)
            handle.flush()
            os.fsync(handle.fileno())
        commit_file(tmp, path, failpoint=failpoint)

    def _shard_paths(self, info: _ShardInfo) -> List[Path]:
        """Every file that must be intact for this shard to be served."""
        if self.format_version == 1:
            return [self.root / info.name]
        return [
            self.root / f"{info.name}.npy",
            self.root / f"{info.name}.meta.npz",
        ]

    def _write_shard(
        self, info: _ShardInfo, vectors: np.ndarray, meta: _ShardMeta
    ) -> None:
        columns = {
            "callee_counts": meta.callee_counts,
            "ast_sizes": meta.ast_sizes,
        }
        strings = {
            "names": meta.names,
            "binary_names": meta.binary_names,
            "arches": meta.arches,
            "image_ids": meta.image_ids,
        }
        if self.format_version == 1:
            save_state(
                self.root / info.name,
                dict(columns, vectors=vectors.astype(np.float64)),
                meta=strings,
            )
            info.sha256 = {
                info.name: file_sha256(self.root / info.name)
            }
            return
        meta_path = self.root / f"{info.name}.meta.npz"
        save_state(meta_path, columns, meta=strings)
        vec_path = self.root / f"{info.name}.npy"
        # crash window: all shard bytes durable, vector file unpublished
        # and the manifest still describes the previous generation
        self._save_vectors(
            vec_path, vectors, failpoint="store.flush.pre_rename"
        )
        info.sha256 = {
            vec_path.name: file_sha256(vec_path),
            meta_path.name: file_sha256(meta_path),
        }

    def _write_manifest(self) -> None:
        manifest = {
            "format_version": self.format_version,
            "dim": self.dim,
            "dtype": self.dtype.name,
            "shard_size": self.shard_size,
            "n_rows": len(self),
            "shards": [
                {"name": info.name, "n_rows": info.n_rows}
                if info.sha256 is None
                else {
                    "name": info.name,
                    "n_rows": info.n_rows,
                    "sha256": info.sha256,
                }
                for info in self._shards
            ],
            "meta": self.meta,
        }
        if self.ann:
            manifest["ann"] = self.ann
        if self.quarantined:
            manifest["quarantined"] = self.quarantined
        atomic_write_text(
            self.root / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True),
            failpoint="store.manifest.pre_rename",
        )

    # -- persisted ANN state ----------------------------------------------

    def write_ann_state(
        self, params: Dict, arrays: Dict[str, np.ndarray]
    ) -> None:
        """Persist ANN state (e.g. LSH planes + signatures) alongside the
        shards and record its parameters (and checksum) in the manifest."""
        if self.root is None:
            raise StoreError("in-memory stores cannot persist ANN state")
        # one artifact per backend kind (ann-lsh.npz, ann-ivf-pq.npz, ...);
        # the manifest's ``file`` field names it, and readers of manifests
        # from before this field default to the legacy LSH name
        file_name = f"ann-{params.get('kind', 'lsh')}.npz"
        target = self.root / file_name
        # keep the temp name ending in .npz so save_state leaves it alone
        pending = target.with_name(
            target.name[: -len(".npz")] + ".pending.npz"
        )
        save_state(pending, arrays, meta=params)
        commit_file(pending, target, failpoint="ann.persist.pre_rename")
        self.ann = dict(
            params, file=file_name, sha256=file_sha256(target)
        )
        self._write_manifest()

    def read_ann_state(
        self,
    ) -> Optional[Tuple[Dict, Dict[str, np.ndarray]]]:
        """Load persisted ANN state, or ``None`` when absent/corrupt.

        ``None`` is always recoverable for the caller -- the ANN layer
        rebuilds from the (verified) vectors -- so any integrity doubt
        here resolves to a rebuild, never a crash or silent bad results.
        """
        if self.root is None or not self.ann:
            return None
        path = self.root / self.ann.get("file", ANN_STATE_NAME)
        if not path.exists():
            return None
        expected = self.ann.get("sha256")
        if expected is not None and file_sha256(path) != expected:
            _LOG.warning(
                "ignoring ANN state at %s: checksum mismatch "
                "(index will rebuild)", path,
            )
            return None
        try:
            arrays, params = load_state(path)
        except Exception as exc:  # a stale/corrupt file just means rebuild
            _LOG.warning("ignoring unreadable ANN state at %s: %s", path, exc)
            return None
        return params, arrays

    # -- reads -------------------------------------------------------------

    def __len__(self) -> int:
        return (self._offsets[-1] if self._offsets else 0) + len(self._pending)

    @property
    def n_flushed(self) -> int:
        return self._offsets[-1] if self._offsets else 0

    @property
    def n_shards(self) -> int:
        return len(self._shards)

    def shard_offsets(self) -> List[int]:
        """Cumulative flushed-row offsets: ``[0, n0, n0+n1, ..., n]``.

        The serving coordinator uses these to cut the corpus into
        disjoint shard-aligned worker ranges, so no shard's memory map
        is paged by two sweep workers.
        """
        return list(self._offsets) if self._offsets else [0]

    def _rebuild_offsets(self) -> None:
        self._offsets = [0]
        for info in self._shards:
            self._offsets.append(self._offsets[-1] + info.n_rows)

    def _shard_vectors(self, index: int) -> np.ndarray:
        """The vector block of one shard (a memory map for v2 stores)."""
        info = self._shards[index]
        if self.root is None:
            raise StoreError(f"shard {index} missing from in-memory store")
        if self.format_version == 1:
            state, _meta = load_state(self.root / info.name)
            vectors = state["vectors"]
        else:
            vectors = np.load(self.root / f"{info.name}.npy", mmap_mode="r")
        if vectors.shape != (info.n_rows, self.dim):
            raise StoreError(
                f"shard {info.name} has vector shape {vectors.shape}, "
                f"manifest says ({info.n_rows}, {self.dim})"
            )
        return vectors

    def _load_meta(self, index: int) -> _ShardMeta:
        if index in self._meta_cache:
            return self._meta_cache[index]
        if self.root is None:
            raise StoreError(f"shard {index} missing from in-memory store")
        info = self._shards[index]
        path = (
            self.root / info.name
            if self.format_version == 1
            else self.root / f"{info.name}.meta.npz"
        )
        state, meta = load_state(path)
        shard = _ShardMeta(
            callee_counts=state["callee_counts"],
            ast_sizes=state["ast_sizes"],
            names=list(meta["names"]),
            binary_names=list(meta["binary_names"]),
            arches=list(meta["arches"]),
            image_ids=list(meta["image_ids"]),
        )
        if len(shard) != info.n_rows:
            raise StoreError(
                f"shard {info.name} has {len(shard)} metadata rows, "
                f"manifest says {info.n_rows}"
            )
        self._meta_cache[index] = shard
        return shard

    def _locate(self, row: int) -> tuple:
        if not 0 <= row < self.n_flushed:
            raise IndexError(
                f"row {row} out of range ({self.n_flushed} flushed rows)"
            )
        shard_index = bisect_right(self._offsets, row) - 1
        return shard_index, row - self._offsets[shard_index]

    def metadata_at(self, row: int) -> StoredFunction:
        """Metadata for one flushed row."""
        shard_index, local = self._locate(row)
        shard = self._load_meta(shard_index)
        return StoredFunction(
            row=row,
            name=shard.names[local],
            binary_name=shard.binary_names[local],
            arch=shard.arches[local],
            callee_count=int(shard.callee_counts[local]),
            ast_size=int(shard.ast_sizes[local]),
            image_id=shard.image_ids[local],
        )

    def vector_at(self, row: int) -> np.ndarray:
        self._locate(row)  # range check
        return self.vectors().row(row)

    def iter_metadata(self) -> Iterable[StoredFunction]:
        for row in range(self.n_flushed):
            yield self.metadata_at(row)

    def vectors(self) -> ShardedMatrix:
        """All flushed vectors as one zero-copy ``(n, dim)`` view.

        Durable v2 shards enter the view as memory maps; opening the
        view therefore touches no vector data, and a query pages in only
        the shards it reads.  The view is cached and *extended* by
        :meth:`flush` -- it is never rebuilt from scratch.
        """
        if self._vectors is None:
            view = ShardedMatrix(self.dim, self.dtype)
            for i in range(len(self._shards)):
                view.append_block(self._shard_vectors(i))
            self._vectors = view
        return self._vectors

    def callee_counts(self) -> np.ndarray:
        """All flushed callee counts as one length-``n`` int array.

        Stacked lazily from per-shard blocks; a flush appends the new
        blocks instead of reloading every shard.
        """
        if len(self._count_blocks) != len(self._shards):
            # cold open: pull counts from the (lazily loaded) shard meta
            self._count_blocks = [
                self._load_meta(i).callee_counts
                for i in range(len(self._shards))
            ]
            self._stacked_counts = None
        if self._stacked_counts is None:
            self._stacked_counts = (
                np.concatenate(self._count_blocks)
                if self._count_blocks
                else np.zeros(0, dtype=np.int64)
            )
        return self._stacked_counts

    # -- accounting --------------------------------------------------------

    def memory_footprint(self) -> Dict:
        """Byte accounting for monitoring: what is resident vs. mapped.

        ``resident_bytes`` counts heap-allocated vector blocks (memory
        maps count as zero -- the kernel pages them in and out on
        demand) plus the stacked callee-count array; ``vector_bytes`` is
        the logical size of the full matrix in the store dtype.
        """
        view = self._vectors
        counts = self._stacked_counts
        resident = (view.resident_nbytes if view is not None else 0) + (
            counts.nbytes if counts is not None else 0
        )
        return {
            "n_rows": self.n_flushed,
            "dtype": self.dtype.name,
            "mmap": bool(view.mmapped) if view is not None else False,
            "vector_bytes": self.n_flushed * self.dim * self.dtype.itemsize,
            "resident_bytes": int(resident),
        }
