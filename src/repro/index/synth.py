"""Synthetic million-function corpora with known ground-truth neighbors.

The paper's target workload is firmware-scale vulnerability search, but
encoding a million real functions through the Tree-LSTM would take days.
This module mass-produces embedding corpora whose *geometry* matches
what the encoder emits -- tight clusters of near-duplicate functions
(the same source compiled for different architectures / optimization
levels) floating in a sparse background -- without running the encoder
per row:

* **Seed set** (optional): a handful of packages from the
  :mod:`repro.lang` program generator are compiled with
  :func:`repro.compiler.pipeline.compile_package` and encoded through
  the real staged pipeline (decompile -> preprocess -> Tree-LSTM, with
  the artifact cache warm for repeat runs).  Their embeddings anchor the
  first cluster centers at realistic positions.
* **Bulk**: the remaining centers are drawn from a deterministic RNG
  stream, and every corpus row is ``center[cluster] + noise`` -- a
  parameterized perturbation, so each cluster is a set of known
  ground-truth neighbors.  Rows are laid out cluster-contiguously
  (:func:`cluster_rows` gives the exact row range of a cluster) and
  appended in bulk through :meth:`EmbeddingStore.append_rows`.

Queries regenerate from the same spec (:func:`synth_queries`): a query
for cluster ``c`` is a *fresh* perturbation of the same center with the
cluster's callee count, so its true top-k neighbors are the cluster's
rows -- recall is measurable at any corpus size without storing a
ground-truth file.

:func:`distance_head_model` builds the model these corpora are scored
with: an :class:`~repro.core.model.Asteria` whose Siamese head is set to
the weight shape a converged classifier learns (similarity strictly
decreasing in the L1 embedding distance).  A randomly initialised,
untrained head is *not* distance-monotone, which would make
"recall vs the exact sweep" measure weight noise instead of index
quality.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.index.store import EmbeddingStore
from repro.utils.logging import get_logger
from repro.utils.rng import RNG, derive_seed

_LOG = get_logger("index.synth")

#: Rows generated (and appended) per chunk; bounds transient memory at
#: ``GEN_CHUNK_ROWS x dim`` floats regardless of corpus size.
GEN_CHUNK_ROWS = 65536

#: Cluster centers are drawn at this scale so inter-cluster distances
#: dwarf the intra-cluster perturbation -- the regime real same-source
#: function groups occupy.
CENTER_SCALE = 2.0

#: Margin slope of :func:`distance_head_model`: similarity =
#: ``sigmoid(-alpha * L1(q, v))``, chosen so same-cluster pairs score
#: well above 0.1 and cross-cluster pairs fall to ~0 without the
#: sigmoid saturating inside a cluster.
DISTANCE_HEAD_ALPHA = 0.05


@dataclass(frozen=True)
class SynthSpec:
    """Deterministic recipe for one synthetic corpus.

    Everything derives from ``seed``: the same spec regenerates the
    same centers, counts and queries on any host.
    """

    n_functions: int
    dim: int = 64
    cluster_size: int = 16
    noise: float = 0.15
    seed: int = 0
    count_mod: int = 64

    @property
    def n_clusters(self) -> int:
        return -(-self.n_functions // self.cluster_size)  # ceil div

    def __post_init__(self):
        if self.n_functions <= 0:
            raise ValueError("n_functions must be positive")
        if self.dim <= 0:
            raise ValueError("dim must be positive")
        if self.cluster_size <= 0:
            raise ValueError("cluster_size must be positive")
        if self.noise < 0:
            raise ValueError("noise must be >= 0")


@dataclass
class SynthReport:
    """What one corpus synthesis pass produced."""

    n_functions: int = 0
    n_clusters: int = 0
    n_seed_centers: int = 0
    elapsed_s: float = 0.0
    chunks: int = 0
    seed_stats: dict = field(default_factory=dict)


def distance_head_model(
    dim: int, alpha: float = DISTANCE_HEAD_ALPHA
) -> Asteria:
    """An Asteria model whose similarity is monotone in L1 distance.

    The classification head's converged shape: every ``|v1 - v2|``
    feature votes "dissimilar" with weight ``alpha`` and the product
    features are ignored, giving ``similarity = sigmoid(-alpha *
    ||q - v||_1)``.  Synthetic-corpus benchmarks score with this head so
    recall measures the index, not an untrained head's weight noise.
    """
    model = Asteria(AsteriaConfig(hidden_dim=dim))
    w = np.zeros((2 * dim, 2))
    w[:dim, 0] = alpha
    model.siamese.w.data[:] = w
    return model


# -- deterministic corpus pieces -------------------------------------------


def cluster_centers(
    spec: SynthSpec, seeds: Optional[np.ndarray] = None
) -> np.ndarray:
    """The ``(n_clusters, dim)`` center matrix, derived from the seed.

    ``seeds`` (vectors from real pipeline encodings) replace the first
    ``len(seeds)`` synthetic centers, anchoring those clusters at
    positions the actual encoder emits.
    """
    gen = RNG(derive_seed(spec.seed, "synth-centers")).generator
    centers = gen.normal(size=(spec.n_clusters, spec.dim)) * CENTER_SCALE
    if seeds is not None and len(seeds):
        seeds = np.asarray(seeds, dtype=np.float64)
        if seeds.shape[1] != spec.dim:
            raise ValueError(
                f"seed vectors have dim {seeds.shape[1]}, spec says "
                f"{spec.dim}"
            )
        take = min(seeds.shape[0], spec.n_clusters)
        centers[:take] = seeds[:take]
    return centers


def cluster_counts(spec: SynthSpec) -> np.ndarray:
    """Per-cluster callee counts (shared by members *and* queries, so
    score calibration reinforces cluster membership)."""
    gen = RNG(derive_seed(spec.seed, "synth-counts")).generator
    return gen.integers(
        0, spec.count_mod, size=spec.n_clusters, dtype=np.int64
    )


def cluster_rows(spec: SynthSpec, cluster: int) -> tuple:
    """Ground truth: the ``[start, stop)`` corpus rows of one cluster."""
    if not 0 <= cluster < spec.n_clusters:
        raise IndexError(
            f"cluster {cluster} out of range ({spec.n_clusters} clusters)"
        )
    start = cluster * spec.cluster_size
    return start, min(start + spec.cluster_size, spec.n_functions)


def _chunk_vectors(
    spec: SynthSpec, centers: np.ndarray, start: int, stop: int
) -> np.ndarray:
    """Rows ``[start, stop)``: per-row cluster center plus seeded noise
    (the noise stream is keyed by the chunk's first row, so a fixed
    chunking regenerates identical bytes)."""
    cids = np.arange(start, stop) // spec.cluster_size
    gen = RNG(derive_seed(spec.seed, "synth-noise", start)).generator
    noise = gen.normal(size=(stop - start, spec.dim)) * spec.noise
    return centers[cids] + noise


# -- the generator ---------------------------------------------------------


def synth_corpus(
    store: EmbeddingStore,
    spec: SynthSpec,
    seeds: Optional[Sequence[FunctionEncoding]] = None,
    chunk_rows: int = GEN_CHUNK_ROWS,
) -> SynthReport:
    """Fill ``store`` with ``spec.n_functions`` synthetic embeddings.

    Generation streams in ``chunk_rows`` batches through
    :meth:`EmbeddingStore.append_rows`, so peak memory is one chunk
    regardless of corpus size.  The store must match ``spec.dim`` and
    start empty (appending to a non-empty store would shift the
    ground-truth row layout).
    """
    if store.dim != spec.dim:
        raise ValueError(
            f"store dim {store.dim} does not match spec dim {spec.dim}"
        )
    if len(store):
        raise ValueError(
            "synth_corpus requires an empty store (cluster row ranges "
            "are absolute)"
        )
    started = time.perf_counter()
    seed_vectors = (
        np.stack([np.asarray(e.vector) for e in seeds])
        if seeds else None
    )
    centers = cluster_centers(spec, seed_vectors)
    counts = cluster_counts(spec)
    report = SynthReport(
        n_functions=spec.n_functions,
        n_clusters=spec.n_clusters,
        n_seed_centers=0 if seed_vectors is None else min(
            seed_vectors.shape[0], spec.n_clusters
        ),
    )
    for start in range(0, spec.n_functions, chunk_rows):
        stop = min(spec.n_functions, start + chunk_rows)
        cids = np.arange(start, stop) // spec.cluster_size
        store.append_rows(
            _chunk_vectors(spec, centers, start, stop),
            counts[cids],
            ast_sizes=np.full(stop - start, spec.cluster_size, np.int64),
            names=[f"synth_{row:08d}" for row in range(start, stop)],
            binary_names=[f"synthbin_{c:07d}" for c in cids],
            arches=["synth"] * (stop - start),
            image_ids=[f"synthimg_{c >> 10:05d}" for c in cids],
        )
        report.chunks += 1
    report.elapsed_s = time.perf_counter() - started
    _LOG.info(
        "synthesized %d functions in %d clusters (%d seeded) in %.1fs",
        report.n_functions, report.n_clusters, report.n_seed_centers,
        report.elapsed_s,
    )
    return report


def synth_queries(
    spec: SynthSpec,
    clusters: Sequence[int],
    seeds: Optional[Sequence[FunctionEncoding]] = None,
) -> List[FunctionEncoding]:
    """Fresh query encodings targeting the given clusters.

    Each query is a *new* perturbation of its cluster's center (drawn
    from a query-only RNG stream, so it is never identical to a stored
    row) with the cluster's callee count -- its ground-truth neighbors
    are exactly ``cluster_rows(spec, c)``.
    """
    seed_vectors = (
        np.stack([np.asarray(e.vector) for e in seeds])
        if seeds else None
    )
    centers = cluster_centers(spec, seed_vectors)
    counts = cluster_counts(spec)
    queries = []
    for i, cluster in enumerate(clusters):
        gen = RNG(derive_seed(spec.seed, "synth-query", i)).generator
        vector = (
            centers[cluster]
            + gen.normal(size=spec.dim) * spec.noise
        )
        queries.append(
            FunctionEncoding(
                name=f"synthq_{i:04d}",
                arch="synth",
                binary_name=f"synthbin_{cluster:07d}",
                vector=vector,
                callee_count=int(counts[cluster]),
                ast_size=spec.cluster_size,
            )
        )
    return queries


def seed_encodings(
    pipeline,
    n_packages: int = 4,
    arches: Sequence[str] = ("x86", "arm"),
    seed: int = 0,
) -> List[FunctionEncoding]:
    """A realistic seed set: generated packages compiled and encoded
    through the actual pipeline (cache-warm on repeat runs).

    Imported lazily so pure-bulk synthesis never touches the compiler
    stack.
    """
    from repro.compiler.pipeline import compile_package
    from repro.lang.generator import ProgramGenerator

    encodings: List[FunctionEncoding] = []
    for p in range(n_packages):
        generator = ProgramGenerator(
            seed=derive_seed(seed, "synth-seed-pkg", p)
        )
        package = generator.generate_package(f"synthseed{p}")
        for arch in arches:
            binary = compile_package(package, arch)
            encodings.extend(pipeline.encode_binary(binary))
    _LOG.info(
        "encoded %d seed functions from %d packages x %d arches",
        len(encodings), n_packages, len(arches),
    )
    return encodings
