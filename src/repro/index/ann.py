"""Top-k nearest-neighbour search over cached function encodings.

Two backends share one interface (:class:`AnnIndex`):

* :class:`BruteForceIndex` -- exact: every query scores the whole corpus
  with one matrix-at-once pass through the Siamese head
  (:meth:`repro.core.model.Asteria.similarity_batch`), replacing the seed's
  O(corpus) per-pair Python calls;
* :class:`LSHIndex` -- approximate: random-hyperplane locality-sensitive
  hashing with multi-probe.  Vectors are bucketed by the sign pattern of
  their projections onto random hyperplanes (a cosine-LSH family); a query
  probes buckets in increasing Hamming distance from its own signature --
  nearest buckets first, ties broken by the query's projection margins --
  until it has gathered enough candidates, then *exact-reranks* only those
  candidates with the batched Siamese score.

Both backends therefore return candidates ranked by the true (calibrated)
model score; the LSH backend merely restricts which rows get scored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.model import Asteria, FunctionEncoding
from repro.utils.rng import RNG, derive_seed

DEFAULT_OVERSAMPLE = 8
DEFAULT_MIN_CANDIDATES = 64


@dataclass(frozen=True)
class Neighbor:
    """One scored search result: a store row and its model score."""

    row: int
    score: float


class AnnIndex:
    """Common interface: candidate generation + batched exact rerank."""

    def __init__(
        self,
        model: Asteria,
        vectors: np.ndarray,
        callee_counts: Optional[np.ndarray] = None,
        calibrate: bool = True,
    ):
        vectors = np.asarray(vectors)
        if vectors.ndim != 2:
            raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
        if calibrate and callee_counts is None:
            raise ValueError("calibrate=True requires callee_counts")
        self.model = model
        self.vectors = vectors
        self.callee_counts = (
            None
            if callee_counts is None
            else np.asarray(callee_counts, dtype=np.int64)
        )
        self.calibrate = calibrate

    def __len__(self) -> int:
        return int(self.vectors.shape[0])

    # -- candidate generation (backend-specific) ---------------------------

    def candidate_rows(
        self, query_vector: np.ndarray, n: Optional[int]
    ) -> Optional[np.ndarray]:
        """Rows worth scoring for this query (ascending row order).

        ``None`` means "the whole corpus" and lets :meth:`score_rows`
        skip the fancy-indexing copy.
        """
        raise NotImplementedError

    # -- batched scoring (shared) ------------------------------------------

    def score_rows(
        self, query: FunctionEncoding, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Exact calibrated Siamese scores for ``rows``, matrix-at-once.

        ``rows=None`` scores the whole corpus without copying it first.
        """
        if rows is None:
            vectors, counts = self.vectors, self.callee_counts
        else:
            vectors = self.vectors[rows]
            counts = (
                None
                if self.callee_counts is None
                else self.callee_counts[rows]
            )
        return self.model.similarity_batch(
            query, vectors, counts, calibrate=self.calibrate
        )

    def top_k(
        self,
        query: FunctionEncoding,
        k: Optional[int] = 10,
        threshold: Optional[float] = None,
        oversample: int = DEFAULT_OVERSAMPLE,
    ) -> List[Neighbor]:
        """Top-``k`` neighbours by exact model score (highest first).

        ``k=None`` returns every candidate; ``threshold`` drops results
        scoring below it.  Ties are broken by row for determinism.
        """
        if len(self) == 0:
            return []
        wanted = None
        if k is not None:
            wanted = max(k * oversample, DEFAULT_MIN_CANDIDATES)
        rows = self.candidate_rows(np.asarray(query.vector), wanted)
        if rows is None:
            rows = np.arange(len(self))
            scores = self.score_rows(query)
        elif rows.size == 0:
            return []
        else:
            scores = self.score_rows(query, rows)
        if threshold is not None:
            keep = scores >= threshold
            rows, scores = rows[keep], scores[keep]
        order = np.lexsort((rows, -scores))
        if k is not None:
            order = order[:k]
        return [
            Neighbor(row=int(rows[i]), score=float(scores[i])) for i in order
        ]


class BruteForceIndex(AnnIndex):
    """Exact backend: every row is a candidate (scored copy-free)."""

    def candidate_rows(
        self, query_vector: np.ndarray, n: Optional[int]
    ) -> Optional[np.ndarray]:
        return None


class LSHIndex(AnnIndex):
    """Random-hyperplane LSH with Hamming-ordered multi-probe."""

    def __init__(
        self,
        model: Asteria,
        vectors: np.ndarray,
        callee_counts: Optional[np.ndarray] = None,
        calibrate: bool = True,
        n_planes: int = 8,
        n_tables: int = 4,
        seed: int = 0,
        max_probe_distance: Optional[int] = None,
    ):
        super().__init__(model, vectors, callee_counts, calibrate)
        if n_planes <= 0 or n_planes > 62:
            raise ValueError(f"n_planes must be in [1, 62], got {n_planes}")
        if n_tables <= 0:
            raise ValueError(f"n_tables must be positive, got {n_tables}")
        self.n_planes = n_planes
        self.n_tables = n_tables
        self.seed = seed
        self.max_probe_distance = max_probe_distance
        self._powers = 1 << np.arange(n_planes, dtype=np.int64)
        self._planes: List[np.ndarray] = []
        self._tables: List[Dict[int, np.ndarray]] = []
        dim = self.vectors.shape[1]
        for t in range(n_tables):
            rng = RNG(derive_seed(seed, "lsh-table", t))
            planes = rng.generator.normal(size=(n_planes, dim))
            self._planes.append(planes)
            self._tables.append(self._build_table(planes))

    def _build_table(self, planes: np.ndarray) -> Dict[int, np.ndarray]:
        keys = self._signatures(self.vectors @ planes.T)
        table: Dict[int, List[int]] = {}
        for row, key in enumerate(keys):
            table.setdefault(int(key), []).append(row)
        return {
            key: np.array(rows, dtype=np.int64)
            for key, rows in table.items()
        }

    def _signatures(self, projections: np.ndarray) -> np.ndarray:
        """Pack sign patterns into integer bucket keys."""
        return ((projections > 0).astype(np.int64) @ self._powers)

    def candidate_rows(
        self, query_vector: np.ndarray, n: Optional[int]
    ) -> np.ndarray:
        """Gather candidates by probing buckets nearest in Hamming space.

        For every table, nonempty bucket keys are ranked by their Hamming
        distance to the query's signature, with the query's own hyperplane
        margins breaking ties (buckets across low-margin planes first --
        classic multi-probe).  Buckets are then consumed in globally sorted
        order until ``n`` candidates are collected (``n=None`` consumes
        every reachable bucket).
        """
        wanted = len(self) if n is None else min(n, len(self))
        probes: List[Tuple[int, float, int, int]] = []
        for t, planes in enumerate(self._planes):
            projections = planes @ query_vector
            key = int(self._signatures(projections[None, :])[0])
            margins = np.abs(projections)
            for bucket_key in self._tables[t]:
                flipped = bucket_key ^ key
                distance = int(bin(flipped).count("1"))
                if (
                    self.max_probe_distance is not None
                    and distance > self.max_probe_distance
                ):
                    continue
                # margin cost: how far the query sits from the flipped planes
                cost = float(
                    margins[(flipped & self._powers) != 0].sum()
                )
                probes.append((distance, cost, t, bucket_key))
        probes.sort()
        seen: set = set()
        for distance, _cost, t, bucket_key in probes:
            if distance > 0 and len(seen) >= wanted:
                break
            seen.update(self._tables[t][bucket_key].tolist())
        return np.array(sorted(seen), dtype=np.int64)


_BACKENDS = {
    "exact": BruteForceIndex,
    "brute": BruteForceIndex,
    "lsh": LSHIndex,
}


def make_index(
    backend: str,
    model: Asteria,
    vectors: np.ndarray,
    callee_counts: Optional[np.ndarray] = None,
    **options,
) -> AnnIndex:
    """Instantiate a backend by name (``exact`` or ``lsh``)."""
    try:
        cls = _BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r} (choose from "
            f"{sorted(set(_BACKENDS))})"
        ) from None
    return cls(model, vectors, callee_counts, **options)
