"""Top-k nearest-neighbour search over cached function encodings.

Two backends share one interface (:class:`AnnIndex`):

* :class:`BruteForceIndex` -- exact: queries score the whole corpus
  with matrix-at-once passes through the Siamese head
  (:meth:`repro.core.model.Asteria.similarity_matrix`), block by block
  over the store's memory-mapped shards -- the corpus is never
  materialised as one array;
* :class:`LSHIndex` -- approximate: random-hyperplane locality-sensitive
  hashing with multi-probe.  Vectors are bucketed by the sign pattern of
  their projections onto random hyperplanes (a cosine-LSH family); a query
  probes buckets in increasing Hamming distance from its own signature --
  nearest buckets first, ties broken by the query's projection margins --
  until it has gathered enough candidates, then *exact-reranks* only those
  candidates with the batched Siamese score.  Hyperplanes and signatures
  serialise through :meth:`LSHIndex.state_dict` /
  :meth:`LSHIndex.from_state` into the store manifest, so reopening a
  corpus-scale index skips the full re-projection pass; appended rows are
  signed incrementally (:attr:`LSHIndex.rows_projected` counts exactly
  how many corpus rows each construction actually projected).

Both backends answer single queries (:meth:`AnnIndex.top_k`) and query
batches (:meth:`AnnIndex.top_k_batch`); the batched form scores Q
queries per corpus block in one broadcasted Siamese GEMM, so a batch
reads the corpus once instead of Q times.  Selection uses
``np.argpartition`` (O(n) plus an O(k log k) sort of the winners) rather
than a full corpus sort, with ties broken by row exactly as the full
``np.lexsort`` would break them.

Both backends therefore return candidates ranked by the true (calibrated)
model score; the LSH backend merely restricts which rows get scored.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.faults as faults
from repro.core.model import Asteria, FunctionEncoding
from repro.index.store import ShardedMatrix
from repro.obs.metrics import FRACTION_BUCKETS, SIZE_BUCKETS, MetricsRegistry
from repro.obs.trace import current_span
from repro.utils.rng import RNG, derive_seed

DEFAULT_OVERSAMPLE = 8
DEFAULT_MIN_CANDIDATES = 64

#: Rows per scoring pass: consecutive store shards are coalesced up to
#: this many rows so the Siamese GEMMs stay wide enough for BLAS to
#: thread, whatever the on-disk shard size is.  Bounds the transient
#: gather copy to ``SCORE_BLOCK_ROWS x dim`` elements.
SCORE_BLOCK_ROWS = 8192

#: LSH persisted-state schema version (bump on incompatible layout).
LSH_STATE_VERSION = 1


@dataclass(frozen=True)
class Neighbor:
    """One scored search result: a store row and its model score."""

    row: int
    score: float


def _as_view(vectors) -> ShardedMatrix:
    """Normalise ndarray input to the block view the scorers consume.

    A live store view is snapshotted: the index's row count, callee
    counts and (for LSH) signatures are all taken at construction, so
    the corpus the index scores must not grow underneath them when the
    store flushes new rows.
    """
    if isinstance(vectors, ShardedMatrix):
        return vectors.snapshot()
    vectors = np.asarray(vectors)
    if vectors.ndim != 2:
        raise ValueError(f"vectors must be 2-D, got shape {vectors.shape}")
    view = ShardedMatrix(vectors.shape[1], vectors.dtype)
    if vectors.shape[0]:
        view.append_block(vectors)
    return view


def select_top_k(
    scores: np.ndarray, rows: np.ndarray, k: Optional[int]
) -> np.ndarray:
    """Positions of the top-``k`` scores, ranked exactly like
    ``np.lexsort((rows, -scores))[:k]`` (descending score, ascending row).

    Uses ``np.argpartition`` so the corpus is swept in O(n) instead of
    fully sorted; only the winners (plus any score ties straddling the
    cut) pay the O(m log m) ordering.  Ties at the boundary are resolved
    by row, bit-identically to the full-sort reference.
    """
    n = scores.shape[0]
    if k is None or k >= n:
        return np.lexsort((rows, -scores))[: n if k is None else k]
    if k <= 0:
        return np.zeros(0, dtype=np.int64)
    part = np.argpartition(-scores, k - 1)
    boundary = scores[part[k - 1]]
    # everything strictly above the k-th score is in; boundary-score ties
    # are settled by row order, exactly as the lexsort reference would
    contenders = np.flatnonzero(scores >= boundary)
    order = np.lexsort((rows[contenders], -scores[contenders]))[:k]
    return contenders[order]


class AnnIndex:
    """Common interface: candidate generation + batched exact rerank."""

    #: default rerank oversampling when callers don't pass one; tiered
    #: backends override this per-instance (the ``ann_rerank`` knob)
    oversample: int = DEFAULT_OVERSAMPLE

    def __init__(
        self,
        model: Asteria,
        vectors,
        callee_counts: Optional[np.ndarray] = None,
        calibrate: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ):
        if calibrate and callee_counts is None:
            raise ValueError("calibrate=True requires callee_counts")
        self.model = model
        self.vectors = _as_view(vectors)
        self.callee_counts = (
            None
            if callee_counts is None
            else np.asarray(callee_counts, dtype=np.int64)
        )
        self.calibrate = calibrate
        self.registry = registry

    def __len__(self) -> int:
        return int(self.vectors.shape[0])

    # -- candidate generation (backend-specific) ---------------------------

    def candidate_rows(
        self, query_vector: np.ndarray, n: Optional[int]
    ) -> Optional[np.ndarray]:
        """Rows worth scoring for this query (ascending row order).

        ``None`` means "the whole corpus" and lets the scorers sweep the
        store's blocks without a fancy-indexing copy.
        """
        raise NotImplementedError

    def candidate_rows_batch(
        self,
        query_matrix: np.ndarray,
        n: Optional[int],
        queries: Optional[Sequence[FunctionEncoding]] = None,
    ) -> List[Optional[np.ndarray]]:
        """Per-query candidate rows for a ``(q, h)`` query matrix.

        ``queries`` (the full encodings behind the matrix) is optional
        context for backends whose candidate ranking is score-aware --
        the quantized tier calibrates its approximate sweep with the
        query callee counts.  Geometry-only backends ignore it.
        """
        return [
            self.candidate_rows(query_matrix[i], n)
            for i in range(query_matrix.shape[0])
        ]

    # -- batched scoring (shared) ------------------------------------------

    def score_matrix(
        self,
        queries: Sequence[FunctionEncoding],
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Exact calibrated Siamese scores as a ``(q, n_rows)`` matrix.

        ``rows=None`` sweeps the whole corpus one shard block at a time
        -- every block is scored against *all* queries in one broadcasted
        GEMM, so Q queries read each (possibly memory-mapped) block once.
        """
        if rows is not None:
            vectors = self.vectors.take(rows)
            counts = (
                None
                if self.callee_counts is None
                else self.callee_counts[rows]
            )
            return self.model.similarity_matrix(
                queries, vectors, counts, calibrate=self.calibrate
            )
        out = np.empty((len(queries), len(self)))
        for start, block in self._scoring_blocks():
            counts = (
                None
                if self.callee_counts is None
                else self.callee_counts[start:start + block.shape[0]]
            )
            out[:, start:start + block.shape[0]] = (
                self.model.similarity_matrix(
                    queries, block, counts, calibrate=self.calibrate
                )
            )
        return out

    def _sweep_top_k(
        self,
        queries: Sequence[FunctionEncoding],
        k: int,
        threshold: Optional[float],
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Whole-corpus candidates pruned block-by-block.

        Each block's ``(q, b)`` score matrix is reduced to at most ``k``
        rows per query before the next block is read; every global
        top-k row is by construction in its own block's top-k, so the
        final selection over the accumulated candidates is exact.
        """
        rows_acc: List[List[np.ndarray]] = [[] for _ in queries]
        scores_acc: List[List[np.ndarray]] = [[] for _ in queries]
        for start, block in self._scoring_blocks():
            counts = (
                None
                if self.callee_counts is None
                else self.callee_counts[start:start + block.shape[0]]
            )
            scores = self.model.similarity_matrix(
                queries, block, counts, calibrate=self.calibrate
            )
            block_rows = np.arange(
                start, start + block.shape[0], dtype=np.int64
            )
            for i in range(len(queries)):
                q_rows, q_scores = block_rows, scores[i]
                if threshold is not None:
                    keep = q_scores >= threshold
                    q_rows, q_scores = q_rows[keep], q_scores[keep]
                top = select_top_k(q_scores, q_rows, k)
                rows_acc[i].append(q_rows[top])
                scores_acc[i].append(q_scores[top])
        return [
            (
                np.concatenate(rows_acc[i])
                if rows_acc[i] else np.zeros(0, dtype=np.int64),
                np.concatenate(scores_acc[i])
                if scores_acc[i] else np.zeros(0),
            )
            for i in range(len(queries))
        ]

    def _scoring_blocks(self):
        """Corpus blocks for scoring: small adjacent shards coalesced.

        Stores often shard at a few thousand rows; scoring per shard
        would keep every Siamese GEMM below the width where BLAS
        threads.  Gathering consecutive shards up to
        :data:`SCORE_BLOCK_ROWS` costs one bounded memcpy and keeps the
        sweep streaming (never the whole corpus at once).
        """
        pending: List[np.ndarray] = []
        pending_rows = 0
        pending_start = 0
        for start, block in self.vectors.iter_blocks():
            if pending and pending_rows + block.shape[0] > SCORE_BLOCK_ROWS:
                yield pending_start, (
                    pending[0] if len(pending) == 1
                    else np.concatenate(pending)
                )
                pending, pending_rows = [], 0
            if not pending:
                pending_start = start
            pending.append(block)
            pending_rows += block.shape[0]
        if pending:
            yield pending_start, (
                pending[0] if len(pending) == 1
                else np.concatenate(pending)
            )

    def score_rows(
        self, query: FunctionEncoding, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Single-query form of :meth:`score_matrix` (a ``(n,)`` vector)."""
        return self.score_matrix([query], rows)[0]

    def top_k(
        self,
        query: FunctionEncoding,
        k: Optional[int] = 10,
        threshold: Optional[float] = None,
        oversample: Optional[int] = None,
    ) -> List[Neighbor]:
        """Top-``k`` neighbours by exact model score (highest first).

        ``k=None`` returns every candidate; ``threshold`` drops results
        scoring below it.  Ties are broken by row for determinism.
        """
        return self.top_k_batch(
            [query], k=k, threshold=threshold, oversample=oversample
        )[0]

    def top_k_batch(
        self,
        queries: Sequence[FunctionEncoding],
        k: Optional[int] = 10,
        threshold: Optional[float] = None,
        oversample: Optional[int] = None,
    ) -> List[List[Neighbor]]:
        """Top-``k`` neighbours for Q queries in one corpus pass.

        Selects the same candidates as mapping :meth:`top_k`: all
        queries share each corpus block read and each Siamese GEMM, and
        each query then picks its own top-k with ``argpartition``.
        Scores agree with the single-query path to float rounding (the
        GEMM accumulation order depends on batch width), so rows whose
        scores differ only in the last bits may order differently
        across the two paths.
        """
        if not len(queries):
            return []
        if len(self) == 0:
            return [[] for _ in queries]
        if oversample is None:
            oversample = self.oversample
        wanted = None
        if k is not None:
            wanted = max(k * oversample, DEFAULT_MIN_CANDIDATES)
        query_matrix = np.stack(
            [np.asarray(q.vector) for q in queries]
        )
        per_query = self.candidate_rows_batch(query_matrix, wanted, queries)
        sweep_started = time.perf_counter()
        all_rows: Optional[np.ndarray] = None  # shared, never mutated

        def whole_corpus() -> np.ndarray:
            nonlocal all_rows
            if all_rows is None:
                all_rows = np.arange(len(self))
            return all_rows

        if all(rows is None for rows in per_query):
            if k is None:
                # every score is part of the answer: the (q, n) matrix
                # is the output, so materialising it is unavoidable
                scored = [
                    (whole_corpus(), row_scores)
                    for row_scores in self.score_matrix(queries)
                ]
            else:
                # streaming sweep: per-block (q, b) scoring + per-block
                # top-k, so batch memory stays O(q * block), not
                # O(q * corpus) -- the property that lets a CVE-library
                # batch run against a multi-million-row mmap store
                scored = self._sweep_top_k(queries, k, threshold)
        else:
            gathered = [
                rows if rows is not None else whole_corpus()
                for rows in per_query
            ]
            total = sum(rows.size for rows in gathered)
            union = np.unique(np.concatenate(gathered)) if total else None
            if union is None:
                scored = [(rows, np.zeros(0)) for rows in gathered]
            elif len(queries) * union.size <= 2 * total:
                # candidate sets overlap heavily (clustered / duplicate
                # queries): score the union once for all queries
                scores = self.score_matrix(queries, union)
                scored = [
                    (rows, scores[i, np.searchsorted(union, rows)])
                    for i, rows in enumerate(gathered)
                ]
            else:
                # mostly-disjoint candidates: a (q, union) matrix would
                # score far more pairs than were ever candidates -- keep
                # the rerank per query (generation was still shared)
                scored = [
                    (rows, self.score_matrix([queries[i]], rows)[0])
                    if rows.size else (rows, np.zeros(0))
                    for i, rows in enumerate(gathered)
                ]
        self._observe_batch(per_query, time.perf_counter() - sweep_started)
        results: List[List[Neighbor]] = []
        for q_rows, q_scores in scored:
            if q_rows.size == 0:
                results.append([])
                continue
            if threshold is not None:
                keep = q_scores >= threshold
                q_rows, q_scores = q_rows[keep], q_scores[keep]
            top = select_top_k(q_scores, q_rows, k)
            results.append(
                [
                    Neighbor(row=int(q_rows[j]), score=float(q_scores[j]))
                    for j in top
                ]
            )
        return results

    def _observe_batch(
        self, per_query: List[Optional[np.ndarray]], sweep_s: float
    ) -> None:
        """Record candidate-set sizes, rerank fraction and sweep time.

        ``per_query`` entries of ``None`` mean the whole corpus was
        swept (the exact backend), i.e. rerank fraction 1.0.
        """
        n = len(self)
        sizes = [n if rows is None else int(rows.size) for rows in per_query]
        span = current_span()
        if span is not None:
            span.set(
                corpus_rows=n,
                candidates=sizes if len(sizes) > 1 else sizes[0],
                sweep_ms=round(sweep_s * 1000.0, 3),
            )
        if self.registry is None:
            return
        candidates = self.registry.histogram(
            "repro_ann_candidates",
            "Candidate rows scored per query", buckets=SIZE_BUCKETS,
        )
        fraction = self.registry.histogram(
            "repro_ann_rerank_fraction",
            "Fraction of the corpus exact-reranked per query",
            buckets=FRACTION_BUCKETS,
        )
        for size in sizes:
            candidates.observe(size)
            if n:
                fraction.observe(size / n)
        self.registry.histogram(
            "repro_ann_sweep_seconds",
            "Blockwise corpus sweep + rerank wall time per batch",
        ).observe(sweep_s)
        self.registry.counter(
            "repro_ann_queries_total", "Queries answered by the index"
        ).inc(len(per_query))


class BruteForceIndex(AnnIndex):
    """Exact backend: every row is a candidate (scored copy-free)."""

    def candidate_rows(
        self, query_vector: np.ndarray, n: Optional[int]
    ) -> Optional[np.ndarray]:
        return None


class LSHIndex(AnnIndex):
    """Random-hyperplane LSH with Hamming-ordered multi-probe.

    Construction signs the corpus (one projection GEMM per table per
    block); pass ``state`` -- a ``(params, arrays)`` pair produced by
    :meth:`state_dict` -- to reuse previously computed hyperplanes and
    signatures instead.  A state covering only a prefix of the corpus is
    extended incrementally: only the appended rows are projected.
    """

    def __init__(
        self,
        model: Asteria,
        vectors,
        callee_counts: Optional[np.ndarray] = None,
        calibrate: bool = True,
        n_planes: int = 8,
        n_tables: int = 4,
        seed: int = 0,
        max_probe_distance: Optional[int] = None,
        state: Optional[Tuple[Dict, Dict[str, np.ndarray]]] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(model, vectors, callee_counts, calibrate, registry)
        # chaos hook: lets tests fail ANN construction to exercise the
        # search layer's exact-sweep fallback
        faults.inject("ann.build")
        if n_planes <= 0 or n_planes > 62:
            raise ValueError(f"n_planes must be in [1, 62], got {n_planes}")
        if n_tables <= 0:
            raise ValueError(f"n_tables must be positive, got {n_tables}")
        self.n_planes = n_planes
        self.n_tables = n_tables
        self.seed = seed
        self.max_probe_distance = max_probe_distance
        #: corpus rows this construction projected (instrumentation: a
        #: persisted-state open of an unchanged corpus reports 0)
        self.rows_projected = 0
        self.loaded_from_state = False
        self._powers = 1 << np.arange(n_planes, dtype=np.int64)
        dim = self.vectors.shape[1]
        if state is not None and self._state_matches(state[0]):
            params, arrays = state
            self._planes = [
                np.asarray(arrays[f"planes_{t}"], dtype=np.float64)
                for t in range(n_tables)
            ]
            signatures = np.asarray(arrays["signatures"], dtype=np.int64)
            self.loaded_from_state = True
            if signatures.shape[1] < len(self):
                signatures = self._extend_signatures(signatures)
        else:
            rng_planes = [
                RNG(derive_seed(seed, "lsh-table", t)).generator.normal(
                    size=(n_planes, dim)
                )
                for t in range(n_tables)
            ]
            self._planes = rng_planes
            signatures = self._extend_signatures(
                np.zeros((n_tables, 0), dtype=np.int64)
            )
            self.loaded_from_state = False
        self._signatures_by_table = signatures
        self._tables = [
            self._table_from_signatures(signatures[t])
            for t in range(n_tables)
        ]

    # -- signatures --------------------------------------------------------

    def _state_matches(self, params: Dict) -> bool:
        return (
            params.get("kind") == "lsh"
            and params.get("version") == LSH_STATE_VERSION
            and int(params.get("n_planes", -1)) == self.n_planes
            and int(params.get("n_tables", -1)) == self.n_tables
            and int(params.get("seed", -1)) == self.seed
            and int(params.get("dim", -1)) == self.vectors.shape[1]
            and int(params.get("n_rows", -1)) <= len(self)
        )

    def _extend_signatures(self, signatures: np.ndarray) -> np.ndarray:
        """Sign corpus rows past ``signatures.shape[1]`` (block-wise)."""
        done = signatures.shape[1]
        n = len(self)
        if done >= n:
            return signatures
        fresh = np.empty((self.n_tables, n - done), dtype=np.int64)
        for start, block in self.vectors.iter_blocks():
            stop = start + block.shape[0]
            if stop <= done:
                continue
            lo = max(start, done)
            rows = np.asarray(block[lo - start:], dtype=np.float64)
            for t, planes in enumerate(self._planes):
                fresh[t, lo - done:stop - done] = self._signature_keys(
                    rows @ planes.T
                )
        self.rows_projected += n - done
        return np.concatenate([signatures, fresh], axis=1)

    def _signature_keys(self, projections: np.ndarray) -> np.ndarray:
        """Pack sign patterns into integer bucket keys."""
        return ((projections > 0).astype(np.int64) @ self._powers)

    def _table_from_signatures(
        self, signatures: np.ndarray
    ) -> Dict[int, np.ndarray]:
        """Group rows by bucket key without a per-row Python loop."""
        if signatures.size == 0:
            return {}
        order = np.argsort(signatures, kind="stable")
        ordered = signatures[order]
        cuts = np.flatnonzero(np.r_[True, ordered[1:] != ordered[:-1]])
        bounds = np.r_[cuts, ordered.size]
        return {
            int(ordered[bounds[i]]): order[bounds[i]:bounds[i + 1]]
            for i in range(cuts.size)
        }

    # -- persisted state ---------------------------------------------------

    def state_dict(self) -> Tuple[Dict, Dict[str, np.ndarray]]:
        """``(params, arrays)`` serialisable into the store manifest."""
        params = {
            "kind": "lsh",
            "version": LSH_STATE_VERSION,
            "n_planes": self.n_planes,
            "n_tables": self.n_tables,
            "seed": self.seed,
            "dim": int(self.vectors.shape[1]),
            "n_rows": len(self),
        }
        arrays: Dict[str, np.ndarray] = {
            "signatures": self._signatures_by_table
        }
        for t, planes in enumerate(self._planes):
            arrays[f"planes_{t}"] = planes
        return params, arrays

    # -- candidate generation ----------------------------------------------

    def candidate_rows(
        self, query_vector: np.ndarray, n: Optional[int]
    ) -> np.ndarray:
        projections = [
            planes @ np.asarray(query_vector, dtype=np.float64)
            for planes in self._planes
        ]
        return self._candidates_for(projections, n)

    def candidate_rows_batch(
        self,
        query_matrix: np.ndarray,
        n: Optional[int],
        queries: Optional[Sequence[FunctionEncoding]] = None,
    ) -> List[Optional[np.ndarray]]:
        """Candidates for Q queries, sharing one projection GEMM/table."""
        per_table = [
            np.asarray(query_matrix, dtype=np.float64) @ planes.T
            for planes in self._planes
        ]
        return [
            self._candidates_for(
                [per_table[t][i] for t in range(self.n_tables)], n
            )
            for i in range(query_matrix.shape[0])
        ]

    def _candidates_for(
        self, projections: List[np.ndarray], n: Optional[int]
    ) -> np.ndarray:
        """Gather candidates by probing buckets nearest in Hamming space.

        For every table, nonempty bucket keys are ranked by their Hamming
        distance to the query's signature, with the query's own hyperplane
        margins breaking ties (buckets across low-margin planes first --
        classic multi-probe).  Buckets are then consumed in globally sorted
        order until ``n`` candidates are collected (``n=None`` consumes
        every reachable bucket).
        """
        wanted = len(self) if n is None else min(n, len(self))
        probes: List[Tuple[int, float, int, int]] = []
        for t in range(self.n_tables):
            key = int(self._signature_keys(projections[t][None, :])[0])
            margins = np.abs(projections[t])
            for bucket_key in self._tables[t]:
                flipped = bucket_key ^ key
                distance = int(bin(flipped).count("1"))
                if (
                    self.max_probe_distance is not None
                    and distance > self.max_probe_distance
                ):
                    continue
                # margin cost: how far the query sits from the flipped planes
                cost = float(
                    margins[(flipped & self._powers) != 0].sum()
                )
                probes.append((distance, cost, t, bucket_key))
        probes.sort()
        seen: set = set()
        for distance, _cost, t, bucket_key in probes:
            if distance > 0 and len(seen) >= wanted:
                break
            seen.update(self._tables[t][bucket_key].tolist())
        return np.array(sorted(seen), dtype=np.int64)


_BACKENDS = {
    "exact": BruteForceIndex,
    "brute": BruteForceIndex,
    "lsh": LSHIndex,
}

#: Backends whose construction work (projections / quantization)
#: round-trips through ``state_dict`` into the store manifest.
STATEFUL_BACKENDS = ("lsh", "ivf-pq")


def known_backends() -> List[str]:
    """Canonical backend names accepted by :func:`make_index`."""
    return sorted(set(_BACKENDS) | {"ivf-pq"})


def backend_is_stateful(backend: str) -> bool:
    """True when ``backend`` persists construction state in the store."""
    return backend in STATEFUL_BACKENDS


def _resolve_backend(backend: str):
    if backend == "ivf-pq" and backend not in _BACKENDS:
        # imported lazily: quant.py subclasses AnnIndex from this module
        from repro.index.quant import IvfPqIndex

        _BACKENDS["ivf-pq"] = IvfPqIndex
    return _BACKENDS[backend]


def make_index(
    backend: str,
    model: Asteria,
    vectors,
    callee_counts: Optional[np.ndarray] = None,
    **options,
) -> AnnIndex:
    """Instantiate a backend by name (``exact``, ``lsh`` or ``ivf-pq``).

    Unknown names raise the typed bad-request error (CLI exit 6,
    HTTP 400) so a typo'd ``--backend`` surfaces as a client error, not
    an internal KeyError.
    """
    try:
        cls = _resolve_backend(backend)
    except KeyError:
        # lazy: repro.api pulls in this module at package-import time
        from repro.api.errors import BadRequestError

        raise BadRequestError(
            f"unknown backend {backend!r} (choose from "
            f"{known_backends()})"
        ) from None
    return cls(model, vectors, callee_counts, **options)
