"""Decompiler: binaries back to abstract syntax trees.

This is the substitute for the paper's IDA Pro + Hex-Rays step.  The
pipeline mirrors real decompilers:

1. :mod:`repro.decompiler.lifter` symbolically evaluates each basic block,
   folding scratch registers/temp slots into expression trees and emitting
   statements for writes to variable homes;
2. :mod:`repro.decompiler.structurer` rebuilds structured control flow
   (if/else, while, break) from the CFG using dominator analysis;
3. :mod:`repro.decompiler.hexrays` is the user-facing facade returning
   :class:`DecompiledFunction` objects whose ASTs use the Table-I vocabulary.

Architecture-dependent artefacts arise naturally: ARM predicated diamonds
decompile with inverted comparisons and swapped arms (paper Fig. 2), ``for``
loops come back as ``while`` loops, and compound assignments come back as
plain assignments.
"""

from repro.decompiler.hexrays import (
    DecompiledFunction,
    DecompilationError,
    decompile_binary,
    decompile_function,
)

__all__ = [
    "DecompiledFunction",
    "DecompilationError",
    "decompile_binary",
    "decompile_function",
]
