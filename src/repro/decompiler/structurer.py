"""Control-flow structuring: CFG + lifted blocks -> statement AST.

The structurer rebuilds ``if``/``else``, ``while`` and ``break`` constructs
from the CFG using dominator analysis for back-edge (loop) detection and the
branch/join patterns our code generators emit.  ``for`` loops intentionally
come back as ``while`` loops and compound assignments as plain assignments:
real decompilers show the same normalisations, and because they are applied
uniformly across architectures they do not perturb cross-platform matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.compiler.cfg import ControlFlowGraph
from repro.decompiler.lifter import (
    BranchTerm,
    FallTerm,
    JumpTerm,
    LiftedBlock,
    RetTerm,
)
from repro.lang import nodes as N
from repro.lang.nodes import NEGATED_COMPARISON, Node, Ops


class StructuringError(Exception):
    """Raised when the CFG does not match any structured pattern."""


@dataclass
class _LoopContext:
    head: int
    exit: int


class Structurer:
    """Single-use structurer for one function."""

    def __init__(self, cfg: ControlFlowGraph, lifted: Dict[int, LiftedBlock]):
        self.cfg = cfg
        self.lifted = lifted
        self._dominators = nx.immediate_dominators(cfg.graph, cfg.entry)
        self.loop_heads: Set[int] = set()
        for u, v in cfg.graph.edges():
            if self._dominates(v, u):
                self.loop_heads.add(v)
        self._end_to_block = {
            block.end: block_id for block_id, block in cfg.blocks.items()
        }
        self._loop_stack: List[_LoopContext] = []
        self._steps = 0
        self._max_steps = 10000 * (len(cfg.blocks) + 1)
        # Hex-Rays tends to recover `for` loops on the x86 family but emits
        # plain `while` loops on RISC targets; reproducing that gives the
        # cross-architecture AST divergence the paper observes.
        self._reconstruct_for = cfg.function.arch in ("x86", "x64")

    # -- dominance -----------------------------------------------------------

    def _dominates(self, a: int, b: int) -> bool:
        node = b
        while True:
            if node == a:
                return True
            parent = self._dominators.get(node)
            if parent is None or parent == node:
                return False
            node = parent

    # -- public ----------------------------------------------------------------

    def structure(self) -> Node:
        stmts = self._sequence(self.cfg.entry, set(), in_loops=set())
        return Node(Ops.BLOCK, tuple(stmts))

    # -- core recursion -----------------------------------------------------------

    def _sequence(
        self, start: Optional[int], stop: Set[int], in_loops: Set[int]
    ) -> List[Node]:
        """Emit statements from ``start`` until reaching a block in ``stop``."""
        stmts: List[Node] = []
        block_id = start
        while block_id is not None and block_id not in stop:
            self._steps += 1
            if self._steps > self._max_steps:
                raise StructuringError("structuring did not converge")
            if block_id in self.loop_heads and block_id not in in_loops:
                loop_stmt, block_id = self._loop(block_id, stop, in_loops)
                for_stmt = self._try_for_loop(stmts, loop_stmt)
                stmts.append(for_stmt if for_stmt is not None else loop_stmt)
                continue
            lifted = self.lifted[block_id]
            stmts.extend(lifted.statements)
            terminator = lifted.terminator
            if isinstance(terminator, RetTerm):
                if terminator.value is not None:
                    stmts.append(N.ret(terminator.value))
                else:
                    stmts.append(N.ret())
                block_id = None
            elif isinstance(terminator, JumpTerm):
                block_id = self._follow_jump(terminator.target, stop, stmts)
            elif isinstance(terminator, FallTerm):
                block_id = terminator.target
            elif isinstance(terminator, BranchTerm):
                if_stmt, block_id = self._conditional(
                    block_id, terminator, stop, in_loops
                )
                stmts.append(if_stmt)
            else:  # pragma: no cover
                raise StructuringError(f"unknown terminator {terminator!r}")
        return stmts

    def _follow_jump(
        self, target: int, stop: Set[int], stmts: List[Node]
    ) -> Optional[int]:
        """Handle an unconditional jump edge: break, back edge, or plain flow."""
        for ctx in reversed(self._loop_stack):
            if target == ctx.exit:
                stmts.append(Node(Ops.BREAK))
                return None
            if target == ctx.head:
                # Back edge (loop latch) -- the path simply ends here.
                return None
        return target

    # -- loops ----------------------------------------------------------------------

    def _loop(
        self, head: int, stop: Set[int], in_loops: Set[int]
    ) -> Tuple[Node, Optional[int]]:
        lifted = self.lifted[head]
        terminator = lifted.terminator
        if not isinstance(terminator, BranchTerm):
            raise StructuringError(
                f"loop head {head} does not end in a conditional branch"
            )
        exit_block = terminator.taken
        body_entry = terminator.fallthrough
        cond = Node(
            NEGATED_COMPARISON[terminator.op], (terminator.lhs, terminator.rhs)
        )
        self._loop_stack.append(_LoopContext(head=head, exit=exit_block))
        try:
            body_stmts = self._sequence(
                body_entry, stop | {head, exit_block}, in_loops | {head}
            )
        finally:
            self._loop_stack.pop()
        header_stmts = list(lifted.statements)
        body = Node(Ops.BLOCK, tuple(body_stmts))
        if header_stmts:
            # Rare shape: header computes statements each iteration; emit the
            # endless-loop normal form decompilers use.
            guard = N.if_(
                Node(terminator.op, (terminator.lhs, terminator.rhs)),
                Node(Ops.BLOCK, (Node(Ops.BREAK),)),
            )
            inner = Node(Ops.BLOCK, tuple(header_stmts + [guard] + list(body_stmts)))
            loop_stmt = N.while_(N.num(1), inner)
        else:
            loop_stmt = N.while_(cond, body)
        next_block = None if exit_block in stop else exit_block
        if exit_block in stop:
            return loop_stmt, None
        return loop_stmt, next_block

    def _try_for_loop(
        self, stmts: List[Node], loop_stmt: Node
    ) -> Optional[Node]:
        """Fold ``init; while (v cmp e) { ...; step(v) }`` into a for loop.

        Only on the x86 family (``self._reconstruct_for``); consumes the
        trailing init statement from ``stmts`` when it matches.
        """
        if not self._reconstruct_for or loop_stmt.op != Ops.WHILE:
            return None
        cond, body = loop_stmt.children
        if not cond.children or cond.children[0].op != Ops.VAR:
            return None
        loop_var = cond.children[0].value
        if body.op != Ops.BLOCK or not body.children:
            return None
        step = body.children[-1]
        if not _assigns_to(step, loop_var):
            return None
        if not stmts or not _assigns_to(stmts[-1], loop_var):
            return None
        init = stmts.pop()
        rest = Node(Ops.BLOCK, tuple(body.children[:-1]))
        return Node(Ops.FOR, (init, cond, step, rest))

    # -- conditionals ------------------------------------------------------------------

    def _conditional(
        self,
        block_id: int,
        terminator: BranchTerm,
        stop: Set[int],
        in_loops: Set[int],
    ) -> Tuple[Node, Optional[int]]:
        taken = terminator.taken
        fallthrough = terminator.fallthrough
        cond = Node(
            NEGATED_COMPARISON[terminator.op], (terminator.lhs, terminator.rhs)
        )
        join = taken
        else_join = self._detect_else_join(taken)
        if else_join is not None:
            join = else_join
            then_stmts = self._sequence(fallthrough, stop | {taken, join}, in_loops)
            else_stmts = self._sequence(taken, stop | {join}, in_loops)
            if_stmt = N.if_(
                cond,
                Node(Ops.BLOCK, tuple(then_stmts)),
                Node(Ops.BLOCK, tuple(else_stmts)),
            )
        else:
            then_stmts = self._sequence(fallthrough, stop | {join}, in_loops)
            if_stmt = N.if_(cond, Node(Ops.BLOCK, tuple(then_stmts)))
        next_block = None if join in stop else join
        return if_stmt, next_block

    def _detect_else_join(self, taken: int) -> Optional[int]:
        """If the branch has an else arm, return the join block.

        Pattern: the then arm's final block (positionally just before the
        branch's taken target) ends with a forward jump over the else arm.
        Jumps to a loop head or loop exit are back edges / breaks, not
        else-skips.
        """
        taken_block = self.cfg.blocks.get(taken)
        if taken_block is None:
            return None
        prev_id = self._end_to_block.get(taken_block.start)
        if prev_id is None:
            return None
        prev_term = self.lifted[prev_id].terminator
        if not isinstance(prev_term, JumpTerm):
            return None
        join = prev_term.target
        if join == taken:
            return None
        for ctx in self._loop_stack:
            if join in (ctx.head, ctx.exit):
                return None
        # The join must lie after the else arm in layout order.
        join_block = self.cfg.blocks.get(join)
        if join_block is not None and join_block.start < taken_block.start:
            return None
        return join


_ASSIGNMENT_OPS = frozenset(
    (Ops.ASG, Ops.ASG_OR, Ops.ASG_XOR, Ops.ASG_AND, Ops.ASG_ADD,
     Ops.ASG_SUB, Ops.ASG_MUL, Ops.ASG_DIV)
)


def _assigns_to(stmt: Node, variable: str) -> bool:
    return (
        stmt.op in _ASSIGNMENT_OPS
        and len(stmt.children) == 2
        and stmt.children[0].op == Ops.VAR
        and stmt.children[0].value == variable
    )


def structure_function(
    cfg: ControlFlowGraph, lifted: Dict[int, LiftedBlock]
) -> Node:
    """Structure one lifted function into a block AST."""
    return Structurer(cfg, lifted).structure()
