"""Per-block symbolic lifting of machine code to statements.

The lifter walks a basic block's instructions maintaining a symbolic
environment (register / temp-slot -> expression tree).  Reads of *variable
homes* (frame slots on x86/x64, ``r4``-``r11`` on ARM, ``r14``-``r30`` on
PPC) produce ``var`` nodes; writes to variable homes emit assignment
statements; everything routed through scratch locations is folded into
expressions -- the temp-collapsing real decompilers perform.

ARM predicated instruction runs are reconstructed as if/else statements
whose condition is the *first predicated instruction's* condition code;
because the code generator emits the else arm (inverted condition) first,
the decompiled AST shows the flipped comparison the paper's Figure 2
documents for ARM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.binformat.binary import BinaryFile
from repro.compiler.cfg import BasicBlock, ControlFlowGraph
from repro.compiler.codegen import (
    AImm,
    AsmFunction,
    Instruction,
    Lab,
    Mem,
    Reg,
    SRef,
)
from repro.compiler.isa import ISA, get_isa
from repro.lang import nodes as N
from repro.lang.nodes import Node, Ops

_CC_TO_OP = {
    "eq": Ops.EQ,
    "ne": Ops.NE,
    "gt": Ops.GT,
    "lt": Ops.LT,
    "ge": Ops.GE,
    "le": Ops.LE,
}

_MNEMONIC_TO_OP = {
    # x86 family
    "add": Ops.ADD, "sub": Ops.SUB, "imul": Ops.MUL, "idiv": Ops.DIV,
    "and": Ops.AND, "or": Ops.OR, "xor": Ops.XOR,
    # ARM
    "orr": Ops.OR, "eor": Ops.XOR, "mul": Ops.MUL, "sdiv": Ops.DIV,
    # PPC
    "mullw": Ops.MUL, "divw": Ops.DIV, "addi": Ops.ADD,
}


class LiftError(Exception):
    """Raised when machine code violates the lifter's assumptions."""


# -- terminators ---------------------------------------------------------------


@dataclass
class RetTerm:
    value: Optional[Node]


@dataclass
class JumpTerm:
    target: int


@dataclass
class BranchTerm:
    """Conditional branch: taken when ``lhs <op> rhs`` holds."""

    op: str
    lhs: Node
    rhs: Node
    taken: int
    fallthrough: int


@dataclass
class FallTerm:
    target: Optional[int]


Terminator = Union[RetTerm, JumpTerm, BranchTerm, FallTerm]


@dataclass
class LiftedBlock:
    block_id: int
    statements: List[Node] = field(default_factory=list)
    terminator: Terminator = field(default_factory=lambda: FallTerm(None))


# -- base lifter ------------------------------------------------------------------


class _BlockLifter:
    """Shared machinery; subclasses implement per-family semantics."""

    def __init__(self, fn: AsmFunction, cfg: ControlFlowGraph, binary: BinaryFile):
        self.fn = fn
        self.cfg = cfg
        self.binary = binary
        self.isa: ISA = get_isa(fn.arch)
        self.n_params = fn.frame.n_params
        self.n_locals = fn.frame.n_locals
        # per-block state
        self.env: Dict[object, Node] = {}
        self.stmts: List[Node] = []
        self.flags: Optional[Tuple[Node, Node]] = None
        self.pending_call: Optional[Node] = None

    # -- variable naming ---------------------------------------------------------

    def _var_name(self, index: int) -> str:
        if index < self.n_params:
            return f"a{index}"
        return f"v{index - self.n_params}"

    def var_home_name(self, operand) -> Optional[str]:
        """Variable name if the operand is a variable home, else None."""
        raise NotImplementedError

    # -- environment --------------------------------------------------------------

    def read(self, operand) -> Node:
        if isinstance(operand, AImm):
            return N.num(operand.value)
        if isinstance(operand, SRef):
            return N.string(operand.text)
        name = self.var_home_name(operand)
        if name is not None:
            return N.var(name)
        key = _loc_key(operand)
        try:
            return self.env[key]
        except KeyError:
            raise LiftError(
                f"{self.fn.name}: read of undefined location {operand} "
                f"(scratch values must not cross block boundaries)"
            ) from None

    def write(self, operand, value: Node) -> None:
        name = self.var_home_name(operand)
        if name is not None:
            self._consume_pending(value)
            if not (value.op == Ops.VAR and value.value == name):
                self.stmts.append(self._assignment_node(name, value))
            return
        self.env[_loc_key(operand)] = value

    def _assignment_node(self, name: str, value: Node) -> Node:
        """Build the statement for a variable write (plain assignment)."""
        return N.asg(N.var(name), value)

    def _consume_pending(self, value: Node) -> None:
        if self.pending_call is not None and value is self.pending_call:
            self.pending_call = None

    def flush_pending_call(self) -> None:
        """A call result that was never stored becomes a bare call statement."""
        if self.pending_call is not None:
            self.stmts.append(self.pending_call)
            self.pending_call = None

    # -- callee arity ---------------------------------------------------------------

    def callee_arity(self, name: str) -> int:
        try:
            return self.binary.function_named(name).frame.n_params
        except KeyError:
            raise LiftError(f"unknown call target {name!r}") from None

    # -- driver -----------------------------------------------------------------------

    def lift_block(self, block: BasicBlock, is_entry: bool) -> LiftedBlock:
        self.env = {}
        self.stmts = []
        self.flags = None
        self.pending_call = None
        if is_entry:
            self._init_entry_env()
        index = block.start
        instructions = block.instructions
        position = 0
        while position < len(instructions):
            consumed = self._maybe_lift_predicated(instructions, position)
            if consumed:
                position += consumed
                continue
            self._lift_instruction(instructions[position])
            position += 1
        terminator = self._terminator(block)
        self.flush_pending_call()
        return LiftedBlock(
            block_id=block.block_id,
            statements=self.stmts,
            terminator=terminator,
        )

    def _maybe_lift_predicated(self, instructions, position: int) -> int:
        return 0  # only ARM overrides

    def _init_entry_env(self) -> None:
        for i, reg in enumerate(self.isa.arg_registers):
            if i < self.n_params:
                self.env[("reg", reg)] = N.var(self._var_name(i))

    def _terminator(self, block: BasicBlock) -> Terminator:
        last = block.instructions[-1] if block.instructions else None
        successors = {
            kind: dst
            for _, dst, kind in self.cfg.graph.out_edges(block.block_id, data="kind")
        }
        if last is not None and self._is_return(last):
            return RetTerm(self._return_value())
        if last is not None and last.mnemonic == self.isa.jump and last.operands \
                and isinstance(last.operands[0], Lab):
            return JumpTerm(successors["jump"])
        if last is not None and self.isa.is_conditional_branch(last.mnemonic):
            if "taken" not in successors:
                # Degenerate branch whose target IS the fallthrough (e.g. an
                # if-arm that compiled to zero instructions): a no-op.
                return FallTerm(successors.get("fallthrough"))
            if self.flags is None:
                raise LiftError(
                    f"{self.fn.name}: conditional branch without preceding compare"
                )
            op = self.isa.branch_condition(last.mnemonic)
            lhs, rhs = self.flags
            return BranchTerm(
                op=op,
                lhs=lhs,
                rhs=rhs,
                taken=successors["taken"],
                fallthrough=successors["fallthrough"],
            )
        if "fallthrough" in successors:
            return FallTerm(successors["fallthrough"])
        return FallTerm(None)

    def _return_value(self) -> Optional[Node]:
        key = ("reg", self.isa.return_register)
        value = self.env.get(key)
        if value is not None:
            self._consume_pending(value)
        return value

    def _is_return(self, instr: Instruction) -> bool:
        raise NotImplementedError

    def _lift_instruction(self, instr: Instruction) -> None:
        raise NotImplementedError

    # -- shared op helpers ----------------------------------------------------------

    def _make_call(self, callee: str, args: List[Node]) -> None:
        call_node = N.call(callee, *args)
        self.flush_pending_call()
        self.pending_call = call_node
        # Calls clobber scratch state; drop everything except the result.
        self.env = {("reg", self.isa.return_register): call_node}
        self.flags = None


def _loc_key(operand):
    if isinstance(operand, Reg):
        return ("reg", operand.name)
    if isinstance(operand, Mem):
        return ("mem", operand.base, operand.offset)
    raise LiftError(f"unsupported location {operand!r}")


# -- x86 / x64 ----------------------------------------------------------------------


_COMPOUND_ASG_OPS = {
    Ops.ADD: Ops.ASG_ADD,
    Ops.SUB: Ops.ASG_SUB,
    Ops.MUL: Ops.ASG_MUL,
    Ops.DIV: Ops.ASG_DIV,
    Ops.AND: Ops.ASG_AND,
    Ops.OR: Ops.ASG_OR,
    Ops.XOR: Ops.ASG_XOR,
}


class X86Lifter(_BlockLifter):
    def __init__(self, fn, cfg, binary):
        super().__init__(fn, cfg, binary)
        self.word = self.isa.word_size
        self.arg_stack: List[Node] = []

    def _assignment_node(self, name: str, value: Node) -> Node:
        """On two-operand machines Hex-Rays reconstructs read-modify-write
        sequences as compound assignments (``x += e``); do the same, which
        is one of the systematic AST differences between the CISC and RISC
        decompilations of one source function."""
        if (
            value.op in _COMPOUND_ASG_OPS
            and len(value.children) == 2
            and value.children[0].op == Ops.VAR
            and value.children[0].value == name
        ):
            return Node(
                _COMPOUND_ASG_OPS[value.op],
                (N.var(name), value.children[1]),
            )
        return N.asg(N.var(name), value)

    def var_home_name(self, operand) -> Optional[str]:
        if not isinstance(operand, Mem) or operand.base != self.isa.frame_pointer:
            return None
        offset = operand.offset
        if self.isa.name == "x86":
            if offset > 0:
                index = (offset - 2 * self.word) // self.word
                if 0 <= index < self.n_params:
                    return self._var_name(index)
                return None
            slot = (-offset) // self.word - 1
            if 0 <= slot < self.n_locals:
                return self._var_name(self.n_params + slot)
            return None
        # x64: params spilled first, then locals, then temps
        if offset >= 0:
            return None
        slot = (-offset) // self.word - 1
        if slot < self.n_params:
            return self._var_name(slot)
        if slot < self.n_params + self.n_locals:
            return self._var_name(slot)
        return None

    def _is_return(self, instr: Instruction) -> bool:
        return instr.mnemonic == "ret"

    def _lift_instruction(self, instr: Instruction) -> None:
        mnemonic = instr.mnemonic
        ops = instr.operands
        fp_sp = (self.isa.frame_pointer, self.isa.stack_pointer)
        if mnemonic in ("leave", "ret", "jmp", "nop") or mnemonic in self.isa.branches.values():
            return
        if mnemonic == "push":
            src = ops[0]
            if isinstance(src, Reg) and src.name in fp_sp:
                return  # prologue
            self.arg_stack.append(self.read(src))
            return
        if mnemonic == "pop":
            return
        if mnemonic == "call":
            callee = ops[0].name
            args = list(reversed(self.arg_stack)) if self.isa.name == "x86" else [
                self.read(Reg(r))
                for r in self.isa.arg_registers[: self.callee_arity(ops[0].name)]
            ]
            if self.isa.name == "x86":
                expected = self.callee_arity(callee)
                if len(args) != expected:
                    raise LiftError(
                        f"{self.fn.name}: call to {callee} with {len(args)} "
                        f"stacked args, expected {expected}"
                    )
            self.arg_stack = []
            self._make_call(callee, args)
            return
        if mnemonic == "mov":
            dst, src = ops
            if isinstance(dst, Reg) and dst.name in fp_sp:
                return  # prologue: mov ebp, esp
            self.write(dst, self.read(src))
            return
        if mnemonic == "cmp":
            self.flags = (self.read(ops[0]), self.read(ops[1]))
            return
        if mnemonic in ("neg", "not"):
            op = Ops.NEG if mnemonic == "neg" else Ops.NOT
            target = ops[0]
            self.write(target, Node(op, (self.read(target),)))
            return
        if mnemonic in _MNEMONIC_TO_OP:
            dst, src = ops
            if isinstance(dst, Reg) and dst.name in fp_sp:
                return  # sub esp, N / add esp, N frame adjustments
            value = Node(_MNEMONIC_TO_OP[mnemonic], (self.read(dst), self.read(src)))
            self.write(dst, value)
            return
        raise LiftError(f"{self.fn.name}: unhandled {self.isa.name} mnemonic "
                        f"{mnemonic!r}")


# -- ARM ---------------------------------------------------------------------------


class ARMLifter(_BlockLifter):
    def var_home_name(self, operand) -> Optional[str]:
        if isinstance(operand, Reg):
            if operand.name in self.isa.var_registers:
                index = self.isa.var_registers.index(operand.name)
                if index < self.n_params + self.n_locals:
                    return self._var_name(index)
            return None
        if isinstance(operand, Mem) and operand.base == self.isa.frame_pointer:
            if operand.offset < 0:
                k = (-operand.offset) // self.isa.word_size
                index = len(self.isa.var_registers) + k - 1
                if index < self.n_params + self.n_locals:
                    return self._var_name(index)
        return None

    def _is_return(self, instr: Instruction) -> bool:
        return instr.mnemonic == "bx"

    def _maybe_lift_predicated(self, instructions, position: int) -> int:
        """Reconstruct a predicated run as an if/else statement."""
        first = instructions[position]
        if not first.cond:
            return 0
        if self.flags is None:
            raise LiftError(f"{self.fn.name}: predicated instruction without flags")
        run: List[Instruction] = []
        cursor = position
        while cursor < len(instructions) and instructions[cursor].cond:
            run.append(instructions[cursor])
            cursor += 1
        lead_cc = run[0].cond
        lead_op = _CC_TO_OP[lead_cc]
        arms: Dict[str, List[Node]] = {}
        for instr in run:
            arms.setdefault(instr.cond, []).append(self._predicated_stmt(instr))
        other = [cc for cc in arms if cc != lead_cc]
        if len(other) > 1:
            raise LiftError(f"{self.fn.name}: predicated run with >2 conditions")
        lhs, rhs = self.flags
        cond = Node(lead_op, (lhs, rhs))
        then_block = Node(Ops.BLOCK, tuple(arms[lead_cc]))
        if other:
            else_block = Node(Ops.BLOCK, tuple(arms[other[0]]))
            self.stmts.append(N.if_(cond, then_block, else_block))
        else:
            self.stmts.append(N.if_(cond, then_block))
        return len(run)

    def _predicated_stmt(self, instr: Instruction) -> Node:
        ops = instr.operands
        dst_name = self.var_home_name(ops[0])
        if dst_name is None:
            raise LiftError(
                f"{self.fn.name}: predicated write to non-variable {ops[0]}"
            )
        if instr.mnemonic == "mov":
            return N.asg(N.var(dst_name), self.read(ops[1]))
        op = _arm_alu_op(instr.mnemonic)
        return N.asg(
            N.var(dst_name), Node(op, (self.read(ops[1]), self.read(ops[2])))
        )

    def _lift_instruction(self, instr: Instruction) -> None:
        mnemonic = instr.mnemonic
        ops = instr.operands
        if mnemonic in ("push", "pop", "nop", "b", "bx") or \
                mnemonic in self.isa.branches.values():
            return
        if mnemonic == "mov":
            dst = ops[0]
            if isinstance(dst, Reg) and dst.name in ("fp", "sp"):
                return  # prologue
            self.write(dst, self.read(ops[1]))
            return
        if mnemonic == "ldr":
            self.write(ops[0], self.read(ops[1]))
            return
        if mnemonic == "str":
            self.write(ops[1], self.read(ops[0]))
            return
        if mnemonic == "cmp":
            self.flags = (self.read(ops[0]), self.read(ops[1]))
            return
        if mnemonic == "bl":
            callee = ops[0].name
            args = [
                self.read(Reg(r))
                for r in self.isa.arg_registers[: self.callee_arity(callee)]
            ]
            self._make_call(callee, args)
            return
        if mnemonic == "mvn":
            self.write(ops[0], Node(Ops.NOT, (self.read(ops[1]),)))
            return
        if mnemonic == "rsb":
            # rsb rd, rn, #0  =>  rd = 0 - rn
            if isinstance(ops[2], AImm) and ops[2].value == 0:
                self.write(ops[0], Node(Ops.NEG, (self.read(ops[1]),)))
            else:
                value = Node(Ops.SUB, (self.read(ops[2]), self.read(ops[1])))
                self.write(ops[0], value)
            return
        op = _arm_alu_op(mnemonic)
        self.write(ops[0], Node(op, (self.read(ops[1]), self.read(ops[2]))))

    def _return_value(self) -> Optional[Node]:
        return super()._return_value()


def _arm_alu_op(mnemonic: str) -> str:
    try:
        return {
            "add": Ops.ADD, "sub": Ops.SUB, "mul": Ops.MUL, "sdiv": Ops.DIV,
            "and": Ops.AND, "orr": Ops.OR, "eor": Ops.XOR,
        }[mnemonic]
    except KeyError:
        raise LiftError(f"unhandled ARM mnemonic {mnemonic!r}") from None


# -- PPC ---------------------------------------------------------------------------


class PPCLifter(_BlockLifter):
    def var_home_name(self, operand) -> Optional[str]:
        if isinstance(operand, Reg):
            if operand.name in self.isa.var_registers:
                index = self.isa.var_registers.index(operand.name)
                if index < self.n_params + self.n_locals:
                    return self._var_name(index)
            return None
        if isinstance(operand, Mem) and operand.base == self.isa.frame_pointer:
            if operand.offset < 0:
                k = (-operand.offset) // self.isa.word_size
                index = len(self.isa.var_registers) + k - 1
                if index < self.n_params + self.n_locals:
                    return self._var_name(index)
        return None

    def _is_return(self, instr: Instruction) -> bool:
        return instr.mnemonic == "blr"

    def _lift_instruction(self, instr: Instruction) -> None:
        mnemonic = instr.mnemonic
        ops = instr.operands
        if mnemonic in ("nop", "b", "blr") or mnemonic in self.isa.branches.values():
            return
        if mnemonic == "li":
            self.write(ops[0], self.read(ops[1]))
            return
        if mnemonic == "mr":
            self.write(ops[0], self.read(ops[1]))
            return
        if mnemonic == "lwz":
            self.write(ops[0], self.read(ops[1]))
            return
        if mnemonic == "stw":
            self.write(ops[1], self.read(ops[0]))
            return
        if mnemonic in ("cmpw", "cmpwi"):
            self.flags = (self.read(ops[0]), self.read(ops[1]))
            return
        if mnemonic == "bl":
            callee = ops[0].name
            args = [
                self.read(Reg(r))
                for r in self.isa.arg_registers[: self.callee_arity(callee)]
            ]
            self._make_call(callee, args)
            return
        if mnemonic == "neg":
            self.write(ops[0], Node(Ops.NEG, (self.read(ops[1]),)))
            return
        if mnemonic == "nor":
            # nor rd, rs, rs encodes NOT
            self.write(ops[0], Node(Ops.NOT, (self.read(ops[1]),)))
            return
        if mnemonic == "subf":
            # subf rd, ra, rb = rb - ra
            value = Node(Ops.SUB, (self.read(ops[2]), self.read(ops[1])))
            self.write(ops[0], value)
            return
        if mnemonic == "addi":
            value = Node(Ops.ADD, (self.read(ops[1]), self.read(ops[2])))
            self.write(ops[0], value)
            return
        if mnemonic in _MNEMONIC_TO_OP:
            value = Node(
                _MNEMONIC_TO_OP[mnemonic], (self.read(ops[1]), self.read(ops[2]))
            )
            self.write(ops[0], value)
            return
        raise LiftError(f"{self.fn.name}: unhandled PPC mnemonic {mnemonic!r}")


_LIFTERS = {"x86": X86Lifter, "x64": X86Lifter, "arm": ARMLifter, "ppc": PPCLifter}


def lift_function(
    fn: AsmFunction, cfg: ControlFlowGraph, binary: BinaryFile
) -> Dict[int, LiftedBlock]:
    """Lift every basic block of a function."""
    lifter = _LIFTERS[fn.arch](fn, cfg, binary)
    lifted: Dict[int, LiftedBlock] = {}
    for block_id, block in cfg.blocks.items():
        lifted[block_id] = lifter.lift_block(block, is_entry=(block_id == cfg.entry))
    return lifted
