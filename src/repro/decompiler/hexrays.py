"""Decompiler facade (the stand-in for IDA Pro + Hex-Rays).

``decompile_function`` runs disassembly -> CFG -> lifting -> structuring and
returns a :class:`DecompiledFunction`: the reconstructed AST (Table-I node
vocabulary), the callee list with instruction counts (for calibration), and
function metadata.  Works identically on stripped binaries, where functions
are named ``sub_<address>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.binformat.binary import BinaryFile, FunctionRecord
from repro.compiler.cfg import build_cfg
from repro.decompiler.lifter import LiftError, lift_function
from repro.decompiler.structurer import StructuringError, structure_function
from repro.disasm.disassembler import DisassemblyError, disassemble_function
from repro.lang.nodes import Node


class DecompilationError(Exception):
    """Raised when a function cannot be decompiled."""


@dataclass
class DecompiledFunction:
    """The decompiler's output for one binary function."""

    name: str
    arch: str
    binary_name: str
    address: int
    ast: Node
    callees: Tuple[Tuple[str, int], ...]  # (callee name, instruction count)
    n_instructions: int
    n_blocks: int

    def ast_size(self) -> int:
        return self.ast.size()

    def callee_count(self, min_instructions: int = 0) -> int:
        """Number of callees with at least ``min_instructions`` instructions.

        Repeated calls count repeatedly, matching the paper's callee set
        drawn from call sites.
        """
        return sum(
            1 for _name, size in self.callees if size >= min_instructions
        )


def decompile_function(
    binary: BinaryFile, record: FunctionRecord
) -> DecompiledFunction:
    """Decompile one function of a binary to an AST."""
    try:
        asm = disassemble_function(binary, record)
        cfg = build_cfg(asm)
        lifted = lift_function(asm, cfg, binary)
        ast = structure_function(cfg, lifted)
    except (DisassemblyError, LiftError, StructuringError) as exc:
        raise DecompilationError(
            f"cannot decompile {record.display_name()} ({binary.arch}): {exc}"
        ) from exc
    callees: List[Tuple[str, int]] = []
    for callee_name in asm.callee_names():
        try:
            size = binary.function_named(callee_name).n_instructions
        except KeyError:
            size = 0
        callees.append((callee_name, size))
    return DecompiledFunction(
        name=record.display_name(),
        arch=binary.arch,
        binary_name=binary.name,
        address=record.address,
        ast=ast,
        callees=tuple(callees),
        n_instructions=record.n_instructions,
        n_blocks=cfg.block_count,
    )


def decompile_binary(
    binary: BinaryFile, skip_errors: bool = False
) -> List[DecompiledFunction]:
    """Decompile every function in a binary.

    With ``skip_errors`` set, functions that fail to decompile are skipped
    (the large-scale firmware path tolerates individual failures, as the
    paper's pipeline tolerates Hex-Rays failures).
    """
    out: List[DecompiledFunction] = []
    for record in binary.functions:
        try:
            out.append(decompile_function(binary, record))
        except DecompilationError:
            if not skip_errors:
                raise
    return out
