"""Worker-pool execution of the CPU-bound extract stages.

Decompilation and preprocessing dominate a cold offline run and are pure
Python (no GEMMs), so they parallelise across processes.  Binaries travel
to workers as serialised ``RBIN`` bytes -- the same canonical form the
cache digests -- and come back as columnar
:class:`~repro.pipeline.stages.ExtractedBinary` artifacts.

Ordering is preserved (``Pool.map`` over the input order) and extraction
is deterministic per binary, so a ``jobs=N`` run produces bit-for-bit the
same artifacts, in the same order, as ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing
from typing import Iterator, List, Sequence, Tuple

from repro.binformat.binary import BinaryFile
from repro.pipeline.stages import ExtractedBinary, extract_binary


def _extract_payload(payload: Tuple[bytes, int]) -> ExtractedBinary:
    blob, min_ast_size = payload
    return extract_binary(BinaryFile.from_bytes(blob), min_ast_size)


def extract_stream(
    binaries: Sequence[BinaryFile], min_ast_size: int, jobs: int = 1
) -> Iterator[ExtractedBinary]:
    """Decompile + preprocess each binary, yielding results in input order.

    Streaming keeps only in-flight artifacts in memory: the consumer can
    encode-and-release each binary while workers extract the next ones.
    """
    if jobs <= 1 or len(binaries) <= 1:
        for binary in binaries:
            yield extract_binary(binary, min_ast_size)
        return
    payloads = ((binary.to_bytes(), min_ast_size) for binary in binaries)
    processes = min(int(jobs), len(binaries))
    with multiprocessing.get_context().Pool(processes=processes) as pool:
        for extracted in pool.imap(_extract_payload, payloads):
            yield extracted


def extract_all(
    binaries: Sequence[BinaryFile], min_ast_size: int, jobs: int = 1
) -> List[ExtractedBinary]:
    """Decompile + preprocess each binary, optionally across processes."""
    return list(extract_stream(binaries, min_ast_size, jobs=jobs))
