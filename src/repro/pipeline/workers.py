"""Supervised worker-pool execution of the CPU-bound extract stages.

Decompilation and preprocessing dominate a cold offline run and are pure
Python (no GEMMs), so they parallelise across processes.  Binaries travel
to workers as serialised ``RBIN`` bytes -- the same canonical form the
cache digests -- and come back as columnar
:class:`~repro.pipeline.stages.ExtractedBinary` artifacts.

The pool is *supervised*: each worker owns a single-slot task queue, so
the parent always knows exactly which task a worker holds.  A worker that
dies mid-task (OOM kill, segfault, a ``worker.task`` kill failpoint) is
detected by liveness polling -- the run does not hang on a silent child
the way ``Pool.imap`` does.  The lost task is requeued with exponential
backoff + jitter and the worker replaced; a task that fails
``max_attempts`` times raises :class:`WorkerCrashError` (for dead
workers) or :class:`WorkerTaskError` (for task exceptions), so a
poisonous input ends the run with a diagnosis instead of an infinite
crash loop.

Ordering is preserved (results are buffered and emitted in input order)
and extraction is deterministic per binary, so a ``jobs=N`` run produces
bit-for-bit the same artifacts, in the same order, as ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import repro.faults as faults
from repro.binformat.binary import BinaryFile
from repro.pipeline.stages import ExtractedBinary, extract_binary
from repro.utils.logging import get_logger
from repro.utils.retry import backoff_delays

_LOG = get_logger("pipeline.workers")

__all__ = [
    "WorkerCrashError",
    "WorkerTaskError",
    "extract_all",
    "extract_stream",
]

#: Per-task attempt budget (first try + retries across worker crashes).
MAX_ATTEMPTS = 3
#: Liveness-poll period while waiting on results.
_POLL_S = 0.1


class WorkerCrashError(RuntimeError):
    """A task's worker died ``max_attempts`` times; the input is presumed
    to crash the extract stage (or the host is killing workers faster
    than the pool can make progress)."""


class WorkerTaskError(RuntimeError):
    """A task raised in the worker ``max_attempts`` times."""


def _extract_payload(payload: Tuple[bytes, int]) -> ExtractedBinary:
    blob, min_ast_size = payload
    return extract_binary(BinaryFile.from_bytes(blob), min_ast_size)


def _worker_main(task_queue, result_queue) -> None:
    """Worker loop: one task at a time until the ``None`` sentinel."""
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, payload = item
        try:
            # chaos hook: a kill-mode failpoint here is an OOM-killed
            # worker mid-task; raise-mode is a transient task fault
            faults.inject("worker.task")
            result_queue.put((task_id, "ok", _extract_payload(payload)))
        except BaseException as exc:  # noqa: BLE001 -- report, don't die
            result_queue.put(
                (task_id, "error", f"{type(exc).__name__}: {exc}")
            )


@dataclass
class _Task:
    task_id: int
    payload: Tuple[bytes, int]
    attempts: int = 0
    delays: List[float] = field(default_factory=list)
    not_before: float = 0.0  # monotonic time gating the retry


class _Worker:
    """One process plus its single-slot task queue.

    The slot is the crash-safety invariant: the parent knows the one
    task a worker may hold, so a death never loses an unknown task.
    """

    __slots__ = ("process", "queue", "task")

    @classmethod
    def spawn(cls, ctx, result_queue) -> "_Worker":
        worker = cls.__new__(cls)
        worker.queue = ctx.Queue()
        worker.task = None
        worker.process = ctx.Process(
            target=_worker_main, args=(worker.queue, result_queue),
            daemon=True,
        )
        worker.process.start()
        return worker

    def assign(self, task: _Task) -> None:
        self.task = task
        task.attempts += 1
        self.queue.put((task.task_id, task.payload))

    def stop(self) -> None:
        try:
            self.queue.put(None)
        except (OSError, ValueError):
            pass

    def reap(self, timeout: float = 1.0) -> None:
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        self.queue.close()


class _Supervisor:
    """Order-preserving scheduler over replaceable worker processes."""

    def __init__(
        self,
        payloads: Iterator[Tuple[bytes, int]],
        n_workers: int,
        max_attempts: int,
        registry=None,
    ):
        self._ctx = multiprocessing.get_context()
        self._payloads = payloads
        self._n_workers = n_workers
        self._max_attempts = max_attempts
        self._registry = registry
        self._results = self._ctx.Queue()
        self._workers: List[_Worker] = []
        self._retry: List[_Task] = []
        self._done: Dict[int, ExtractedBinary] = {}
        self._next_id = 0
        self._next_emit = 0
        self._exhausted = False

    # -- accounting hooks --------------------------------------------------

    def _count(self, name: str, help_text: str) -> None:
        if self._registry is not None:
            self._registry.counter(name, help_text).inc()

    # -- scheduling --------------------------------------------------------

    def _next_task(self) -> Optional[_Task]:
        now = time.monotonic()
        for i, task in enumerate(self._retry):
            if task.not_before <= now:
                return self._retry.pop(i)
        if not self._exhausted:
            try:
                payload = next(self._payloads)
            except StopIteration:
                self._exhausted = True
            else:
                task = _Task(task_id=self._next_id, payload=payload)
                self._next_id += 1
                return task
        return None

    def _fill_workers(self) -> None:
        for worker in self._workers:
            if worker.task is not None:
                continue
            task = self._next_task()
            if task is None:
                return
            worker.assign(task)

    def _fail_task(self, task: _Task, reason: str, crash: bool) -> None:
        """Requeue a failed task with backoff, or raise when spent."""
        if task.attempts >= self._max_attempts:
            exc_type = WorkerCrashError if crash else WorkerTaskError
            raise exc_type(
                f"task {task.task_id} failed {task.attempts} time(s); "
                f"last: {reason}"
            )
        if not task.delays:
            task.delays = list(backoff_delays(self._max_attempts))
        delay = task.delays[min(task.attempts, len(task.delays)) - 1]
        task.not_before = time.monotonic() + delay
        self._retry.append(task)
        self._count(
            "repro_worker_task_retries_total",
            "Extract tasks requeued after a worker fault",
        )
        _LOG.warning(
            "extract task %d failed (attempt %d/%d): %s; retrying in %.0fms",
            task.task_id, task.attempts, self._max_attempts, reason,
            delay * 1000,
        )

    def _check_liveness(self) -> None:
        for i, worker in enumerate(self._workers):
            if worker.process.is_alive():
                continue
            exitcode = worker.process.exitcode
            task, worker.task = worker.task, None
            worker.reap(timeout=0.1)
            self._count(
                "repro_worker_restarts_total",
                "Extract workers replaced after dying mid-run",
            )
            _LOG.warning(
                "extract worker died (exit %s); replacing it", exitcode
            )
            self._workers[i] = _Worker.spawn(self._ctx, self._results)
            if task is not None:
                self._fail_task(
                    task, f"worker died with exit code {exitcode}", crash=True
                )

    def _drain_results(self, timeout: float) -> bool:
        """Pull at most one result; True if one arrived."""
        try:
            task_id, status, value = self._results.get(timeout=timeout)
        except queue_mod.Empty:
            return False
        for worker in self._workers:
            if worker.task is not None and worker.task.task_id == task_id:
                task, worker.task = worker.task, None
                break
        else:  # result from a worker we already replaced: ignore dupes
            return True
        if status == "ok":
            self._done[task_id] = value
        else:
            self._fail_task(task, value, crash=False)
        return True

    # -- run ---------------------------------------------------------------

    def run(self) -> Iterator[ExtractedBinary]:
        self._workers = [
            _Worker.spawn(self._ctx, self._results)
            for _ in range(self._n_workers)
        ]
        try:
            while True:
                self._fill_workers()
                while self._next_emit in self._done:
                    yield self._done.pop(self._next_emit)
                    self._next_emit += 1
                idle = all(w.task is None for w in self._workers)
                if self._exhausted and idle and not self._retry:
                    return
                if idle and self._retry:
                    # everything pending is backing off; sleep it out
                    wake = min(t.not_before for t in self._retry)
                    time.sleep(max(0.0, wake - time.monotonic()))
                    continue
                if not self._drain_results(timeout=_POLL_S):
                    self._check_liveness()
        finally:
            for worker in self._workers:
                worker.stop()
            for worker in self._workers:
                worker.reap()


def extract_stream(
    binaries: Sequence[BinaryFile],
    min_ast_size: int,
    jobs: int = 1,
    registry=None,
    max_attempts: int = MAX_ATTEMPTS,
) -> Iterator[ExtractedBinary]:
    """Decompile + preprocess each binary, yielding results in input order.

    Streaming keeps only in-flight artifacts in memory: the consumer can
    encode-and-release each binary while workers extract the next ones.
    With ``jobs > 1`` the pool survives worker deaths (see module
    docstring); ``registry`` (a :class:`~repro.obs.metrics
    .MetricsRegistry`) receives restart/retry counters when given.
    """
    if jobs <= 1 or len(binaries) <= 1:
        for binary in binaries:
            yield extract_binary(binary, min_ast_size)
        return
    payloads = ((binary.to_bytes(), min_ast_size) for binary in binaries)
    supervisor = _Supervisor(
        iter(payloads),
        n_workers=min(int(jobs), len(binaries)),
        max_attempts=max_attempts,
        registry=registry,
    )
    for extracted in supervisor.run():
        yield extracted


def extract_all(
    binaries: Sequence[BinaryFile],
    min_ast_size: int,
    jobs: int = 1,
    registry=None,
) -> List[ExtractedBinary]:
    """Decompile + preprocess each binary, optionally across processes."""
    return list(
        extract_stream(binaries, min_ast_size, jobs=jobs, registry=registry)
    )
