"""Staged corpus pipeline: extract -> encode -> index, cached and parallel.

The one implementation of the paper's offline phase.  See
:mod:`repro.pipeline.corpus` for the orchestrator,
:mod:`repro.pipeline.stages` for the shared stage functions,
:mod:`repro.pipeline.cache` for the content-addressed artifact cache and
:mod:`repro.pipeline.workers` for the multiprocessing extract pool.
"""

from repro.pipeline.cache import (
    ArtifactCache,
    CacheStats,
    artifact_key,
    binary_digest,
)
from repro.pipeline.corpus import (
    CorpusPipeline,
    PipelineResult,
    PipelineStats,
    StageTimes,
)
from repro.pipeline.stages import (
    ExtractedBinary,
    decompile_one,
    decompile_stage,
    encode_stage,
    extract_binary,
    flatten_tree,
    preprocess_one,
    unflatten_tree,
    unpack_stage,
)
from repro.pipeline.workers import (
    WorkerCrashError,
    WorkerTaskError,
    extract_all,
    extract_stream,
)

__all__ = [
    "ArtifactCache",
    "CacheStats",
    "CorpusPipeline",
    "ExtractedBinary",
    "PipelineResult",
    "PipelineStats",
    "StageTimes",
    "WorkerCrashError",
    "WorkerTaskError",
    "artifact_key",
    "binary_digest",
    "decompile_one",
    "decompile_stage",
    "encode_stage",
    "extract_all",
    "extract_binary",
    "extract_stream",
    "flatten_tree",
    "preprocess_one",
    "unflatten_tree",
    "unpack_stage",
]
