"""The staged corpus pipeline: Unpack -> Decompile -> Preprocess -> Encode -> Index.

:class:`CorpusPipeline` is the one implementation of the paper's offline
phase (§V, Fig. 10): every consumer -- the firmware vulnerability search,
the timing suite, dataset builders, the persistent index and the CLI --
feeds corpora through it instead of hand-rolling its own
unpack/decompile/encode loop.  On top of the shared stage functions it
adds:

* **artifact caching** (:class:`~repro.pipeline.cache.ArtifactCache`):
  per-binary trees and encodings are content-addressed, so warm runs skip
  straight to cached encodings and a retrained model re-runs only Encode;
* **worker-pool extraction** (:mod:`repro.pipeline.workers`): the
  CPU-bound Decompile + Preprocess stages fan out over processes, feeding
  the level-batched encoder in the parent -- results are bit-for-bit
  identical to a serial run, in the same order;
* **instrumentation**: per-stage wall/CPU seconds, corpus counts and
  cache hit/miss accounting in :class:`PipelineStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.binformat.binary import BinaryFile
from repro.binformat.binwalk import UnpackError
from repro.core.model import (
    DEFAULT_ENCODE_BATCH_SIZE,
    DEFAULT_ENCODE_DTYPE,
    Asteria,
    FunctionEncoding,
)
from repro.nn.treebatch import resolve_node_budget
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.cache import ArtifactCache, CacheStats, binary_digest
from repro.pipeline.stages import (
    ExtractedBinary,
    encode_stage,
    unpack_stage,
)
from repro.pipeline.workers import extract_stream
from repro.utils.logging import get_logger

_LOG = get_logger("pipeline.corpus")


@dataclass
class StageTimes:
    """Seconds spent per pipeline stage.

    ``decompile_s``/``preprocess_s`` are summed per-binary (CPU seconds
    across all workers); ``extract_wall_s`` is the wall time of the
    streamed Decompile + Preprocess stage with the interleaved encode
    time subtracted, so with ``jobs > 1`` it is the smaller number.
    """

    unpack_s: float = 0.0
    decompile_s: float = 0.0
    preprocess_s: float = 0.0
    extract_wall_s: float = 0.0
    encode_s: float = 0.0
    index_s: float = 0.0


@dataclass
class PipelineStats:
    """What one pipeline run processed, skipped, and reused."""

    n_images: int = 0
    n_unpack_failures: int = 0
    n_binaries: int = 0  # binary occurrences (duplicates included)
    n_unique_binaries: int = 0  # distinct content digests
    n_extracted: int = 0  # digests decompiled + preprocessed this run
    n_encoded: int = 0  # digests encoded this run
    n_trees_compiled: int = 0  # trees level-compiled this run (ctrees misses)
    n_functions: int = 0  # encodings produced, over occurrences
    n_skipped_small: int = 0  # below-size-floor functions, over occurrences
    times: StageTimes = field(default_factory=StageTimes)
    cache: CacheStats = field(default_factory=CacheStats)

    def summary(self) -> str:
        """Human-readable per-stage report (printed by the CLI)."""
        times = self.times
        lines = []
        if self.n_images:
            lines.append(
                f"stage  unpack      {times.unpack_s:8.3f}s  "
                f"({self.n_images} images, "
                f"{self.n_unpack_failures} unidentifiable)"
            )
        lines.append(
            f"stage  decompile   {times.decompile_s:8.3f}s  "
            f"(extracted {self.n_extracted} of {self.n_unique_binaries} "
            f"unique binaries, wall {times.extract_wall_s:.3f}s)"
        )
        lines.append(f"stage  preprocess  {times.preprocess_s:8.3f}s")
        lines.append(
            f"stage  encode      {times.encode_s:8.3f}s  "
            f"(encoded {self.n_encoded} binaries, "
            f"{self.n_functions} functions, "
            f"compiled {self.n_trees_compiled} trees, "
            f"{self.n_skipped_small} below size floor)"
        )
        lines.append(
            f"stage  index       {times.index_s:8.3f}s  "
            f"({self.n_binaries} binary occurrences)"
        )
        lines.append(
            f"cache  trees: {self.cache.tree_hits} hits / "
            f"{self.cache.tree_misses} misses; "
            f"ctrees: {self.cache.ctree_hits} hits / "
            f"{self.cache.ctree_misses} misses; "
            f"encodings: {self.cache.encoding_hits} hits / "
            f"{self.cache.encoding_misses} misses"
        )
        return "\n".join(lines)


@dataclass
class PipelineResult:
    """Encodings (tagged with their firmware image) plus run statistics."""

    encodings: List[Tuple[str, FunctionEncoding]]
    stats: PipelineStats

    def function_encodings(self) -> List[FunctionEncoding]:
        return [encoding for _image_id, encoding in self.encodings]


@dataclass
class _Entry:
    """Per-digest working state during one run."""

    binary: BinaryFile
    encodings: Optional[List[FunctionEncoding]] = None
    extracted: Optional[ExtractedBinary] = None
    n_skipped_small: int = 0


Tagged = Tuple[BinaryFile, str]


class CorpusPipeline:
    """Composable staged corpus pipeline with caching and worker pools."""

    def __init__(
        self,
        model: Asteria,
        jobs: int = 1,
        cache: Optional[ArtifactCache] = None,
        encode_batch_size: int = DEFAULT_ENCODE_BATCH_SIZE,
        registry: Optional[MetricsRegistry] = None,
        encode_dtype: str = DEFAULT_ENCODE_DTYPE,
        encode_block: int = 0,
    ):
        if encode_batch_size < 1:
            raise ValueError("encode_batch_size must be >= 1")
        if str(encode_dtype) not in ("float32", "float64"):
            raise ValueError(
                f"encode_dtype must be float32 or float64, got {encode_dtype!r}"
            )
        self.model = model
        self.jobs = max(1, int(jobs))
        self.cache = cache if cache is not None else ArtifactCache.in_memory()
        self.encode_batch_size = encode_batch_size
        self.encode_dtype = str(encode_dtype)
        self.encode_block = int(encode_block)
        self.registry = registry
        self._fingerprint: Optional[str] = None

    @property
    def model_fingerprint(self) -> str:
        """The model's weight fingerprint (computed once per pipeline)."""
        if self._fingerprint is None:
            self._fingerprint = self.model.fingerprint()
        return self._fingerprint

    # -- entry points ------------------------------------------------------

    def run_images(self, images: Iterable, sink=None) -> PipelineResult:
        """Run the full pipeline over firmware images.

        ``sink`` is an optional Index-stage target with
        ``add(encoding, image_id=...)`` and ``flush()`` (duck-typed to
        :class:`~repro.index.store.EmbeddingStore`).
        """
        stats = PipelineStats()
        tagged: List[Tagged] = []
        started = time.perf_counter()
        for image in images:
            stats.n_images += 1
            try:
                binaries = unpack_stage(image)
            except UnpackError:
                stats.n_unpack_failures += 1
                continue
            tagged.extend((binary, image.identifier) for binary in binaries)
        stats.times.unpack_s = time.perf_counter() - started
        return self._run(tagged, sink, stats)

    def run_binaries(
        self,
        binaries: Sequence[Union[BinaryFile, Tagged]],
        sink=None,
    ) -> PipelineResult:
        """Run the Decompile..Index stages over loose binaries.

        Accepts plain :class:`BinaryFile` items or ``(binary, image_id)``
        pairs when encodings should stay tagged with their source image.
        """
        tagged: List[Tagged] = [
            (item, "") if isinstance(item, BinaryFile) else item
            for item in binaries
        ]
        return self._run(tagged, sink, PipelineStats())

    def encode_binary(self, binary: BinaryFile) -> List[FunctionEncoding]:
        """Offline phase for one binary, through the cache.

        Used for query-side encodings (CVE library, ``repro-cli compare``
        style lookups) so repeated runs skip re-decompiling the query.
        """
        return self.run_binaries([binary]).function_encodings()

    # -- the staged run ----------------------------------------------------

    def _compiled_plan(
        self,
        digest: str,
        extracted: ExtractedBinary,
        stats: PipelineStats,
    ):
        """This binary's encode plan, through the ``ctrees`` cache.

        Plans hold tree structure only, so they are keyed without the
        model fingerprint: after a retrain, ``enc`` misses but the plan
        still hits and zero trees are recompiled.
        """
        min_ast_size = self.model.config.min_ast_size
        node_budget = resolve_node_budget(0)
        plan = self.cache.get_ctrees(
            digest, min_ast_size, self.encode_batch_size, node_budget
        )
        if plan is None:
            plan = self.model.compile_plan(
                extracted.trees(),
                self.encode_batch_size,
                node_budget=node_budget,
                registry=self.registry,
            )
            stats.n_trees_compiled += plan.n_trees
            self.cache.put_ctrees(
                digest, min_ast_size, self.encode_batch_size,
                node_budget, plan,
            )
        return plan

    def _encode_entry(
        self,
        entry: _Entry,
        digest: str,
        extracted: ExtractedBinary,
        stats: PipelineStats,
    ) -> None:
        """Encode one binary's trees, cache the result, release the trees."""
        plan = (
            self._compiled_plan(digest, extracted, stats)
            if len(extracted) else None
        )
        entry.encodings = encode_stage(
            self.model,
            extracted,
            batch_size=self.encode_batch_size,
            plan=plan,
            dtype=self.encode_dtype,
            block=self.encode_block,
            registry=self.registry,
        )
        entry.n_skipped_small = extracted.n_skipped_small
        self.cache.put_encodings(
            digest,
            self.model_fingerprint,
            self.model.config.min_ast_size,
            binary_name=extracted.binary_name,
            arch=extracted.arch,
            encodings=entry.encodings,
            n_skipped_small=entry.n_skipped_small,
            dtype=self.encode_dtype,
        )
        entry.extracted = None
        stats.n_encoded += 1

    def _run(
        self, tagged: List[Tagged], sink, stats: PipelineStats
    ) -> PipelineResult:
        cache_before = self.cache.stats.snapshot()
        min_ast_size = self.model.config.min_ast_size

        # Plan: dedup occurrences by content digest; look up cached
        # artifacts once per digest, preferring encodings over trees.
        plan: List[Tuple[str, str]] = []  # (digest, image_id) per occurrence
        entries: Dict[str, _Entry] = {}  # insertion order = first occurrence
        for binary, image_id in tagged:
            stats.n_binaries += 1
            digest = binary_digest(binary)
            plan.append((digest, image_id))
            if digest in entries:
                continue
            entry = _Entry(binary=binary)
            cached = self.cache.get_encodings(
                digest, self.model_fingerprint, min_ast_size,
                dtype=self.encode_dtype,
            )
            if cached is not None:
                entry.encodings, entry.n_skipped_small = cached
            else:
                entry.extracted = self.cache.get_trees(digest, min_ast_size)
            entries[digest] = entry
        stats.n_unique_binaries = len(entries)

        # Decompile + Preprocess (optionally across worker processes) for
        # digests with no cached artifact at all.  The stream yields in
        # input order and each binary is encoded and released as soon as
        # it arrives, so peak memory holds in-flight artifacts, not the
        # whole corpus.
        to_extract = [
            digest
            for digest, entry in entries.items()
            if entry.encodings is None and entry.extracted is None
        ]
        encode_s = 0.0
        started = time.perf_counter()
        stream = extract_stream(
            [entries[digest].binary for digest in to_extract],
            min_ast_size,
            jobs=self.jobs,
            registry=self.registry,
        )
        for digest, extracted in zip(to_extract, stream):
            stats.times.decompile_s += extracted.decompile_s
            stats.times.preprocess_s += extracted.preprocess_s
            self.cache.put_trees(digest, min_ast_size, extracted)
            encode_started = time.perf_counter()
            self._encode_entry(entries[digest], digest, extracted, stats)
            encode_s += time.perf_counter() - encode_started
        stats.times.extract_wall_s = (
            time.perf_counter() - started - encode_s
        )
        stats.n_extracted = len(to_extract)

        # Encode digests whose trees came from the cache.  Encode order is
        # a convention, not a numerical requirement: the level-batched
        # engine is bit-for-bit identical across chunkings.
        started = time.perf_counter()
        for digest, entry in entries.items():
            if entry.encodings is None:
                self._encode_entry(entry, digest, entry.extracted, stats)
        stats.times.encode_s = encode_s + (time.perf_counter() - started)
        self.cache.flush()

        # Index: emit per occurrence, in corpus order.
        encodings: List[Tuple[str, FunctionEncoding]] = []
        started = time.perf_counter()
        for digest, image_id in plan:
            entry = entries[digest]
            stats.n_functions += len(entry.encodings)
            stats.n_skipped_small += entry.n_skipped_small
            for encoding in entry.encodings:
                encodings.append((image_id, encoding))
                if sink is not None:
                    sink.add(encoding, image_id=image_id)
        if sink is not None:
            sink.flush()
        stats.times.index_s = time.perf_counter() - started

        stats.cache = self.cache.stats.minus(cache_before)
        self._record(stats)
        _LOG.info(
            "pipeline: %d functions from %d binaries "
            "(%d unique, %d extracted, %d encoded; cache %d hits / %d misses)",
            stats.n_functions, stats.n_binaries, stats.n_unique_binaries,
            stats.n_extracted, stats.n_encoded,
            stats.cache.hits, stats.cache.misses,
        )
        return PipelineResult(encodings=encodings, stats=stats)

    def _record(self, stats: PipelineStats) -> None:
        """Fold one run's stats into the metrics registry (if any)."""
        if self.registry is None:
            return
        reg = self.registry
        reg.counter(
            "repro_pipeline_runs_total", "Completed pipeline runs"
        ).inc()
        reg.counter(
            "repro_pipeline_functions_total",
            "Function encodings produced by pipeline runs",
        ).inc(stats.n_functions)
        reg.counter(
            "repro_pipeline_binaries_total",
            "Binary occurrences fed through the pipeline",
        ).inc(stats.n_binaries)
        stage_seconds = {
            "unpack": stats.times.unpack_s,
            "decompile": stats.times.decompile_s,
            "preprocess": stats.times.preprocess_s,
            "encode": stats.times.encode_s,
            "index": stats.times.index_s,
        }
        for stage, seconds in stage_seconds.items():
            reg.counter(
                "repro_pipeline_stage_seconds_total",
                "Seconds spent per pipeline stage", stage=stage,
            ).inc(seconds)
        reg.counter(
            "repro_pipeline_trees_compiled_total",
            "Trees level-compiled by pipeline runs (ctrees cache misses)",
        ).inc(stats.n_trees_compiled)
        for kind, hits, misses in (
            ("tree", stats.cache.tree_hits, stats.cache.tree_misses),
            ("ctrees", stats.cache.ctree_hits, stats.cache.ctree_misses),
            ("encoding", stats.cache.encoding_hits,
             stats.cache.encoding_misses),
        ):
            reg.counter(
                "repro_pipeline_cache_hits_total",
                "Artifact-cache hits by kind", kind=kind,
            ).inc(hits)
            reg.counter(
                "repro_pipeline_cache_misses_total",
                "Artifact-cache misses by kind", kind=kind,
            ).inc(misses)
