"""Single-binary stage functions shared by the corpus pipeline.

Each stage of the paper's offline phase is a pure function over one
binary (or one function), so the same code serves every consumer:

* :class:`~repro.pipeline.corpus.CorpusPipeline` composes the stages over
  whole corpora with artifact caching and worker pools;
* the per-function instrumentation in :mod:`repro.evalsuite.timing` times
  :func:`decompile_one` / :func:`preprocess_one` individually;
* ad hoc callers (datasets, CLI, tests) that need one stage in isolation.

:class:`ExtractedBinary` -- the combined Decompile + Preprocess output --
is a columnar, ndarray-backed value object: cheap to pickle across worker
process boundaries and directly serialisable into the artifact cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.binformat.binary import BinaryFile, FunctionRecord
from repro.binformat.binwalk import unpack_firmware
from repro.core.model import (
    DEFAULT_ENCODE_BATCH_SIZE,
    Asteria,
    FunctionEncoding,
)
from repro.core.preprocess import try_preprocess_ast
from repro.decompiler.hexrays import (
    DecompiledFunction,
    decompile_binary,
    decompile_function,
)
from repro.nn.treelstm import BinaryTreeNode


# -- per-function building blocks --------------------------------------------------


def decompile_one(
    binary: BinaryFile, record: FunctionRecord
) -> DecompiledFunction:
    """Decompile stage for one function (raises :class:`DecompilationError`)."""
    return decompile_function(binary, record)


def preprocess_one(
    fn: DecompiledFunction, min_ast_size: int
) -> Optional[BinaryTreeNode]:
    """Preprocess stage for one function; None when the AST is too small."""
    return try_preprocess_ast(fn.ast, min_ast_size)


# -- whole-binary / whole-image stages ----------------------------------------------


def unpack_stage(image) -> List[BinaryFile]:
    """Unpack stage: firmware image -> embedded binaries.

    Raises :class:`~repro.binformat.binwalk.UnpackError` on unidentifiable
    formats, which the pipeline counts and skips.
    """
    return unpack_firmware(image)


def decompile_stage(
    binary: BinaryFile, skip_errors: bool = True
) -> List[DecompiledFunction]:
    """Decompile stage: every function of one binary."""
    return list(decompile_binary(binary, skip_errors=skip_errors))


# -- tree (de)serialisation ---------------------------------------------------------


def flatten_tree(
    root: BinaryTreeNode,
) -> Tuple[List[int], List[int], List[int]]:
    """Flatten a binarised tree into parallel label/left/right arrays.

    Children are referenced by array index, -1 meaning absent, so the
    representation is free of object graphs: storable in an npz artifact
    and picklable without recursion limits.
    """
    nodes: List[BinaryTreeNode] = []
    stack = [root]
    while stack:
        node = stack.pop()
        nodes.append(node)
        if node.right is not None:
            stack.append(node.right)
        if node.left is not None:
            stack.append(node.left)
    index = {id(node): i for i, node in enumerate(nodes)}
    labels = [node.label for node in nodes]
    lefts = [
        index[id(node.left)] if node.left is not None else -1 for node in nodes
    ]
    rights = [
        index[id(node.right)] if node.right is not None else -1
        for node in nodes
    ]
    return labels, lefts, rights


def unflatten_tree(
    labels: Sequence[int], lefts: Sequence[int], rights: Sequence[int]
) -> BinaryTreeNode:
    """Rebuild a tree from :func:`flatten_tree` arrays (root is index 0)."""
    nodes = [BinaryTreeNode(label=int(label)) for label in labels]
    for i, node in enumerate(nodes):
        left, right = int(lefts[i]), int(rights[i])
        if left >= 0:
            node.left = nodes[left]
        if right >= 0:
            node.right = nodes[right]
    return nodes[0]


# -- the extracted artifact ---------------------------------------------------------


@dataclass
class ExtractedBinary:
    """Decompile + Preprocess output for one binary, in columnar form.

    Everything the Encode stage needs and nothing model-specific: the
    preprocessed trees (flattened, concatenated), per-function metadata,
    and the raw callee instruction counts so the calibration filter can be
    applied for any β at encode time.
    """

    binary_name: str
    arch: str
    names: List[str]
    ast_sizes: np.ndarray  # (n,) source-AST node counts
    callee_sizes: np.ndarray  # flattened callee instruction counts
    callee_offsets: np.ndarray  # (n + 1,) offsets into callee_sizes
    labels: np.ndarray  # flattened per-tree node labels
    lefts: np.ndarray  # tree-local child indices, -1 = absent
    rights: np.ndarray
    tree_offsets: np.ndarray  # (n + 1,) offsets into labels/lefts/rights
    n_decompiled: int = 0  # functions decompiled (pre size filter)
    n_skipped_small: int = 0
    decompile_s: float = 0.0
    preprocess_s: float = 0.0

    def __len__(self) -> int:
        return len(self.names)

    def trees(self) -> List[BinaryTreeNode]:
        out = []
        for i in range(len(self.names)):
            lo = int(self.tree_offsets[i])
            hi = int(self.tree_offsets[i + 1])
            out.append(
                unflatten_tree(
                    self.labels[lo:hi], self.lefts[lo:hi], self.rights[lo:hi]
                )
            )
        return out

    def filtered_callee_count(self, i: int, beta: int) -> int:
        """Size of function ``i``'s callee set after the inline filter."""
        lo = int(self.callee_offsets[i])
        hi = int(self.callee_offsets[i + 1])
        return int(np.count_nonzero(self.callee_sizes[lo:hi] >= beta))


def extract_binary(binary: BinaryFile, min_ast_size: int) -> ExtractedBinary:
    """Decompile + Preprocess one binary (the pipeline's CPU-bound stages).

    Deterministic: function order follows the binary's function table, so
    serial and worker-pool executions produce identical artifacts.
    """
    started = time.perf_counter()
    fns = decompile_stage(binary)
    decompile_s = time.perf_counter() - started

    started = time.perf_counter()
    names: List[str] = []
    ast_sizes: List[int] = []
    callee_sizes: List[int] = []
    callee_offsets: List[int] = [0]
    labels: List[int] = []
    lefts: List[int] = []
    rights: List[int] = []
    tree_offsets: List[int] = [0]
    n_skipped = 0
    for fn in fns:
        tree = preprocess_one(fn, min_ast_size)
        if tree is None:
            n_skipped += 1
            continue
        tree_labels, tree_lefts, tree_rights = flatten_tree(tree)
        names.append(fn.name)
        ast_sizes.append(fn.ast_size())
        callee_sizes.extend(size for _name, size in fn.callees)
        callee_offsets.append(len(callee_sizes))
        labels.extend(tree_labels)
        lefts.extend(tree_lefts)
        rights.extend(tree_rights)
        tree_offsets.append(len(labels))
    preprocess_s = time.perf_counter() - started

    return ExtractedBinary(
        binary_name=binary.name,
        arch=binary.arch,
        names=names,
        ast_sizes=np.asarray(ast_sizes, dtype=np.int64),
        callee_sizes=np.asarray(callee_sizes, dtype=np.int64),
        callee_offsets=np.asarray(callee_offsets, dtype=np.int64),
        labels=np.asarray(labels, dtype=np.int64),
        lefts=np.asarray(lefts, dtype=np.int64),
        rights=np.asarray(rights, dtype=np.int64),
        tree_offsets=np.asarray(tree_offsets, dtype=np.int64),
        n_decompiled=len(fns),
        n_skipped_small=n_skipped,
        decompile_s=decompile_s,
        preprocess_s=preprocess_s,
    )


def encode_stage(
    model: Asteria,
    extracted: ExtractedBinary,
    batch_size: int = DEFAULT_ENCODE_BATCH_SIZE,
    plan=None,
    dtype: str = "float64",
    block: int = 0,
    registry=None,
) -> List[FunctionEncoding]:
    """Encode stage: cached trees -> encodings via the level-batched engine.

    Bit-for-bit identical to encoding the same trees in any other chunking
    (the engine issues fixed-size GEMM blocks), which is what lets warm
    cache hits, serial runs and worker-pool runs interchange freely.

    ``plan`` is an optional precompiled
    :class:`~repro.nn.treebatch.CompiledPlan` for exactly these trees
    (the pipeline's ``ctrees`` cache); without one, the trees are
    bucketed and compiled here.  ``dtype``/``block`` select the inference
    dtype and GEMM row block (see :meth:`Asteria.encode_batch`).
    """
    if not len(extracted):
        return []
    if plan is not None:
        vectors = model.encode_plan(
            plan, dtype=dtype, block=block, registry=registry
        )
    else:
        vectors = model.encode_batch(
            extracted.trees(), batch_size=batch_size,
            dtype=dtype, block=block, registry=registry,
        )
    beta = model.config.beta
    return [
        FunctionEncoding(
            name=extracted.names[i],
            arch=extracted.arch,
            binary_name=extracted.binary_name,
            vector=vectors[i].copy(),
            callee_count=extracted.filtered_callee_count(i, beta),
            ast_size=int(extracted.ast_sizes[i]),
        )
        for i in range(len(extracted))
    ]
