"""Content-addressed on-disk artifact cache for the corpus pipeline.

Three artifact kinds are cached per binary, keyed so that any input change
invalidates exactly the work it dirties:

* ``trees`` -- the Decompile + Preprocess output
  (:class:`~repro.pipeline.stages.ExtractedBinary`), keyed by the binary's
  content digest + preprocess params.  Model-independent: retraining the
  model reuses cached trees and re-runs only the Encode stage;
* ``ctrees`` -- the compiled level-indexed encode schedule
  (:class:`~repro.nn.treebatch.CompiledPlan`), keyed by binary digest +
  preprocess params + compile params (batch size, node budget,
  bucketing) but **not** the model fingerprint: a weight change re-runs
  only the GEMMs, recompiling zero trees;
* ``enc`` -- the Encode output (:class:`~repro.core.model.FunctionEncoding`
  rows), keyed by binary digest + preprocess params + the encode dtype
  **+ the model's weights fingerprint**
  (:meth:`~repro.core.model.Asteria.fingerprint`).  A warm hit skips the
  offline phase entirely.

Layout of a cache directory::

    <root>/manifest.json          versioned manifest (key -> object file)
    <root>/objects/<key>.npz      one artifact, named by its key

Object files are content-addressed (the file name *is* the key), so a
corrupt or missing manifest is recovered by rescanning ``objects/``; a
corrupt object file is dropped and treated as a miss.  Writes are
crash-safe (temp→fsync→rename) and each manifest entry records the
object's sha256, so bitrot or out-of-band truncation is detected on read
and degrades to a miss instead of corrupting downstream artifacts.
``root=None`` gives an ephemeral in-memory cache with the same API.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.binformat.binary import BinaryFile
from repro.core.model import FunctionEncoding
from repro.nn.serialize import load_state, save_state
from repro.nn.treebatch import CompiledPlan, plan_from_state, plan_to_state
from repro.pipeline.stages import ExtractedBinary
from repro.utils.fsio import atomic_write_text, commit_file, file_sha256
from repro.utils.logging import get_logger

_LOG = get_logger("pipeline.cache")

MANIFEST_NAME = "manifest.json"
FORMAT_VERSION = 1
OBJECTS_DIR = "objects"


@dataclass
class CacheStats:
    """Hit/miss/store accounting, by artifact kind."""

    tree_hits: int = 0
    tree_misses: int = 0
    ctree_hits: int = 0
    ctree_misses: int = 0
    encoding_hits: int = 0
    encoding_misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.tree_hits + self.ctree_hits + self.encoding_hits

    @property
    def misses(self) -> int:
        return self.tree_misses + self.ctree_misses + self.encoding_misses

    def minus(self, earlier: "CacheStats") -> "CacheStats":
        """The delta accumulated since an earlier snapshot."""
        return CacheStats(
            tree_hits=self.tree_hits - earlier.tree_hits,
            tree_misses=self.tree_misses - earlier.tree_misses,
            ctree_hits=self.ctree_hits - earlier.ctree_hits,
            ctree_misses=self.ctree_misses - earlier.ctree_misses,
            encoding_hits=self.encoding_hits - earlier.encoding_hits,
            encoding_misses=self.encoding_misses - earlier.encoding_misses,
            stores=self.stores - earlier.stores,
        )

    def snapshot(self) -> "CacheStats":
        return replace(self)


def binary_digest(binary: BinaryFile) -> str:
    """Content digest of a binary (the cache's primary key component)."""
    return hashlib.sha256(binary.to_bytes()).hexdigest()


def artifact_key(kind: str, digest: str, params: Dict) -> str:
    """Content address of one artifact: kind + binary digest + params."""
    hasher = hashlib.sha256()
    hasher.update(kind.encode("utf-8"))
    hasher.update(b"|")
    hasher.update(digest.encode("utf-8"))
    hasher.update(b"|")
    hasher.update(json.dumps(params, sort_keys=True).encode("utf-8"))
    return f"{kind}-{hasher.hexdigest()[:40]}"


class ArtifactCache:
    """Content-addressed store of per-binary pipeline artifacts."""

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else None
        self.stats = CacheStats()
        # key -> {"file": name under objects/, "sha256": hexdigest};
        # sha256 may be absent for entries written before checksums
        self._entries: Dict[str, Dict[str, str]] = {}
        self._mem: Dict[str, Tuple[Dict, Dict]] = {}
        self._dirty = False
        if self.root is not None:
            (self.root / OBJECTS_DIR).mkdir(parents=True, exist_ok=True)
            self._load_manifest()

    @classmethod
    def in_memory(cls) -> "ArtifactCache":
        """An ephemeral cache: same API, nothing touches disk."""
        return cls(None)

    def __len__(self) -> int:
        return len(self._mem) if self.root is None else len(self._entries)

    # -- manifest ----------------------------------------------------------

    def _load_manifest(self) -> None:
        path = self.root / MANIFEST_NAME
        if not path.exists():
            if any((self.root / OBJECTS_DIR).glob("*.npz")):
                self._recover("manifest missing")
            else:
                self._write_manifest()
            return
        try:
            manifest = json.loads(path.read_text())
            version = manifest.get("format_version")
            if version != FORMAT_VERSION:
                raise ValueError(f"unsupported format_version {version!r}")
            entries = manifest["entries"]
            if not isinstance(entries, dict):
                raise ValueError("entries is not an object")
            self._entries = {
                str(k): self._normalize_entry(v) for k, v in entries.items()
            }
        except (ValueError, KeyError, TypeError) as exc:
            self._recover(f"unreadable manifest: {exc}")

    @staticmethod
    def _normalize_entry(value) -> Dict[str, str]:
        """Accept both entry shapes: pre-checksum manifests mapped key ->
        file name (a plain string); current ones map key -> object."""
        if isinstance(value, str):
            return {"file": value}
        if isinstance(value, dict) and isinstance(value.get("file"), str):
            entry = {"file": value["file"]}
            if isinstance(value.get("sha256"), str):
                entry["sha256"] = value["sha256"]
            return entry
        raise ValueError(f"bad manifest entry {value!r}")

    def _recover(self, reason: str) -> None:
        """Rebuild the manifest by scanning ``objects/``.

        Object files are named by their content-address key, so the scan
        recovers every previously stored artifact (checksums are
        recomputed from the surviving bytes).
        """
        _LOG.warning("recovering cache manifest at %s (%s)", self.root, reason)
        self._entries = {
            path.stem: {"file": path.name, "sha256": file_sha256(path)}
            for path in sorted((self.root / OBJECTS_DIR).glob("*.npz"))
            if not path.stem.endswith(".tmp")
        }
        self._write_manifest()

    def _write_manifest(self) -> None:
        manifest = {
            "format_version": FORMAT_VERSION,
            "entries": self._entries,
        }
        atomic_write_text(
            self.root / MANIFEST_NAME,
            json.dumps(manifest, indent=2, sort_keys=True),
        )
        self._dirty = False

    def flush(self) -> None:
        """Persist manifest entries accumulated by :meth:`put`.

        Called by the pipeline once per run; an unflushed crash loses only
        the manifest, which :meth:`_recover` rebuilds from ``objects/``.
        """
        if self.root is not None and self._dirty:
            self._write_manifest()

    # -- raw get/put -------------------------------------------------------

    def get(self, key: str) -> Optional[Tuple[Dict, Dict]]:
        """Look up one artifact as ``(state, meta)``; None on miss.

        An object whose bytes no longer match the recorded checksum is
        treated exactly like an unreadable one: dropped and reported as a
        miss, so corruption costs a recompute, never a wrong artifact.
        """
        if self.root is None:
            return self._mem.get(key)
        entry = self._entries.get(key)
        if entry is None:
            return None
        name = entry["file"]
        path = self.root / OBJECTS_DIR / name
        try:
            expected = entry.get("sha256")
            if expected is not None and file_sha256(path) != expected:
                raise ValueError("checksum mismatch")
            return load_state(path)
        except Exception as exc:
            _LOG.warning("dropping unreadable cache object %s: %s", name, exc)
            self._entries.pop(key, None)
            try:
                # delete the object too, or a manifest recovery would
                # rescan it right back in
                path.unlink()
            except OSError:
                pass
            self._write_manifest()
            return None

    def put(self, key: str, state: Dict[str, np.ndarray], meta: Dict) -> None:
        """Store one artifact (atomically: tmp write + fsync + rename).

        The manifest entry is buffered until :meth:`flush` so bulk stores
        do not rewrite the manifest once per artifact.
        """
        self.stats.stores += 1
        if self.root is None:
            self._mem[key] = (dict(state), dict(meta))
            return
        name = f"{key}.npz"
        target = self.root / OBJECTS_DIR / name
        tmp = self.root / OBJECTS_DIR / f"{key}.tmp.npz"
        save_state(tmp, state, meta=meta)
        digest = file_sha256(tmp)
        # crash window: object bytes durable but unpublished -- reopen
        # sees a miss for this key and recomputes, never a torn object
        commit_file(tmp, target, failpoint="cache.put.pre_rename")
        self._entries[key] = {"file": name, "sha256": digest}
        self._dirty = True

    # -- typed artifacts ---------------------------------------------------

    @staticmethod
    def _tree_params(min_ast_size: int) -> Dict:
        return {"min_ast_size": int(min_ast_size), "v": 1}

    @staticmethod
    def _ctree_params(
        min_ast_size: int, batch_size: int, node_budget: int, bucketed: bool
    ) -> Dict:
        return {
            "min_ast_size": int(min_ast_size),
            "batch_size": int(batch_size),
            "node_budget": int(node_budget),
            "bucketed": bool(bucketed),
            "v": 1,
        }

    @staticmethod
    def _encoding_params(
        model_fingerprint: str, min_ast_size: int, dtype: str = "float64"
    ) -> Dict:
        return {
            "min_ast_size": int(min_ast_size),
            "model": model_fingerprint,
            "dtype": str(dtype),
            "v": 1,
        }

    def get_trees(
        self, digest: str, min_ast_size: int
    ) -> Optional[ExtractedBinary]:
        key = artifact_key("trees", digest, self._tree_params(min_ast_size))
        found = self.get(key)
        if found is None:
            self.stats.tree_misses += 1
            return None
        self.stats.tree_hits += 1
        state, meta = found
        return ExtractedBinary(
            binary_name=meta["binary_name"],
            arch=meta["arch"],
            names=list(meta["names"]),
            ast_sizes=np.asarray(state["ast_sizes"], dtype=np.int64),
            callee_sizes=np.asarray(state["callee_sizes"], dtype=np.int64),
            callee_offsets=np.asarray(state["callee_offsets"], dtype=np.int64),
            labels=np.asarray(state["labels"], dtype=np.int64),
            lefts=np.asarray(state["lefts"], dtype=np.int64),
            rights=np.asarray(state["rights"], dtype=np.int64),
            tree_offsets=np.asarray(state["tree_offsets"], dtype=np.int64),
            n_decompiled=int(meta["n_decompiled"]),
            n_skipped_small=int(meta["n_skipped_small"]),
        )

    def put_trees(
        self, digest: str, min_ast_size: int, extracted: ExtractedBinary
    ) -> None:
        key = artifact_key("trees", digest, self._tree_params(min_ast_size))
        self.put(
            key,
            {
                "ast_sizes": extracted.ast_sizes,
                "callee_sizes": extracted.callee_sizes,
                "callee_offsets": extracted.callee_offsets,
                "labels": extracted.labels,
                "lefts": extracted.lefts,
                "rights": extracted.rights,
                "tree_offsets": extracted.tree_offsets,
            },
            meta={
                "binary_name": extracted.binary_name,
                "arch": extracted.arch,
                "names": list(extracted.names),
                "n_decompiled": extracted.n_decompiled,
                "n_skipped_small": extracted.n_skipped_small,
            },
        )

    def get_ctrees(
        self,
        digest: str,
        min_ast_size: int,
        batch_size: int,
        node_budget: int,
        bucketed: bool = True,
    ) -> Optional[CompiledPlan]:
        """Cached compiled encode plan for one binary; None on miss.

        Keyed by tree digest + compile params only -- deliberately not by
        the model fingerprint, so a weight change reuses the plan and
        recompiles nothing.
        """
        key = artifact_key(
            "ctrees", digest,
            self._ctree_params(min_ast_size, batch_size, node_budget, bucketed),
        )
        found = self.get(key)
        if found is None:
            self.stats.ctree_misses += 1
            return None
        self.stats.ctree_hits += 1
        state, _meta = found
        return plan_from_state(state)

    def put_ctrees(
        self,
        digest: str,
        min_ast_size: int,
        batch_size: int,
        node_budget: int,
        plan: CompiledPlan,
        bucketed: bool = True,
    ) -> None:
        key = artifact_key(
            "ctrees", digest,
            self._ctree_params(min_ast_size, batch_size, node_budget, bucketed),
        )
        self.put(key, plan_to_state(plan), meta={"n_trees": plan.n_trees})

    def get_encodings(
        self,
        digest: str,
        model_fingerprint: str,
        min_ast_size: int,
        dtype: str = "float64",
    ) -> Optional[Tuple[List[FunctionEncoding], int]]:
        """Cached encodings for one binary, plus its skipped-function count."""
        key = artifact_key(
            "enc", digest,
            self._encoding_params(model_fingerprint, min_ast_size, dtype),
        )
        found = self.get(key)
        if found is None:
            self.stats.encoding_misses += 1
            return None
        self.stats.encoding_hits += 1
        state, meta = found
        vectors = np.asarray(state["vectors"])
        callee_counts = np.asarray(state["callee_counts"], dtype=np.int64)
        ast_sizes = np.asarray(state["ast_sizes"], dtype=np.int64)
        encodings = [
            FunctionEncoding(
                name=name,
                arch=meta["arch"],
                binary_name=meta["binary_name"],
                vector=vectors[i].copy(),
                callee_count=int(callee_counts[i]),
                ast_size=int(ast_sizes[i]),
            )
            for i, name in enumerate(meta["names"])
        ]
        return encodings, int(meta["n_skipped_small"])

    def put_encodings(
        self,
        digest: str,
        model_fingerprint: str,
        min_ast_size: int,
        binary_name: str,
        arch: str,
        encodings: List[FunctionEncoding],
        n_skipped_small: int = 0,
        dtype: str = "float64",
    ) -> None:
        key = artifact_key(
            "enc", digest,
            self._encoding_params(model_fingerprint, min_ast_size, dtype),
        )
        if encodings:
            vectors = np.stack([np.asarray(e.vector) for e in encodings])
        else:
            vectors = np.zeros((0, 0))
        self.put(
            key,
            {
                "vectors": vectors,
                "callee_counts": np.asarray(
                    [e.callee_count for e in encodings], dtype=np.int64
                ),
                "ast_sizes": np.asarray(
                    [e.ast_size for e in encodings], dtype=np.int64
                ),
            },
            meta={
                "binary_name": binary_name,
                "arch": arch,
                "names": [e.name for e in encodings],
                "n_skipped_small": int(n_skipped_small),
            },
        )
