"""Function disassembly.

Decodes a :class:`~repro.binformat.binary.FunctionRecord`'s bytes back into
an :class:`~repro.compiler.codegen.AsmFunction`, reconstructing branch
labels (``loc_N``) and resolving call-symbol indices to names -- or to
``sub_<address>`` placeholders when the binary is stripped, matching the
paper's description of IDA's behaviour on the Firmware dataset.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.binformat.binary import BinaryFile, FunctionRecord
from repro.binformat.encoding import EncodingError, decode_instructions
from repro.compiler.codegen import AsmFunction, Instruction, Lab
from repro.compiler.isa import get_isa


class DisassemblyError(Exception):
    """Raised when bytes cannot be decoded into instructions."""


def disassemble_function(binary: BinaryFile, record: FunctionRecord) -> AsmFunction:
    """Disassemble one function of a binary."""
    isa = get_isa(binary.arch)

    def symbol_name(index: int) -> str:
        if index >= len(binary.functions):
            raise DisassemblyError(f"symbol index {index} out of range")
        return binary.functions[index].display_name()

    try:
        instructions, branch_targets = decode_instructions(
            record.code, isa, symbol_name, binary.string_at
        )
    except EncodingError as exc:
        raise DisassemblyError(
            f"cannot decode {record.display_name()}: {exc}"
        ) from exc

    # Rebuild label names from raw target indices.
    labels: Dict[str, int] = {}
    target_to_label: Dict[int, str] = {}
    for target in sorted(set(branch_targets.values())):
        label = f"loc_{target}"
        target_to_label[target] = label
        labels[label] = target
    rewritten: List[Instruction] = []
    for instr in instructions:
        if any(isinstance(op, Lab) for op in instr.operands):
            operands = tuple(
                Lab(target_to_label[int(op.name)]) if isinstance(op, Lab) else op
                for op in instr.operands
            )
            instr = replace(instr, operands=operands)
        rewritten.append(instr)
    return AsmFunction(
        name=record.display_name(),
        arch=binary.arch,
        frame=record.frame,
        instructions=rewritten,
        labels=labels,
    )


def disassemble_binary(binary: BinaryFile) -> List[AsmFunction]:
    """Disassemble every function in a binary."""
    return [disassemble_function(binary, record) for record in binary.functions]
