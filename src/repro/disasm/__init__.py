"""Disassembler: RBIN bytes back to symbolic assembly."""

from repro.disasm.disassembler import (
    disassemble_binary,
    disassemble_function,
    DisassemblyError,
)

__all__ = ["disassemble_binary", "disassemble_function", "DisassemblyError"]
