"""The end-to-end Asteria model.

:class:`Asteria` bundles the Tree-LSTM encoder, the Siamese head, the
preprocessing settings and the calibration parameters behind one API:

* :meth:`Asteria.encode` -- offline phase: AST -> encoding vector;
* :meth:`Asteria.encode_function` -- offline phase for a decompiled
  function (vector + filtered callee count);
* :meth:`Asteria.ast_similarity` / :meth:`Asteria.similarity` -- online
  phase on cached encodings, with and without calibration;
* :meth:`Asteria.save` / :meth:`Asteria.load` -- checkpointing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.calibration import (
    DEFAULT_BETA,
    calibrated_similarity,
    filtered_callee_count,
)
from repro.core.labels import NUM_LABELS
from repro.core.preprocess import DEFAULT_MIN_AST_SIZE, preprocess_ast
from repro.core.siamese import SiameseClassifier, SiameseRegression
from repro.decompiler.hexrays import DecompiledFunction
from repro.lang.nodes import Node
from repro.nn.serialize import load_state, save_state
from repro.nn.tensor import no_grad
from repro.nn.treebatch import (
    CompiledPlan,
    compile_plan as _compile_tree_plan,
    encode_plan as _encode_tree_plan,
    resolve_block,
)
from repro.nn.treelstm import BinaryTreeLSTM, BinaryTreeNode
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    FRACTION_BUCKETS,
    MetricsRegistry,
)

#: Default number of trees stacked per level-batched encode call.  Large
#: enough to amortise per-level Python overhead into full GEMMs, small
#: enough to keep the flattened state buffers cache-friendly.
DEFAULT_ENCODE_BATCH_SIZE = 64

#: Default dtype of the batched inference path.  float64 is the reference
#: (bit-for-bit comparable with the sequential encoder); "float32" is the
#: fast path -- weights cast once per call, ~2x throughput, rankings
#: preserved (top-10 overlap vs float64 asserted by the test suite).
DEFAULT_ENCODE_DTYPE = "float64"


@dataclass
class AsteriaConfig:
    """Hyperparameters (defaults follow the paper's chosen settings)."""

    embedding_dim: int = 16
    hidden_dim: int = 64
    leaf_init: str = "zero"  # Figure 9: all-zeros beats all-ones
    head: str = "classification"  # Figure 9: beats "regression"
    min_ast_size: int = DEFAULT_MIN_AST_SIZE
    beta: int = DEFAULT_BETA
    seed: int = 0


@dataclass
class FunctionEncoding:
    """Cached offline-phase output for one function."""

    name: str
    arch: str
    binary_name: str
    vector: np.ndarray
    callee_count: int
    ast_size: int = 0


class Asteria:
    """The full model: encoder + Siamese head + calibration."""

    def __init__(self, config: Optional[AsteriaConfig] = None):
        self.config = config or AsteriaConfig()
        self.encoder = BinaryTreeLSTM(
            num_labels=NUM_LABELS,
            embedding_dim=self.config.embedding_dim,
            hidden_dim=self.config.hidden_dim,
            leaf_init=self.config.leaf_init,
            seed=self.config.seed,
        )
        if self.config.head == "classification":
            self.siamese = SiameseClassifier(self.encoder, seed=self.config.seed)
        elif self.config.head == "regression":
            self.siamese = SiameseRegression(self.encoder)
        else:
            raise ValueError(f"unknown head {self.config.head!r}")

    # -- offline phase -------------------------------------------------------

    def preprocess(self, ast: Node) -> BinaryTreeNode:
        return preprocess_ast(ast, self.config.min_ast_size)

    def encode_tree(self, tree: BinaryTreeNode) -> np.ndarray:
        """Encode a preprocessed binary tree to a vector."""
        with no_grad():
            return self.encoder(tree).data.copy()

    def encode(self, ast: Node) -> np.ndarray:
        """Preprocess + encode an AST."""
        return self.encode_tree(self.preprocess(ast))

    def encode_function(self, fn: DecompiledFunction) -> FunctionEncoding:
        """Offline phase for one decompiled function."""
        vector = self.encode(fn.ast)
        return FunctionEncoding(
            name=fn.name,
            arch=fn.arch,
            binary_name=fn.binary_name,
            vector=vector,
            callee_count=filtered_callee_count(fn.callees, self.config.beta),
            ast_size=fn.ast_size(),
        )

    def compile_plan(
        self,
        trees: Sequence[BinaryTreeNode],
        batch_size: int = DEFAULT_ENCODE_BATCH_SIZE,
        node_budget: int = 0,
        bucketed: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> CompiledPlan:
        """Bucket + compile trees into a model-independent encode plan.

        The scheduler stably sorts trees by node count and cuts chunks at
        ``batch_size`` trees or ``node_budget`` nodes (0 = the resolved
        default), so similarly-sized trees share chunks and the flattened
        state buffers stay cache-resident at any caller batch width.  The
        plan holds tree structure only -- no weights -- so the pipeline
        caches it across model changes (``ctrees`` artifacts).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        plan = _compile_tree_plan(trees, batch_size, node_budget, bucketed)
        if registry is not None and plan.chunks:
            fill = registry.histogram(
                "repro_encode_batch_fill",
                "Scheduler chunk fill ratio (trees per chunk / batch size)",
                buckets=FRACTION_BUCKETS,
            )
            for chunk in plan.chunks:
                fill.observe(len(chunk.indices) / batch_size)
        return plan

    def encode_plan(
        self,
        plan: CompiledPlan,
        dtype=DEFAULT_ENCODE_DTYPE,
        block: int = 0,
        registry: Optional[MetricsRegistry] = None,
    ) -> np.ndarray:
        """Encode a :meth:`compile_plan` result to input-order vectors."""
        dt = np.dtype(dtype)
        observer = None
        if registry is not None:
            registry.counter(
                "repro_encode_trees_total",
                "Trees encoded by the level-batched inference path",
            ).inc(plan.n_trees)
            registry.gauge(
                "repro_encode_block_rows",
                "GEMM row-block size the encoder is using",
            ).set(resolve_block(block, self.config.hidden_dim, dt))
            level_seconds = registry.histogram(
                "repro_encode_level_seconds",
                "Seconds per evaluated Tree-LSTM level",
                buckets=DEFAULT_LATENCY_BUCKETS,
            )
            observer = lambda _rows, seconds: level_seconds.observe(seconds)
        return _encode_tree_plan(
            self.encoder, plan, dtype=dt, block=block, observer=observer
        )

    def encode_batch(
        self,
        trees: Sequence[BinaryTreeNode],
        batch_size: int = DEFAULT_ENCODE_BATCH_SIZE,
        *,
        dtype=DEFAULT_ENCODE_DTYPE,
        block: int = 0,
        node_budget: int = 0,
        bucketed: bool = True,
        registry: Optional[MetricsRegistry] = None,
    ) -> np.ndarray:
        """Encode preprocessed trees to a ``(n, h)`` matrix, level-batched.

        Same-level nodes across all trees of a chunk are evaluated as
        stacked GEMMs (:mod:`repro.nn.treebatch`), which is what makes
        corpus-scale ingest throughput viable; per-tree
        :meth:`encode_tree` remains as the sequential reference.  Chunks
        are size-bucketed (see :meth:`compile_plan`); results are
        bit-for-bit independent of ``batch_size`` and bucketing.
        ``dtype="float32"`` selects the fast inference path, ``block``
        overrides the GEMM row-block size (0 = auto).
        """
        return self.encode_plan(
            self.compile_plan(
                trees, batch_size, node_budget, bucketed, registry=registry
            ),
            dtype=dtype,
            block=block,
            registry=registry,
        )

    def encode_functions(
        self,
        fns: Sequence[DecompiledFunction],
        batch_size: int = DEFAULT_ENCODE_BATCH_SIZE,
        *,
        dtype=DEFAULT_ENCODE_DTYPE,
        block: int = 0,
    ) -> List[FunctionEncoding]:
        """Offline phase for many functions through the batched encoder."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        trees = [self.preprocess(fn.ast) for fn in fns]
        vectors = self.encode_batch(
            trees, batch_size, dtype=dtype, block=block
        )
        return [
            FunctionEncoding(
                name=fn.name,
                arch=fn.arch,
                binary_name=fn.binary_name,
                vector=vectors[i].copy(),
                callee_count=filtered_callee_count(
                    fn.callees, self.config.beta
                ),
                ast_size=fn.ast_size(),
            )
            for i, fn in enumerate(fns)
        ]

    # -- online phase ------------------------------------------------------------

    def ast_similarity(self, v1: np.ndarray, v2: np.ndarray) -> float:
        """M(T1, T2) from cached encoding vectors (no calibration)."""
        return self.siamese.similarity_from_vectors(v1, v2)

    def similarity(
        self, e1: FunctionEncoding, e2: FunctionEncoding, calibrate: bool = True
    ) -> float:
        """F(F1, F2) = M(T1, T2) x S(C1, C2) (or just M with calibrate=False).

        ``calibrate=False`` is the paper's Asteria-WOC ablation.
        """
        m = self.ast_similarity(e1.vector, e2.vector)
        if not calibrate:
            return m
        return calibrated_similarity(m, e1.callee_count, e2.callee_count)

    def similarity_batch(
        self,
        query: FunctionEncoding,
        vectors: np.ndarray,
        callee_counts: Optional[np.ndarray] = None,
        calibrate: bool = True,
    ) -> np.ndarray:
        """F(query, corpus) for a whole ``(n, h)`` encoding matrix at once.

        The matrix-at-once analogue of :meth:`similarity`: one broadcasted
        pass through the Siamese head plus a vectorised calibration term.
        ``callee_counts`` must align row-for-row with ``vectors`` when
        ``calibrate`` is set.
        """
        return self.similarity_matrix(
            [query], vectors, callee_counts, calibrate=calibrate
        )[0]

    def similarity_matrix(
        self,
        queries: Sequence[FunctionEncoding],
        vectors: np.ndarray,
        callee_counts: Optional[np.ndarray] = None,
        calibrate: bool = True,
    ) -> np.ndarray:
        """F(queries, corpus) as one ``(q, n)`` score matrix.

        The matrix-matrix form of :meth:`similarity_batch`: Q query
        encodings are scored against an ``(n, h)`` corpus matrix in one
        broadcasted pass through the Siamese head (batched GEMMs against
        the head weights) plus a vectorised ``(q, n)`` calibration term.
        This is what lets :meth:`AnnIndex.top_k_batch
        <repro.index.ann.AnnIndex.top_k_batch>` amortise a corpus sweep
        across every concurrent query instead of re-reading the corpus
        per query.
        """
        q_matrix = np.stack([np.asarray(q.vector) for q in queries])
        m = self.siamese.similarity_from_matrix(q_matrix, vectors)
        if not calibrate:
            return m
        if callee_counts is None:
            raise ValueError("calibrate=True requires callee_counts")
        counts = np.asarray(callee_counts, dtype=np.int64)
        q_counts = np.array(
            [q.callee_count for q in queries], dtype=np.int64
        )
        return m * np.exp(-np.abs(counts[None, :] - q_counts[:, None]))

    def compare_functions(
        self, f1: DecompiledFunction, f2: DecompiledFunction, calibrate: bool = True
    ) -> float:
        """Convenience: offline + online phases for one pair."""
        return self.similarity(
            self.encode_function(f1), self.encode_function(f2), calibrate
        )

    # -- identity ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """Hex digest of this model's config and trained weights.

        The artifact cache keys encodings by it, so any weight update or
        hyperparameter change invalidates cached encodings (but not the
        model-independent cached ASTs).
        """
        hasher = hashlib.sha256()
        hasher.update(
            json.dumps(asdict(self.config), sort_keys=True).encode("utf-8")
        )
        state = self.siamese.state_dict()
        for name in sorted(state):
            array = np.ascontiguousarray(state[name])
            hasher.update(name.encode("utf-8"))
            hasher.update(str(array.dtype).encode("utf-8"))
            hasher.update(str(array.shape).encode("utf-8"))
            hasher.update(array.tobytes())
        return hasher.hexdigest()

    # -- checkpointing ----------------------------------------------------------------

    def save(self, path) -> None:
        save_state(path, self.siamese.state_dict(), meta=asdict(self.config))

    @classmethod
    def load(cls, path) -> "Asteria":
        state, meta = load_state(path)
        model = cls(AsteriaConfig(**meta))
        model.siamese.load_state_dict(state)
        return model
