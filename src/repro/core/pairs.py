"""Ground-truth pair construction (paper §IV-B).

Functions compiled from the same source keep their names in the Buildroot
and OpenSSL datasets, so (binary name, function name) identifies a source
function: the same identity on two architectures forms a *homologous* pair
(label +1), different identities form *non-homologous* pairs (label -1).
Library leaf functions (``lib_*``) are excluded -- their bodies are
byte-identical across packages, which would inject label noise, just as the
paper excludes compiler-generated GOT functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.preprocess import DEFAULT_MIN_AST_SIZE, try_preprocess_ast
from repro.decompiler.hexrays import DecompiledFunction
from repro.nn.treelstm import BinaryTreeNode
from repro.utils.rng import RNG

ARCH_COMBINATIONS: Tuple[Tuple[str, str], ...] = (
    ("x86", "arm"),
    ("x86", "ppc"),
    ("x86", "x64"),
    ("arm", "ppc"),
    ("arm", "x64"),
    ("ppc", "x64"),
)


@dataclass
class LabeledPair:
    """A ground-truth function pair."""

    first: DecompiledFunction
    second: DecompiledFunction
    label: int  # +1 homologous, -1 non-homologous

    @property
    def arch_combo(self) -> Tuple[str, str]:
        return (self.first.arch, self.second.arch)


@dataclass
class TreePair:
    """A preprocessed pair ready for the Siamese network."""

    t1: BinaryTreeNode
    t2: BinaryTreeNode
    label: int
    first: Optional[DecompiledFunction] = None
    second: Optional[DecompiledFunction] = None


def _function_key(fn: DecompiledFunction) -> Tuple[str, str]:
    return (fn.binary_name, fn.name)


def _eligible(fn: DecompiledFunction, min_ast_size: int, exclude_prefix: str) -> bool:
    if exclude_prefix and fn.name.startswith(exclude_prefix):
        return False
    return fn.ast_size() >= min_ast_size


def index_by_identity(
    corpus: Dict[str, Sequence[DecompiledFunction]],
    min_ast_size: int = DEFAULT_MIN_AST_SIZE,
    exclude_prefix: str = "lib_",
) -> Dict[Tuple[str, str], Dict[str, DecompiledFunction]]:
    """Group a per-arch corpus by (binary, function) identity."""
    identities: Dict[Tuple[str, str], Dict[str, DecompiledFunction]] = {}
    for arch, functions in corpus.items():
        for fn in functions:
            if not _eligible(fn, min_ast_size, exclude_prefix):
                continue
            identities.setdefault(_function_key(fn), {})[arch] = fn
    return identities


def build_cross_arch_pairs(
    corpus: Dict[str, Sequence[DecompiledFunction]],
    n_pairs_per_combo: int,
    combos: Sequence[Tuple[str, str]] = ARCH_COMBINATIONS,
    negative_ratio: float = 1.0,
    min_ast_size: int = DEFAULT_MIN_AST_SIZE,
    seed: int = 0,
    exclude_prefix: str = "lib_",
) -> List[LabeledPair]:
    """Sample labelled cross-architecture pairs.

    For each architecture combination, ``n_pairs_per_combo`` homologous
    pairs are sampled (or as many as exist) plus
    ``negative_ratio * n_pairs_per_combo`` non-homologous pairs whose two
    sides come from *different* source functions on the two architectures.
    """
    rng = RNG(seed)
    identities = index_by_identity(corpus, min_ast_size, exclude_prefix)
    pairs: List[LabeledPair] = []
    for combo in combos:
        arch_a, arch_b = combo
        combo_rng = rng.child("combo", arch_a, arch_b)
        available = [
            (key, fns)
            for key, fns in identities.items()
            if arch_a in fns and arch_b in fns
        ]
        if not available:
            continue
        available.sort(key=lambda item: item[0])
        n_pos = min(n_pairs_per_combo, len(available))
        chosen = combo_rng.sample(available, n_pos)
        for _key, fns in chosen:
            pairs.append(LabeledPair(fns[arch_a], fns[arch_b], +1))
        n_neg = int(round(n_pos * negative_ratio))
        for i in range(n_neg):
            neg_rng = combo_rng.child("neg", i)
            key_a, fns_a = neg_rng.choice(available)
            key_b, fns_b = neg_rng.choice(available)
            attempts = 0
            while key_a == key_b and attempts < 16:
                key_b, fns_b = neg_rng.child("retry", attempts).choice(available)
                attempts += 1
            if key_a == key_b:
                continue
            pairs.append(LabeledPair(fns_a[arch_a], fns_b[arch_b], -1))
    rng.shuffle(pairs)
    return pairs


def to_tree_pairs(
    pairs: Sequence[LabeledPair], min_ast_size: int = DEFAULT_MIN_AST_SIZE
) -> List[TreePair]:
    """Preprocess labelled pairs for training/evaluation.

    Pairs whose ASTs fall below the size threshold are dropped, as in the
    paper's dataset construction.
    """
    out: List[TreePair] = []
    for pair in pairs:
        t1 = try_preprocess_ast(pair.first.ast, min_ast_size)
        t2 = try_preprocess_ast(pair.second.ast, min_ast_size)
        if t1 is None or t2 is None:
            continue
        out.append(
            TreePair(t1=t1, t2=t2, label=pair.label,
                     first=pair.first, second=pair.second)
        )
    return out


def split_pairs(
    pairs: Sequence, train_fraction: float = 0.8, seed: int = 0
) -> Tuple[list, list]:
    """Shuffle and split pairs (the paper uses an 8:2 train/test split)."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    items = list(pairs)
    RNG(seed).shuffle(items)
    cut = int(len(items) * train_fraction)
    return items[:cut], items[cut:]
