"""Similarity calibration with callee counts (paper §III-C, eqs. 9-10).

Homologous functions usually call the same number of functions, but
compilers inline small callees -- and do so differently across
architectures.  The calibration therefore (a) filters out callees whose
instruction count falls below a threshold β (those are the ones a compiler
might have inlined), and (b) multiplies the AST similarity by

    S(C1, C2) = exp(-|C1 - C2|)

where C1, C2 are the filtered callee counts.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

# Default β: callees shorter than this many instructions may have been
# inlined and are excluded from the callee set.  Our mini-libc leaves are
# 3-10 instructions on the RISC targets and up to ~20 on x86 (which expands
# each statement into load/op/store), so 25 excludes the plausibly-inlined
# population on every architecture.
DEFAULT_BETA = 25


def filtered_callee_count(
    callees: Sequence[Tuple[str, int]], beta: int = DEFAULT_BETA
) -> int:
    """Size of the callee set χ after the inline filter.

    ``callees`` is a sequence of (name, instruction count); call sites are
    counted with multiplicity.
    """
    return sum(1 for _name, size in callees if size >= beta)


def callee_similarity(c1: int, c2: int) -> float:
    """Equation (9): S(C1, C2) = e^{-|C1-C2|}."""
    return math.exp(-abs(c1 - c2))


def calibrated_similarity(ast_similarity: float, c1: int, c2: int) -> float:
    """Equation (10): F(F1, F2) = M(T1, T2) x S(C1, C2)."""
    return ast_similarity * callee_similarity(c1, c2)
