"""The paper's §VII proposed extension: embedding constants and strings.

Digitisation (Table I) deliberately drops constant values and string
contents; the paper's discussion notes this loses semantic signal and
proposes "another embedding system to embed constants and strings ...
and combine the embedding vectors with the AST encoding".

This module implements that extension as a score-level combination:

* :class:`ValueFeatureExtractor` turns the *raw* (pre-digitisation) AST
  into a fixed-dimension feature vector describing its literal values --
  counts, log-magnitude histogram of numeric constants, hashed character
  n-gram sketch of string literals.  These features are architecture-
  independent (literals survive compilation on every target).
* :class:`ValueAwareAsteria` augments each function encoding with the
  value features and blends the Tree-LSTM similarity M with a value-
  feature similarity V:  ``M' = (1 - w) * M + w * V``; calibration then
  applies as usual (eq. 10).

The combination adds the paper's predicted accuracy/cost trade-off: value
extraction is cheap, but encodings grow by ``feature_dim``.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.decompiler.hexrays import DecompiledFunction
from repro.lang.nodes import Node, Ops

# Feature layout: [n_numeric, n_strings] + magnitude histogram + string sketch
_MAGNITUDE_BUCKETS = 8  # |value| in [0,1), [1,10), [10,100), ...
_STRING_SKETCH = 16


@dataclass(frozen=True)
class ValueFeatures:
    """Literal-value features of one function's AST."""

    vector: np.ndarray

    @property
    def dim(self) -> int:
        return self.vector.shape[0]


FEATURE_DIM = 2 + _MAGNITUDE_BUCKETS + _STRING_SKETCH


class ValueFeatureExtractor:
    """Deterministic literal-value featurisation of raw ASTs."""

    def extract(self, ast: Node) -> ValueFeatures:
        numeric = []
        strings = []
        for node in ast.walk():
            if node.op == Ops.NUM:
                numeric.append(int(node.value))
            elif node.op == Ops.STR:
                strings.append(str(node.value))
        vector = np.zeros(FEATURE_DIM)
        vector[0] = len(numeric)
        vector[1] = len(strings)
        for value in numeric:
            magnitude = abs(value)
            bucket = 0 if magnitude < 1 else min(
                _MAGNITUDE_BUCKETS - 1, int(math.log10(magnitude)) + 1
            )
            vector[2 + bucket] += 1.0
        for text in strings:
            digest = hashlib.sha256(text.encode("utf-8")).digest()
            slot = digest[0] % _STRING_SKETCH
            vector[2 + _MAGNITUDE_BUCKETS + slot] += 1.0
        return ValueFeatures(vector=vector)

    @staticmethod
    def similarity(a: ValueFeatures, b: ValueFeatures) -> float:
        """Cosine similarity of value features, mapped to [0, 1].

        Two functions with no literals at all are vacuously similar (1.0).
        """
        norm_a = np.linalg.norm(a.vector)
        norm_b = np.linalg.norm(b.vector)
        if norm_a == 0.0 and norm_b == 0.0:
            return 1.0
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        cosine = float(a.vector @ b.vector / (norm_a * norm_b))
        return (cosine + 1.0) * 0.5


@dataclass
class ValueAwareEncoding:
    """A function encoding augmented with value features."""

    base: FunctionEncoding
    values: ValueFeatures


class ValueAwareAsteria:
    """Asteria + the constants/strings extension (paper §VII).

    ``value_weight`` blends the Tree-LSTM similarity with the value-feature
    similarity; 0 recovers plain Asteria.
    """

    def __init__(
        self,
        model: Optional[Asteria] = None,
        config: Optional[AsteriaConfig] = None,
        value_weight: float = 0.25,
    ):
        if not 0.0 <= value_weight <= 1.0:
            raise ValueError("value_weight must be in [0, 1]")
        self.model = model if model is not None else Asteria(config)
        self.value_weight = value_weight
        self.extractor = ValueFeatureExtractor()

    @property
    def config(self) -> AsteriaConfig:
        return self.model.config

    def encode_function(self, fn: DecompiledFunction) -> ValueAwareEncoding:
        return ValueAwareEncoding(
            base=self.model.encode_function(fn),
            values=self.extractor.extract(fn.ast),
        )

    def similarity(
        self,
        e1: ValueAwareEncoding,
        e2: ValueAwareEncoding,
        calibrate: bool = True,
    ) -> float:
        from repro.core.calibration import calibrated_similarity

        tree_sim = self.model.ast_similarity(e1.base.vector, e2.base.vector)
        value_sim = self.extractor.similarity(e1.values, e2.values)
        blended = (1.0 - self.value_weight) * tree_sim \
            + self.value_weight * value_sim
        if not calibrate:
            return blended
        return calibrated_similarity(
            blended, e1.base.callee_count, e2.base.callee_count
        )

    def compare_functions(
        self, f1: DecompiledFunction, f2: DecompiledFunction,
        calibrate: bool = True,
    ) -> float:
        return self.similarity(
            self.encode_function(f1), self.encode_function(f2), calibrate
        )
