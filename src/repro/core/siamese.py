"""Siamese similarity heads over Tree-LSTM encodings (paper §III-B, eq. 8).

Two heads are provided:

* :class:`SiameseClassifier` -- the paper's design:
  ``softmax(σ(cat(|v1−v2|, v1⊙v2) · W))`` with ``W ∈ R^{2h×2}``, trained as
  binary classification with BCE against one-hot labels;
* :class:`SiameseRegression` -- the cosine-distance ablation from Figure 9.

Both share *one* Tree-LSTM encoder instance (identical weights on both
branches -- the defining property of a Siamese network).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter, glorot
from repro.nn.tensor import Tensor, concat, no_grad, stable_sigmoid
from repro.nn.treelstm import BinaryTreeLSTM, BinaryTreeNode
from repro.utils.rng import RNG


class SiameseClassifier(Module):
    """The paper's classification-style Siamese network M(T1, T2).

    Note on equation (8): read literally, the paper applies a sigmoid
    *inside* the softmax -- ``softmax(σ(cat(...)·W))`` -- which bounds the
    similarity output to at most ``e/(1+e) ≈ 0.731``.  That contradicts the
    paper's own reported behaviour (a decision threshold of 0.84 in §V and
    candidate scores of exactly 1).  The default here therefore applies the
    softmax to the raw logits, matching the reported score range; pass
    ``literal_sigmoid=True`` to get the literal formula.
    """

    def __init__(self, encoder: BinaryTreeLSTM, seed: int = 0,
                 literal_sigmoid: bool = False):
        self.encoder = encoder
        self.literal_sigmoid = literal_sigmoid
        rng = RNG(seed)
        self.w = Parameter(
            glorot(rng.child("siamese_w"), (2 * encoder.hidden_dim, 2))
        )

    def forward(self, t1: BinaryTreeNode, t2: BinaryTreeNode) -> Tensor:
        """Output ``[dissimilarity, similarity]`` (a 2-probability vector)."""
        v1 = self.encoder(t1)
        v2 = self.encoder(t2)
        return self.head(v1, v2)

    def head(self, v1: Tensor, v2: Tensor) -> Tensor:
        """Equation (8) applied to two encoding vectors."""
        features = concat([(v1 - v2).abs(), v1 * v2])
        logits = features @ self.w
        if self.literal_sigmoid:
            logits = logits.sigmoid()
        return logits.softmax()

    def similarity(self, t1: BinaryTreeNode, t2: BinaryTreeNode) -> float:
        """Inference: the similarity component of the output."""
        with no_grad():
            return float(self.forward(t1, t2).data[1])

    def similarity_from_vectors(self, v1: np.ndarray, v2: np.ndarray) -> float:
        """The fast online path: equation (8) in raw numpy.

        This is what makes per-pair similarity nanosecond-to-microsecond
        scale in the paper's Figure 10(c): once functions are encoded, one
        comparison is two tiny vector ops and a 2x(2h) matmul.
        """
        features = np.concatenate([np.abs(v1 - v2), v1 * v2])
        logits = features @ self.w.data
        if self.literal_sigmoid:
            logits = 1.0 / (1.0 + np.exp(-logits))
        shifted = logits - logits.max()
        exps = np.exp(shifted)
        return float(exps[1] / exps.sum())

    def similarity_from_matrix(
        self, query: np.ndarray, vectors: np.ndarray
    ) -> np.ndarray:
        """Equation (8) for one or many queries against a corpus at once.

        ``vectors`` is an ``(n, h)`` matrix of cached encodings; ``query``
        is one vector ``(h,)`` (returns ``(n,)`` scores) or a ``(q, h)``
        query matrix (returns ``(q, n)`` scores).  The element-wise
        feature terms broadcast across all query/corpus pairs and the
        head collapses to batched GEMMs against ``W``, so Q queries cost
        one pass over the corpus instead of Q.  Arithmetic runs in the
        corpus dtype (queries are cast), which is what lets a float32
        memory-mapped corpus be scored without a float64 up-conversion
        of every block.
        """
        queries = np.asarray(query, dtype=vectors.dtype)
        single = queries.ndim == 1
        if single:
            queries = queries[None, :]
        q, n = queries.shape[0], vectors.shape[0]
        h = vectors.shape[1]
        w = self.w.data.astype(vectors.dtype, copy=False)
        scores = np.empty((q, n), dtype=vectors.dtype)
        # corpus chunks sized so the (q, b, h) |V - U| scratch tensor
        # stays cache-resident (~a few MB); the whole-corpus broadcast
        # thrashes for q >> 1 and tiny chunks waste dispatch overhead
        chunk = max(64, 800_000 // max(1, q * h))
        if self.literal_sigmoid:
            for start in range(0, n, chunk):
                block = vectors[start:start + chunk]
                diff = np.abs(queries[:, None, :] - block[None, :, :])
                logits = diff @ w[:h]  # (q, b, 2)
                # the product term does: (v ⊙ u) · w_c == (v ⊙ w_c) · u
                for c in range(w.shape[1]):
                    logits[:, :, c] += (queries * w[h:, c]) @ block.T
                logits = 1.0 / (1.0 + np.exp(-logits))
                shifted = logits - logits.max(axis=2, keepdims=True)
                exps = np.exp(shifted)
                scores[:, start:start + chunk] = (
                    exps[:, :, 1] / exps.sum(axis=2)
                )
            return scores[0] if single else scores
        # softmax over two raw logits is exactly sigmoid(l1 - l0), so the
        # head needs only the *margin* weights -- one (q, b, h)
        # contraction and one GEMM per chunk instead of two of each
        w_abs = w[:h, 1] - w[:h, 0]
        w_prod = (w[h:, 1] - w[h:, 0]) * queries  # (q, h), query-fused
        for start in range(0, n, chunk):
            block = vectors[start:start + chunk]
            diff = np.abs(queries[:, None, :] - block[None, :, :])
            margin = diff @ w_abs  # (q, b)
            margin += w_prod @ block.T
            scores[:, start:start + chunk] = stable_sigmoid(margin)
        return scores[0] if single else scores


class SiameseRegression(Module):
    """Cosine-distance Siamese head (the Figure 9 'Regression' ablation)."""

    def __init__(self, encoder: BinaryTreeLSTM):
        self.encoder = encoder

    def forward(self, t1: BinaryTreeNode, t2: BinaryTreeNode) -> Tensor:
        v1 = self.encoder(t1)
        v2 = self.encoder(t2)
        return self.head(v1, v2)

    def head(self, v1: Tensor, v2: Tensor) -> Tensor:
        """Cosine similarity rescaled to [0, 1]."""
        cosine = v1.dot(v2) / (v1.norm() * v2.norm())
        return (cosine + 1.0) * 0.5

    def similarity(self, t1: BinaryTreeNode, t2: BinaryTreeNode) -> float:
        with no_grad():
            return float(self.forward(t1, t2).data)

    def similarity_from_vectors(self, v1: np.ndarray, v2: np.ndarray) -> float:
        denom = (np.linalg.norm(v1) * np.linalg.norm(v2)) or 1e-12
        return float((v1 @ v2 / denom + 1.0) * 0.5)

    def similarity_from_matrix(
        self, query: np.ndarray, vectors: np.ndarray
    ) -> np.ndarray:
        """Batched cosine head: ``(h,)`` or ``(q, h)`` queries against
        ``(n, h)`` vectors -- one ``(q, h) @ (h, n)`` GEMM."""
        from repro.nn.graphnet import cosine_similarity_matrix

        query = np.asarray(query)
        scores = (cosine_similarity_matrix(query, vectors) + 1.0) * 0.5
        return scores[0] if query.ndim == 1 else scores
