"""Siamese similarity heads over Tree-LSTM encodings (paper §III-B, eq. 8).

Two heads are provided:

* :class:`SiameseClassifier` -- the paper's design:
  ``softmax(σ(cat(|v1−v2|, v1⊙v2) · W))`` with ``W ∈ R^{2h×2}``, trained as
  binary classification with BCE against one-hot labels;
* :class:`SiameseRegression` -- the cosine-distance ablation from Figure 9.

Both share *one* Tree-LSTM encoder instance (identical weights on both
branches -- the defining property of a Siamese network).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter, glorot
from repro.nn.tensor import Tensor, concat, no_grad
from repro.nn.treelstm import BinaryTreeLSTM, BinaryTreeNode
from repro.utils.rng import RNG


class SiameseClassifier(Module):
    """The paper's classification-style Siamese network M(T1, T2).

    Note on equation (8): read literally, the paper applies a sigmoid
    *inside* the softmax -- ``softmax(σ(cat(...)·W))`` -- which bounds the
    similarity output to at most ``e/(1+e) ≈ 0.731``.  That contradicts the
    paper's own reported behaviour (a decision threshold of 0.84 in §V and
    candidate scores of exactly 1).  The default here therefore applies the
    softmax to the raw logits, matching the reported score range; pass
    ``literal_sigmoid=True`` to get the literal formula.
    """

    def __init__(self, encoder: BinaryTreeLSTM, seed: int = 0,
                 literal_sigmoid: bool = False):
        self.encoder = encoder
        self.literal_sigmoid = literal_sigmoid
        rng = RNG(seed)
        self.w = Parameter(
            glorot(rng.child("siamese_w"), (2 * encoder.hidden_dim, 2))
        )

    def forward(self, t1: BinaryTreeNode, t2: BinaryTreeNode) -> Tensor:
        """Output ``[dissimilarity, similarity]`` (a 2-probability vector)."""
        v1 = self.encoder(t1)
        v2 = self.encoder(t2)
        return self.head(v1, v2)

    def head(self, v1: Tensor, v2: Tensor) -> Tensor:
        """Equation (8) applied to two encoding vectors."""
        features = concat([(v1 - v2).abs(), v1 * v2])
        logits = features @ self.w
        if self.literal_sigmoid:
            logits = logits.sigmoid()
        return logits.softmax()

    def similarity(self, t1: BinaryTreeNode, t2: BinaryTreeNode) -> float:
        """Inference: the similarity component of the output."""
        with no_grad():
            return float(self.forward(t1, t2).data[1])

    def similarity_from_vectors(self, v1: np.ndarray, v2: np.ndarray) -> float:
        """The fast online path: equation (8) in raw numpy.

        This is what makes per-pair similarity nanosecond-to-microsecond
        scale in the paper's Figure 10(c): once functions are encoded, one
        comparison is two tiny vector ops and a 2x(2h) matmul.
        """
        features = np.concatenate([np.abs(v1 - v2), v1 * v2])
        logits = features @ self.w.data
        if self.literal_sigmoid:
            logits = 1.0 / (1.0 + np.exp(-logits))
        shifted = logits - logits.max()
        exps = np.exp(shifted)
        return float(exps[1] / exps.sum())

    def similarity_from_matrix(
        self, query: np.ndarray, vectors: np.ndarray
    ) -> np.ndarray:
        """Equation (8) for one query against a whole corpus at once.

        ``vectors`` is an ``(n, h)`` matrix of cached encodings; the result
        is the length-``n`` vector of similarity scores.  One broadcasted
        subtract/multiply plus a single ``(n, 2h) @ (2h, 2)`` matmul replaces
        ``n`` Python-level calls to :meth:`similarity_from_vectors`.
        """
        features = np.concatenate(
            [np.abs(vectors - query), vectors * query], axis=1
        )
        logits = features @ self.w.data
        if self.literal_sigmoid:
            logits = 1.0 / (1.0 + np.exp(-logits))
        shifted = logits - logits.max(axis=1, keepdims=True)
        exps = np.exp(shifted)
        return exps[:, 1] / exps.sum(axis=1)


class SiameseRegression(Module):
    """Cosine-distance Siamese head (the Figure 9 'Regression' ablation)."""

    def __init__(self, encoder: BinaryTreeLSTM):
        self.encoder = encoder

    def forward(self, t1: BinaryTreeNode, t2: BinaryTreeNode) -> Tensor:
        v1 = self.encoder(t1)
        v2 = self.encoder(t2)
        return self.head(v1, v2)

    def head(self, v1: Tensor, v2: Tensor) -> Tensor:
        """Cosine similarity rescaled to [0, 1]."""
        cosine = v1.dot(v2) / (v1.norm() * v2.norm())
        return (cosine + 1.0) * 0.5

    def similarity(self, t1: BinaryTreeNode, t2: BinaryTreeNode) -> float:
        with no_grad():
            return float(self.forward(t1, t2).data)

    def similarity_from_vectors(self, v1: np.ndarray, v2: np.ndarray) -> float:
        denom = (np.linalg.norm(v1) * np.linalg.norm(v2)) or 1e-12
        return float((v1 @ v2 / denom + 1.0) * 0.5)

    def similarity_from_matrix(
        self, query: np.ndarray, vectors: np.ndarray
    ) -> np.ndarray:
        """Batched cosine head: one query against ``(n, h)`` vectors."""
        denom = np.linalg.norm(vectors, axis=1) * np.linalg.norm(query)
        denom = np.where(denom == 0.0, 1e-12, denom)
        return (vectors @ query / denom + 1.0) * 0.5
