"""Table-I node digitisation.

Maps every AST op to a small integer label.  The grouping follows the
paper's Table I: statement nodes 1-9, assignments 10-17, comparisons 18-23,
arithmetic 24-34, and "other" expressions from 35 up.  Constant *values* and
string *contents* are dropped during digitisation (paper §VII) -- only the
node kind survives.
"""

from __future__ import annotations

from typing import Dict

from repro.lang.nodes import Ops

NODE_LABELS: Dict[str, int] = {
    # statements (Table I rows 1-9)
    Ops.IF: 1,
    Ops.BLOCK: 2,
    Ops.FOR: 3,
    Ops.WHILE: 4,
    Ops.SWITCH: 5,
    Ops.RETURN: 6,
    Ops.GOTO: 7,
    Ops.CONTINUE: 8,
    Ops.BREAK: 9,
    # assignments (10-17)
    Ops.ASG: 10,
    Ops.ASG_OR: 11,
    Ops.ASG_XOR: 12,
    Ops.ASG_AND: 13,
    Ops.ASG_ADD: 14,
    Ops.ASG_SUB: 15,
    Ops.ASG_MUL: 16,
    Ops.ASG_DIV: 17,
    # comparisons (18-23)
    Ops.EQ: 18,
    Ops.NE: 19,
    Ops.GT: 20,
    Ops.LT: 21,
    Ops.GE: 22,
    Ops.LE: 23,
    # arithmetic (24-34; "and" rides along with the bit ops)
    Ops.OR: 24,
    Ops.XOR: 25,
    Ops.ADD: 26,
    Ops.SUB: 27,
    Ops.MUL: 28,
    Ops.DIV: 29,
    Ops.NOT: 30,
    Ops.POST_INC: 31,
    Ops.POST_DEC: 32,
    Ops.PRE_INC: 33,
    Ops.PRE_DEC: 34,
    # other (35+)
    Ops.AND: 35,
    Ops.INDEX: 36,
    Ops.VAR: 37,
    Ops.NUM: 38,
    Ops.CALL: 39,
    Ops.STR: 40,
    Ops.ASM: 41,
    Ops.CAST: 42,
    Ops.REF: 43,
    Ops.DEREF: 44,
    Ops.NEG: 45,
    Ops.LAND: 46,
    Ops.LOR: 47,
    Ops.LNOT: 48,
}

# Label 0 is reserved (padding / unknown); embeddings are sized NUM_LABELS.
NUM_LABELS: int = max(NODE_LABELS.values()) + 1


def label_of(op: str) -> int:
    """Integer label for an op name (raises ``KeyError`` on unknown ops)."""
    return NODE_LABELS[op]
