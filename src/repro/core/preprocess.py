"""AST preprocessing: digitisation and format transformation (paper §III-A).

Two steps precede Tree-LSTM encoding:

* **digitisation** -- every node is replaced by its Table-I integer label;
  variable names, constant values and string contents are dropped;
* **binarisation** -- the n-ary AST becomes a binary tree via the
  left-child right-sibling transformation: a node's first child becomes its
  left child, and each child's next sibling becomes that child's right
  child.

ASTs with fewer than ``min_size`` nodes are rejected (the paper removes AST
pairs with node count < 5).
"""

from __future__ import annotations

from typing import Optional

from repro.core.labels import label_of
from repro.lang.nodes import Node
from repro.nn.treelstm import BinaryTreeNode

DEFAULT_MIN_AST_SIZE = 5


class PreprocessError(Exception):
    """Raised when an AST cannot be preprocessed (e.g. too small)."""


def digitize(ast: Node) -> BinaryTreeNode:
    """Digitise and binarise an AST in one pass.

    The left-child right-sibling construction is done iteratively with an
    explicit worklist so arbitrarily wide/deep ASTs cannot overflow the
    Python stack.
    """
    root = BinaryTreeNode(label=label_of(ast.op))
    # worklist of (source node, produced binary node)
    worklist = [(ast, root)]
    while worklist:
        source, produced = worklist.pop()
        previous: Optional[BinaryTreeNode] = None
        for child in source.children:
            binary_child = BinaryTreeNode(label=label_of(child.op))
            if previous is None:
                produced.left = binary_child
            else:
                previous.right = binary_child
            previous = binary_child
            worklist.append((child, binary_child))
    return root


# Alias: the binarisation *is* the LCRS transform.
to_binary_tree = digitize


def preprocess_ast(
    ast: Node, min_size: int = DEFAULT_MIN_AST_SIZE
) -> BinaryTreeNode:
    """Full preprocessing; raises :class:`PreprocessError` on tiny ASTs."""
    size = ast.size()
    if size < min_size:
        raise PreprocessError(
            f"AST has {size} nodes, below the minimum of {min_size}"
        )
    return digitize(ast)


def try_preprocess_ast(
    ast: Node, min_size: int = DEFAULT_MIN_AST_SIZE
) -> Optional[BinaryTreeNode]:
    """Like :func:`preprocess_ast` but returns None instead of raising."""
    try:
        return preprocess_ast(ast, min_size)
    except PreprocessError:
        return None
