"""Asteria: AST-encoding based binary code similarity detection.

The paper's primary contribution.  Pipeline (paper Fig. 3):

1. AST extraction -- :mod:`repro.decompiler` (step 1);
2. preprocessing -- :mod:`repro.core.preprocess`: node digitisation per
   Table I and left-child right-sibling binarisation (step 2);
3. AST encoding -- Binary Tree-LSTM (:mod:`repro.nn.treelstm`) wrapped by
   :class:`~repro.core.siamese.SiameseClassifier` (steps 3-4);
4. similarity calibration with callee counts --
   :mod:`repro.core.calibration` (step 5).

:class:`~repro.core.model.Asteria` is the user-facing API tying it together.
"""

from repro.core.labels import NODE_LABELS, NUM_LABELS, label_of
from repro.core.preprocess import (
    PreprocessError,
    digitize,
    preprocess_ast,
    to_binary_tree,
)
from repro.core.siamese import SiameseClassifier, SiameseRegression
from repro.core.calibration import (
    callee_similarity,
    calibrated_similarity,
    filtered_callee_count,
)
from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.core.pairs import LabeledPair, TreePair, build_cross_arch_pairs, to_tree_pairs
from repro.core.training import TrainConfig, Trainer, TrainHistory

__all__ = [
    "NODE_LABELS",
    "NUM_LABELS",
    "label_of",
    "PreprocessError",
    "digitize",
    "preprocess_ast",
    "to_binary_tree",
    "SiameseClassifier",
    "SiameseRegression",
    "callee_similarity",
    "calibrated_similarity",
    "filtered_callee_count",
    "Asteria",
    "AsteriaConfig",
    "FunctionEncoding",
    "LabeledPair",
    "TreePair",
    "build_cross_arch_pairs",
    "to_tree_pairs",
    "TrainConfig",
    "Trainer",
    "TrainHistory",
]
