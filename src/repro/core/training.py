"""Model training (paper §IV-A).

Settings follow the paper: BCE loss on the softmax output against one-hot
labels, AdaGrad optimiser.  Calibration is *not* applied during training,
so the Tree-LSTM learns pure AST semantics.

The paper trains at batch size 1, claiming Tree-LSTM computation "depends
on each AST's shape, so batching is not possible".  That only holds along a
leaf-to-root path: same-level nodes across many trees are independent, so
:class:`TrainConfig.batch_size` > 1 routes minibatches through the
level-batched engine (:mod:`repro.nn.treebatch`) -- all ``2B`` trees of a
minibatch encode as stacked per-level GEMMs, and the mean pair loss is
backpropagated through the same analytic cell gradients.  The default of 1
preserves the paper-faithful per-pair behaviour exactly.

The trainer evaluates AUC on a held-out pair set after each epoch and keeps
the best-performing weights.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.pairs import TreePair
from repro.core.siamese import SiameseClassifier, SiameseRegression
from repro.nn.loss import bce_loss, mse_loss
from repro.nn.optim import AdaGrad, Adam, SGD
from repro.nn.tensor import no_grad
from repro.nn.treebatch import encode_batch, encode_batch_states
from repro.utils.logging import get_logger
from repro.utils.rng import RNG

_LOG = get_logger("core.training")

_OPTIMIZERS = {"adagrad": AdaGrad, "adam": Adam, "sgd": SGD}


@dataclass
class TrainConfig:
    """Training hyperparameters.

    The paper trains 60 epochs on ~1M pairs; at reproduction scale a handful
    of epochs on thousands of pairs converges, so the default is modest.

    ``batch_size`` is the number of *pairs* per optimiser step.  1 (the
    default) is the paper's setting and walks each pair's trees node by
    node; larger values stack all ``2 * batch_size`` trees through the
    level-batched encoder and step on the mean pair loss.
    """

    epochs: int = 10
    lr: float = 0.05
    optimizer: str = "adagrad"
    batch_size: int = 1
    shuffle_seed: int = 0
    log_every: int = 0  # pairs between progress logs; 0 = silent


@dataclass
class EpochStats:
    epoch: int
    mean_loss: float
    auc: Optional[float]
    seconds: float


@dataclass
class TrainHistory:
    epochs: List[EpochStats] = field(default_factory=list)
    best_auc: float = 0.0
    best_epoch: int = -1

    def losses(self) -> List[float]:
        return [e.mean_loss for e in self.epochs]


class Trainer:
    """Trains a Siamese model on preprocessed tree pairs."""

    def __init__(self, siamese, config: Optional[TrainConfig] = None):
        self.siamese = siamese
        self.config = config or TrainConfig()
        optimizer_cls = _OPTIMIZERS.get(self.config.optimizer)
        if optimizer_cls is None:
            raise ValueError(f"unknown optimizer {self.config.optimizer!r}")
        self.optimizer = optimizer_cls(siamese.parameters(), lr=self.config.lr)
        self._is_classifier = isinstance(siamese, SiameseClassifier)
        if not self._is_classifier and not isinstance(siamese, SiameseRegression):
            raise TypeError("siamese must be a SiameseClassifier or SiameseRegression")

    # -- single steps -----------------------------------------------------------

    def _pair_loss(self, output, pair: TreePair):
        """The head-appropriate loss of one pair's network output."""
        if self._is_classifier:
            target = np.array([1.0, 0.0]) if pair.label < 0 else np.array([0.0, 1.0])
            return bce_loss(output, target)
        target = 0.0 if pair.label < 0 else 1.0
        return mse_loss(output, target)

    def train_step(self, pair: TreePair) -> float:
        """One forward/backward/update on a single pair; returns the loss."""
        self.optimizer.zero_grad()
        loss = self._pair_loss(self.siamese(pair.t1, pair.t2), pair)
        loss.backward()
        self.optimizer.step()
        return float(loss.data)

    def train_step_batch(self, pairs: Sequence[TreePair]) -> float:
        """One update on a minibatch of pairs; returns the mean pair loss.

        All ``2B`` trees are encoded in one pass through the level-batched
        engine; the per-pair Siamese heads and losses (tiny ops on the root
        vectors) are then averaged into a single backward.
        """
        self.optimizer.zero_grad()
        trees = [tree for pair in pairs for tree in (pair.t1, pair.t2)]
        roots = encode_batch_states(self.siamese.encoder, trees)
        total = None
        for j, pair in enumerate(pairs):
            output = self.siamese.head(roots[2 * j], roots[2 * j + 1])
            loss = self._pair_loss(output, pair)
            total = loss if total is None else total + loss
        loss = total * (1.0 / len(pairs))
        loss.backward()
        self.optimizer.step()
        return float(loss.data)

    def score(self, pair: TreePair) -> float:
        """Inference similarity for one pair."""
        with no_grad():
            output = self.siamese(pair.t1, pair.t2)
            if self._is_classifier:
                return float(output.data[1])
            return float(output.data)

    def score_batch(self, pairs: Sequence[TreePair]) -> List[float]:
        """Inference similarities through the level-batched encoder.

        Equivalent to ``[self.score(p) for p in pairs]`` but encodes all
        trees of each chunk as stacked GEMMs, so epoch-end evaluation keeps
        pace with minibatched training.
        """
        chunk_size = max(self.config.batch_size, 32)
        scores: List[float] = []
        for start in range(0, len(pairs), chunk_size):
            chunk = pairs[start:start + chunk_size]
            trees = [tree for pair in chunk for tree in (pair.t1, pair.t2)]
            roots = encode_batch(self.siamese.encoder, trees)
            scores.extend(
                self.siamese.similarity_from_vectors(
                    roots[2 * j], roots[2 * j + 1]
                )
                for j in range(len(chunk))
            )
        return scores

    # -- full loop ------------------------------------------------------------------

    def train(
        self,
        train_pairs: Sequence[TreePair],
        eval_pairs: Sequence[TreePair] = (),
    ) -> TrainHistory:
        """Run the configured number of epochs, tracking best-AUC weights."""
        from repro.evalsuite.metrics import roc_auc

        if self.config.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        history = TrainHistory()
        best_state = None
        rng = RNG(self.config.shuffle_seed)
        order = list(train_pairs)
        batch_size = self.config.batch_size
        for epoch in range(self.config.epochs):
            started = time.perf_counter()
            rng.child("epoch", epoch).shuffle(order)
            losses = []
            if batch_size == 1:
                for i, pair in enumerate(order):
                    losses.append(self.train_step(pair))
                    if self.config.log_every and (i + 1) % self.config.log_every == 0:
                        _LOG.info(
                            "epoch %d: %d/%d pairs, mean loss %.4f",
                            epoch, i + 1, len(order), float(np.mean(losses)),
                        )
            else:
                seen = 0
                next_log = self.config.log_every
                for start in range(0, len(order), batch_size):
                    batch = order[start:start + batch_size]
                    # one entry per pair so epoch means stay per-pair means
                    # even when the final batch is a short remainder
                    losses.extend([self.train_step_batch(batch)] * len(batch))
                    seen += len(batch)
                    if self.config.log_every and seen >= next_log:
                        next_log += self.config.log_every
                        _LOG.info(
                            "epoch %d: %d/%d pairs, mean loss %.4f",
                            epoch, seen, len(order), float(np.mean(losses)),
                        )
            auc = None
            if eval_pairs:
                # the per-pair path stays literal at the paper's batch size 1
                if batch_size == 1:
                    scores = [self.score(p) for p in eval_pairs]
                else:
                    scores = self.score_batch(eval_pairs)
                labels = [1 if p.label > 0 else 0 for p in eval_pairs]
                auc = roc_auc(labels, scores)
                if auc > history.best_auc:
                    history.best_auc = auc
                    history.best_epoch = epoch
                    best_state = self.siamese.state_dict()
            history.epochs.append(
                EpochStats(
                    epoch=epoch,
                    mean_loss=float(np.mean(losses)) if losses else 0.0,
                    auc=auc,
                    seconds=time.perf_counter() - started,
                )
            )
            _LOG.info(
                "epoch %d done: loss=%.4f auc=%s",
                epoch, history.epochs[-1].mean_loss,
                f"{auc:.4f}" if auc is not None else "n/a",
            )
        if best_state is not None:
            self.siamese.load_state_dict(best_state)
        return history
