"""Binary Tree-LSTM (Tai et al. 2015), equations (1)-(7) of the paper.

Encodes binary trees bottom-up.  Each node combines its embedding ``e_k``
with the hidden/cell states of its left and right children through input,
output, and *two* forget gates (one per child), exactly as in the paper:

    f_kl = σ(W_f e_k + U_f_ll h_kl + U_f_lr h_kr + b_f)          (1)
    f_kr = σ(W_f e_k + U_f_rl h_kl + U_f_rr h_kr + b_f)          (2)
    i_k  = σ(W_i e_k + U_i_l h_kl + U_i_r h_kr + b_i)            (3)
    o_k  = σ(W_o e_k + U_o_l h_kl + U_o_r h_kr + b_o)            (4)
    u_k  = tanh(W_u e_k + U_u_l h_kl + U_u_r h_kr + b_u)         (5)
    c_k  = i_k ⊙ u_k + c_kl ⊙ f_kl + c_kr ⊙ f_kr                 (6)
    h_k  = o_k ⊙ tanh(c_k)                                       (7)

Leaf children states are initialised to all-zeros by default (the paper's
Figure 9 ablation compares all-zeros against all-ones; both are supported
via ``leaf_init``).  Encoding is iterative (explicit post-order stack) so
deep LCRS spines cannot overflow Python's recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.nn.layers import Embedding
from repro.nn.module import Module, Parameter, glorot
from repro.nn.tensor import Tensor, stable_sigmoid
from repro.utils.rng import RNG

# Overflow-free logistic (sign-split form); the naive 1/(1+exp(-x)) emits
# RuntimeWarnings for strongly negative pre-activations.
_sigmoid = stable_sigmoid


@dataclass
class BinaryTreeNode:
    """A node of a binarised (left-child right-sibling) AST."""

    label: int
    left: Optional["BinaryTreeNode"] = None
    right: Optional["BinaryTreeNode"] = None

    def size(self) -> int:
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            if node.left is not None:
                stack.append(node.left)
            if node.right is not None:
                stack.append(node.right)
        return count

    def postorder(self) -> Iterator["BinaryTreeNode"]:
        """Iterative post-order traversal (children before parents)."""
        stack: list = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
                continue
            stack.append((node, True))
            if node.right is not None:
                stack.append((node.right, False))
            if node.left is not None:
                stack.append((node.left, False))


class BinaryTreeLSTM(Module):
    """The AST encoder network N(T)."""

    def __init__(
        self,
        num_labels: int,
        embedding_dim: int = 16,
        hidden_dim: int = 64,
        leaf_init: str = "zero",
        seed: int = 0,
        fused: bool = True,
    ):
        """``fused=True`` uses the hand-derived single-op cell (an order of
        magnitude faster than the composed autograd ops, verified equivalent
        by tests); ``fused=False`` keeps the literal equation-by-equation
        reference implementation."""
        if leaf_init not in ("zero", "one"):
            raise ValueError("leaf_init must be 'zero' or 'one'")
        self.fused = fused
        rng = RNG(seed)
        self.num_labels = num_labels
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.leaf_init = leaf_init
        self.embedding = Embedding(num_labels, embedding_dim, rng.child("emb"))

        def weight(name, rows, cols):
            return Parameter(glorot(rng.child(name), (rows, cols)))

        d, h = embedding_dim, hidden_dim
        # forget gates (shared W_f/b_f, per-child-pair U matrices)
        self.w_f = weight("w_f", d, h)
        self.u_f_ll = weight("u_f_ll", h, h)
        self.u_f_lr = weight("u_f_lr", h, h)
        self.u_f_rl = weight("u_f_rl", h, h)
        self.u_f_rr = weight("u_f_rr", h, h)
        self.b_f = Parameter(np.zeros(h))
        # input gate
        self.w_i = weight("w_i", d, h)
        self.u_i_l = weight("u_i_l", h, h)
        self.u_i_r = weight("u_i_r", h, h)
        self.b_i = Parameter(np.zeros(h))
        # output gate
        self.w_o = weight("w_o", d, h)
        self.u_o_l = weight("u_o_l", h, h)
        self.u_o_r = weight("u_o_r", h, h)
        self.b_o = Parameter(np.zeros(h))
        # cached state
        self.w_u = weight("w_u", d, h)
        self.u_u_l = weight("u_u_l", h, h)
        self.u_u_r = weight("u_u_r", h, h)
        self.b_u = Parameter(np.zeros(h))

    # -- node encoding -------------------------------------------------------

    def _leaf_state(self) -> Tensor:
        if self.leaf_init == "zero":
            return Tensor(np.zeros(self.hidden_dim))
        return Tensor(np.ones(self.hidden_dim))

    def node_forward(
        self,
        e: Tensor,
        h_l: Tensor,
        h_r: Tensor,
        c_l: Tensor,
        c_r: Tensor,
    ) -> Tuple[Tensor, Tensor]:
        """One Tree-LSTM cell step; returns ``(h_k, c_k)``."""
        f_l = (e @ self.w_f + h_l @ self.u_f_ll + h_r @ self.u_f_lr
               + self.b_f).sigmoid()
        f_r = (e @ self.w_f + h_l @ self.u_f_rl + h_r @ self.u_f_rr
               + self.b_f).sigmoid()
        i = (e @ self.w_i + h_l @ self.u_i_l + h_r @ self.u_i_r
             + self.b_i).sigmoid()
        o = (e @ self.w_o + h_l @ self.u_o_l + h_r @ self.u_o_r
             + self.b_o).sigmoid()
        u = (e @ self.w_u + h_l @ self.u_u_l + h_r @ self.u_u_r
             + self.b_u).tanh()
        c = i * u + c_l * f_l + c_r * f_r
        h = o * c.tanh()
        return h, c

    def node_forward_fused(
        self,
        e: Tensor,
        h_l: Tensor,
        h_r: Tensor,
        c_l: Tensor,
        c_r: Tensor,
    ) -> Tuple[Tensor, Tensor]:
        """Fused cell: same math as :meth:`node_forward`, one autograd op.

        The forward pass computes all gates with plain numpy; the backward
        closure applies the analytically derived LSTM-cell gradients.  The
        cell returns a stacked ``(2, h)`` tensor (row 0 = h, row 1 = c) so a
        single graph node carries both outputs, then slices it.
        """
        params = (
            self.w_f, self.u_f_ll, self.u_f_lr, self.u_f_rl, self.u_f_rr,
            self.b_f, self.w_i, self.u_i_l, self.u_i_r, self.b_i,
            self.w_o, self.u_o_l, self.u_o_r, self.b_o,
            self.w_u, self.u_u_l, self.u_u_r, self.b_u,
        )
        (w_f, u_f_ll, u_f_lr, u_f_rl, u_f_rr, b_f,
         w_i, u_i_l, u_i_r, b_i,
         w_o, u_o_l, u_o_r, b_o,
         w_u, u_u_l, u_u_r, b_u) = params
        ev, hl, hr, cl, cr = (t.data for t in (e, h_l, h_r, c_l, c_r))

        e_wf = ev @ w_f.data
        f_l = _sigmoid(e_wf + hl @ u_f_ll.data + hr @ u_f_lr.data + b_f.data)
        f_r = _sigmoid(e_wf + hl @ u_f_rl.data + hr @ u_f_rr.data + b_f.data)
        i = _sigmoid(ev @ w_i.data + hl @ u_i_l.data + hr @ u_i_r.data + b_i.data)
        o = _sigmoid(ev @ w_o.data + hl @ u_o_l.data + hr @ u_o_r.data + b_o.data)
        u = np.tanh(ev @ w_u.data + hl @ u_u_l.data + hr @ u_u_r.data + b_u.data)
        c = i * u + cl * f_l + cr * f_r
        tanh_c = np.tanh(c)
        h = o * tanh_c
        out_data = np.stack([h, c])

        inputs = (e, h_l, h_r, c_l, c_r)

        def backward(grad):
            dh, dc_out = grad[0], grad[1]
            do = dh * tanh_c
            dc = dc_out + dh * o * (1.0 - tanh_c ** 2)
            di = dc * u
            du = dc * i
            df_l = dc * cl
            df_r = dc * cr
            if c_l.requires_grad:
                c_l._accumulate(dc * f_l)
            if c_r.requires_grad:
                c_r._accumulate(dc * f_r)
            dz_o = do * o * (1.0 - o)
            dz_i = di * i * (1.0 - i)
            dz_fl = df_l * f_l * (1.0 - f_l)
            dz_fr = df_r * f_r * (1.0 - f_r)
            dz_u = du * (1.0 - u ** 2)
            dz_f = dz_fl + dz_fr
            if e.requires_grad:
                e._accumulate(
                    dz_f @ w_f.data.T + dz_i @ w_i.data.T
                    + dz_o @ w_o.data.T + dz_u @ w_u.data.T
                )
            if h_l.requires_grad:
                h_l._accumulate(
                    dz_fl @ u_f_ll.data.T + dz_fr @ u_f_rl.data.T
                    + dz_i @ u_i_l.data.T + dz_o @ u_o_l.data.T
                    + dz_u @ u_u_l.data.T
                )
            if h_r.requires_grad:
                h_r._accumulate(
                    dz_fl @ u_f_lr.data.T + dz_fr @ u_f_rr.data.T
                    + dz_i @ u_i_r.data.T + dz_o @ u_o_r.data.T
                    + dz_u @ u_u_r.data.T
                )
            w_f._accumulate(np.outer(ev, dz_f))
            b_f._accumulate(dz_f)
            u_f_ll._accumulate(np.outer(hl, dz_fl))
            u_f_lr._accumulate(np.outer(hr, dz_fl))
            u_f_rl._accumulate(np.outer(hl, dz_fr))
            u_f_rr._accumulate(np.outer(hr, dz_fr))
            w_i._accumulate(np.outer(ev, dz_i))
            u_i_l._accumulate(np.outer(hl, dz_i))
            u_i_r._accumulate(np.outer(hr, dz_i))
            b_i._accumulate(dz_i)
            w_o._accumulate(np.outer(ev, dz_o))
            u_o_l._accumulate(np.outer(hl, dz_o))
            u_o_r._accumulate(np.outer(hr, dz_o))
            b_o._accumulate(dz_o)
            w_u._accumulate(np.outer(ev, dz_u))
            u_u_l._accumulate(np.outer(hl, dz_u))
            u_u_r._accumulate(np.outer(hr, dz_u))
            b_u._accumulate(dz_u)

        stacked = Tensor._op(out_data, inputs + params, backward)
        return stacked[0], stacked[1]

    # -- tree encoding ------------------------------------------------------------

    def forward(self, tree: BinaryTreeNode) -> Tensor:
        """Encode a binary tree; the root hidden state is the encoding."""
        h_root, _c_root = self.encode_states(tree)
        return h_root

    def encode_states(self, tree: BinaryTreeNode) -> Tuple[Tensor, Tensor]:
        """Encode bottom-up, returning the root ``(h, c)``.

        ``tree`` must be a tree proper: child states are keyed by node
        identity and popped when consumed, so a node reachable through two
        parents (a shared-subtree DAG) would silently reuse stale or missing
        state.  Such inputs are rejected with a :class:`ValueError` instead;
        deep-copy shared subtrees before encoding.
        """
        cell = self.node_forward_fused if self.fused else self.node_forward
        leaf = (self._leaf_state(), self._leaf_state())
        states: Dict[int, Tuple[Tensor, Tensor]] = {}
        seen = set()
        for node in tree.postorder():
            if id(node) in seen:
                raise ValueError(
                    "encode_states requires a tree, but a node is reachable "
                    "through more than one parent (shared-subtree DAGs are "
                    "unsupported; deep-copy the shared subtree first)"
                )
            seen.add(id(node))
            e = self.embedding(node.label)
            if node.left is not None:
                h_l, c_l = states.pop(id(node.left))
            else:
                h_l, c_l = leaf
            if node.right is not None:
                h_r, c_r = states.pop(id(node.right))
            else:
                h_r, c_r = leaf
            states[id(node)] = cell(e, h_l, h_r, c_l, c_r)
        return states[id(tree)]
