"""A small reverse-mode autograd library on numpy.

The environment has no PyTorch, so the paper's model stack (``nn.Embedding``,
Binary Tree-LSTM, Siamese head, ``BCELoss``, AdaGrad) is implemented here
from scratch: a :class:`Tensor` with reverse-mode automatic differentiation,
:class:`Module` containers, layers, losses, and optimisers.

The paper claims Tree-LSTM shapes prevent batching; :mod:`repro.nn.treebatch`
shows otherwise -- same-level nodes across many trees have no data
dependencies, so whole batches evaluate as stacked per-level GEMMs (with a
sequential per-tree reference path kept for verification).
"""

from repro.nn.tensor import Tensor, concat, no_grad
from repro.nn.module import Module, Parameter
from repro.nn.layers import Embedding, Linear
from repro.nn.treelstm import BinaryTreeLSTM, BinaryTreeNode
from repro.nn.treebatch import (
    CompiledBatch,
    CompiledPlan,
    WeightPack,
    compile_plan,
    compile_trees,
    encode_batch,
    encode_batch_states,
    encode_plan,
    pack_weights,
    plan_chunks,
    plan_from_state,
    plan_to_state,
    resolve_block,
    resolve_node_budget,
)
from repro.nn.graphnet import Structure2Vec
from repro.nn.loss import bce_loss, mse_loss, cosine_embedding_loss
from repro.nn.optim import SGD, AdaGrad, Adam
from repro.nn.serialize import save_state, load_state

__all__ = [
    "Tensor",
    "concat",
    "no_grad",
    "CompiledBatch",
    "CompiledPlan",
    "WeightPack",
    "compile_plan",
    "compile_trees",
    "encode_batch",
    "encode_batch_states",
    "encode_plan",
    "pack_weights",
    "plan_chunks",
    "plan_from_state",
    "plan_to_state",
    "resolve_block",
    "resolve_node_budget",
    "Module",
    "Parameter",
    "Embedding",
    "Linear",
    "BinaryTreeLSTM",
    "BinaryTreeNode",
    "Structure2Vec",
    "bce_loss",
    "mse_loss",
    "cosine_embedding_loss",
    "SGD",
    "AdaGrad",
    "Adam",
    "save_state",
    "load_state",
]
