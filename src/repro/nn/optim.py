"""Optimisers: SGD, AdaGrad (the paper's choice), and Adam."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimiser."""

    def __init__(self, parameters: Sequence[Parameter]):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer given no parameters")

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float = 0.01, momentum: float = 0.0):
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, velocity in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity -= self.lr * p.grad
                p.data = p.data + velocity
            else:
                p.data = p.data - self.lr * p.grad


class AdaGrad(Optimizer):
    """AdaGrad (Duchi et al.); the optimiser used in the paper."""

    def __init__(self, parameters, lr: float = 0.05, eps: float = 1e-10):
        super().__init__(parameters)
        self.lr = lr
        self.eps = eps
        self._accum = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, accum in zip(self.parameters, self._accum):
            if p.grad is None:
                continue
            accum += p.grad ** 2
            p.data = p.data - self.lr * p.grad / (np.sqrt(accum) + self.eps)


class Adam(Optimizer):
    """Adam (Kingma & Ba)."""

    def __init__(self, parameters, lr: float = 0.001, betas=(0.9, 0.999),
                 eps: float = 1e-8):
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * p.grad ** 2
            p.data = p.data - self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
