"""Level-batched Tree-LSTM evaluation.

The per-tree path in :mod:`repro.nn.treelstm` issues one Python-level cell
call per node, each doing tiny ``(1, d) @ (d, h)`` matmuls -- the dominant
cost of the paper's offline phase.  The paper claims batching is impossible
because "Tree-LSTM computation depends on each AST's shape"; that is only
true *within a path from leaf to root*.  Nodes at the same **level**
(distance from their deepest descendant) have no data dependencies, across
subtrees and across *different trees alike*, so a whole batch of trees can
be evaluated as one set of stacked GEMMs per level -- the standard
SPINN-style batching trick.

Three pieces:

* :func:`compile_trees` -- flattens a batch of :class:`BinaryTreeNode`\\ s
  into level-indexed numpy arrays (per level: label ids, child row indices
  with a leaf sentinel, contiguous output rows);
* :func:`encode_batch` -- the inference fast path: pure-numpy level loops
  over preallocated ``(n_nodes + 1, h)`` state buffers, zero autograd
  bookkeeping;
* :func:`encode_batch_states` -- the training path: the same level
  schedule through autograd ops whose backward generalises the fused
  cell's analytic gradients from vectors to matrices (``np.outer(x, dz)``
  becomes ``X.T @ dz``, bias gradients become row sums, child-state
  gradients scatter-add back to the producing level).

Both paths are asserted numerically equivalent to the sequential
:meth:`BinaryTreeLSTM.encode_states` reference by the test suite,
mirroring the existing ``fused=True/False`` pattern.

Like the sequential path, shared-subtree DAGs are rejected; the *same tree
object* may however appear multiple times in one batch (it is simply
re-encoded per occurrence).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.tensor import Tensor
from repro.nn.treelstm import BinaryTreeLSTM, BinaryTreeNode, _sigmoid

LEAF = -1  # sentinel level for an absent child


def _check_labels(compiled: "CompiledBatch", num_labels: int) -> None:
    """Match the sequential Embedding.forward range check (batched once)."""
    for level in compiled.levels:
        if level.labels.size and not (
            0 <= level.labels.min() and level.labels.max() < num_labels
        ):
            bad = level.labels[
                (level.labels < 0) | (level.labels >= num_labels)
            ][0]
            raise IndexError(
                f"embedding index {bad} out of range [0, {num_labels})"
            )


@dataclass
class LevelPlan:
    """All same-level nodes of a compiled batch: one GEMM set's inputs.

    ``left_level``/``left_index`` address the left child's state as (level,
    row within that level), with ``left_level == LEAF`` for absent children;
    ``left_global``/``right_global`` are the same addresses flattened into
    rows of one contiguous state buffer whose *last* row holds the leaf
    state.  ``offset`` is the level's first row in that buffer.
    """

    labels: np.ndarray
    left_level: np.ndarray
    left_index: np.ndarray
    right_level: np.ndarray
    right_index: np.ndarray
    left_global: np.ndarray
    right_global: np.ndarray
    offset: int

    @property
    def size(self) -> int:
        return len(self.labels)


@dataclass
class CompiledBatch:
    """A batch of trees flattened into a level-parallel schedule."""

    levels: List[LevelPlan]
    root_level: np.ndarray
    root_index: np.ndarray
    root_global: np.ndarray
    n_nodes: int

    @property
    def n_trees(self) -> int:
        return len(self.root_global)


def compile_trees(trees: Sequence[BinaryTreeNode]) -> CompiledBatch:
    """Flatten a batch of trees into level-indexed arrays.

    A node's level is the height of its subtree (single nodes are level 0),
    so every node's children live at strictly lower levels and each level
    can be evaluated as one stacked cell application.
    """
    labels: List[List[int]] = []
    left_refs: List[List[Tuple[int, int]]] = []
    right_refs: List[List[Tuple[int, int]]] = []
    root_refs: List[Tuple[int, int]] = []
    for tree in trees:
        ref_of: Dict[int, Tuple[int, int]] = {}
        for node in tree.postorder():
            if id(node) in ref_of:
                raise ValueError(
                    "compile_trees requires trees, but a node is reachable "
                    "through more than one parent (shared-subtree DAGs are "
                    "unsupported; deep-copy the shared subtree first)"
                )
            left = ref_of[id(node.left)] if node.left is not None else (LEAF, 0)
            right = ref_of[id(node.right)] if node.right is not None else (LEAF, 0)
            level = 1 + max(left[0], right[0])
            if level == len(labels):
                labels.append([])
                left_refs.append([])
                right_refs.append([])
            ref_of[id(node)] = (level, len(labels[level]))
            labels[level].append(node.label)
            left_refs[level].append(left)
            right_refs[level].append(right)
        root_refs.append(ref_of[id(tree)])

    offsets = np.concatenate(
        [[0], np.cumsum([len(level) for level in labels])]
    ).astype(np.int64)
    n_nodes = int(offsets[-1])

    def to_global(refs: Sequence[Tuple[int, int]]) -> np.ndarray:
        # Absent children address the leaf sentinel stored in the buffer's
        # last row (index n_nodes).
        return np.array(
            [offsets[lvl] + idx if lvl != LEAF else n_nodes
             for lvl, idx in refs],
            dtype=np.int64,
        )

    levels = []
    for lvl, level_labels in enumerate(labels):
        levels.append(
            LevelPlan(
                labels=np.array(level_labels, dtype=np.int64),
                left_level=np.array([r[0] for r in left_refs[lvl]], dtype=np.int64),
                left_index=np.array([r[1] for r in left_refs[lvl]], dtype=np.int64),
                right_level=np.array([r[0] for r in right_refs[lvl]], dtype=np.int64),
                right_index=np.array([r[1] for r in right_refs[lvl]], dtype=np.int64),
                left_global=to_global(left_refs[lvl]),
                right_global=to_global(right_refs[lvl]),
                offset=int(offsets[lvl]),
            )
        )
    return CompiledBatch(
        levels=levels,
        root_level=np.array([r[0] for r in root_refs], dtype=np.int64),
        root_index=np.array([r[1] for r in root_refs], dtype=np.int64,),
        root_global=to_global(root_refs),
        n_nodes=n_nodes,
    )


# -- inference fast path -----------------------------------------------------

# Default row-block size for the inference GEMMs.  Every matmul is issued at
# exactly this many rows (the final block zero-padded), so BLAS always
# selects the same kernel and each output row is bit-for-bit identical no
# matter how the batch is composed -- encode at batch size 8 or 256 and get
# the same bytes.  Variable-row GEMMs do not have that property: BLAS falls
# back to different (differently-rounded) kernels for small row counts.
# :func:`resolve_block` picks the actual size (micro-probe / env / config);
# the choice is cached per process, so within one process the guarantee
# above still holds.
GEMM_BLOCK = 64

#: Candidate row-block sizes the one-time micro-probe times.
BLOCK_CANDIDATES = (16, 32, 64, 128, 256)

#: Default cap on nodes per compiled chunk.  Two ``(nodes, h)`` float64
#: state buffers at 8192x64 are ~8 MiB -- past that the level gathers fall
#: out of cache and throughput regresses (the old @256 cliff).
DEFAULT_NODE_BUDGET = 8192

#: ``(hidden_dim, dtype) -> block`` memo for the micro-probe, so the probe
#: runs once per process and every later encode uses the same block (which
#: is what keeps same-process results bit-for-bit reproducible).
_PROBED_BLOCKS: Dict[Tuple[int, str], int] = {}


#: Per-level row counts the micro-probe times each candidate over, weighted
#: the way real level profiles are: mostly small levels (near the roots
#: every level shrinks toward the batch size, and per-binary pipeline
#: batches are tiny), a few wide leaf-side ones.  Probing only a wide GEMM
#: would systematically favour blocks whose zero-padding waste then
#: dominates the small levels.
_PROBE_ROWS = (4,) * 8 + (16,) * 4 + (64,) * 2 + (200,) + (512,)


def _probe_block(hidden_dim: int, dtype: np.dtype) -> int:
    """Time each candidate block over a realistic level profile, pick best.

    The probed shape matches the hot per-level GEMM ``(n, 2h) @ (2h, 5h)``
    at each row count in ``_PROBE_ROWS``; the candidate minimising the
    summed time wins.  Takes the min of a few repetitions per candidate to
    shrug off scheduler noise; ~tens of milliseconds, once per
    (hidden_dim, dtype) per process.
    """
    w = np.full((2 * hidden_dim, 5 * hidden_dim), 0.5, dtype=dtype)
    mats = [
        np.full((rows, 2 * hidden_dim), 0.5, dtype=dtype)
        for rows in _PROBE_ROWS
    ]
    best_block, best_t = BLOCK_CANDIDATES[0], float("inf")
    for block in BLOCK_CANDIDATES:
        t = float("inf")
        for _rep in range(3):
            started = time.perf_counter()
            for a in mats:
                _blocked_mm(a, w, block)
            t = min(t, time.perf_counter() - started)
        if t < best_t:
            best_block, best_t = block, t
    return best_block


def resolve_block(
    block: int = 0, hidden_dim: int = 64, dtype=np.float64
) -> int:
    """The GEMM row-block size to use: explicit > env > micro-probe.

    ``block > 0`` wins outright (``EngineConfig.encode_block``); else the
    ``REPRO_ENCODE_BLOCK`` environment variable; else the per-process
    micro-probe memo.
    """
    if block:
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        return int(block)
    env = os.environ.get("REPRO_ENCODE_BLOCK")
    if env:
        value = int(env)
        if value < 1:
            raise ValueError(f"REPRO_ENCODE_BLOCK must be >= 1, got {env}")
        return value
    key = (int(hidden_dim), np.dtype(dtype).name)
    if key not in _PROBED_BLOCKS:
        _PROBED_BLOCKS[key] = _probe_block(key[0], np.dtype(dtype))
    return _PROBED_BLOCKS[key]


def resolve_node_budget(budget: int = 0) -> int:
    """Nodes-per-chunk cap: explicit > ``REPRO_ENCODE_NODE_BUDGET`` > default."""
    if budget:
        if budget < 1:
            raise ValueError(f"node budget must be >= 1, got {budget}")
        return int(budget)
    env = os.environ.get("REPRO_ENCODE_NODE_BUDGET")
    if env:
        value = int(env)
        if value < 1:
            raise ValueError(
                f"REPRO_ENCODE_NODE_BUDGET must be >= 1, got {env}"
            )
        return value
    return DEFAULT_NODE_BUDGET


def _blocked_mm(a: np.ndarray, w: np.ndarray, block: int = GEMM_BLOCK) -> np.ndarray:
    """``a @ w`` computed in fixed ``(block, k)`` row blocks."""
    n, k = a.shape
    pad = (-n) % block
    if pad:
        a = np.concatenate([a, np.zeros((pad, k), dtype=a.dtype)])
    out = np.empty((n + pad, w.shape[1]), dtype=np.result_type(a, w))
    for start in range(0, n + pad, block):
        np.matmul(a[start:start + block], w,
                  out=out[start:start + block])
    return out[:n]


@dataclass
class WeightPack:
    """The encoder's weights fused and cast once for the inference loop.

    ``w_all`` is the ``(d, 4h)`` embedding-side stack ``[W_f, W_i, W_o,
    W_u]`` (one shared forget column block); ``u_lr`` is the ``(2h, 5h)``
    child-side stack -- top half the left-child matrices, bottom half the
    right-child ones, columns ``[f_l, f_r, i, o, u]`` -- so one
    ``[H_L | H_R] @ u_lr`` GEMM replaces the former two; ``bias`` is the
    matching ``(5h,)`` row ``[b_f, b_f, b_i, b_o, b_u]``.
    """

    dtype: np.dtype
    emb: np.ndarray
    w_all: np.ndarray
    u_lr: np.ndarray
    bias: np.ndarray
    leaf: np.ndarray
    hidden_dim: int
    num_labels: int


def pack_weights(lstm: BinaryTreeLSTM, dtype=np.float64) -> WeightPack:
    """Fuse and cast the encoder weights for :func:`encode_batch`.

    Rebuilt per encode call (a handful of small hstacks) rather than
    memoized on the model, so in-place weight updates during training can
    never serve stale packs.
    """
    dt = np.dtype(dtype)
    w_all = np.hstack(
        [lstm.w_f.data, lstm.w_i.data, lstm.w_o.data, lstm.w_u.data]
    )
    u_left = np.hstack([
        lstm.u_f_ll.data, lstm.u_f_rl.data, lstm.u_i_l.data,
        lstm.u_o_l.data, lstm.u_u_l.data,
    ])
    u_right = np.hstack([
        lstm.u_f_lr.data, lstm.u_f_rr.data, lstm.u_i_r.data,
        lstm.u_o_r.data, lstm.u_u_r.data,
    ])
    bias = np.concatenate([
        lstm.b_f.data, lstm.b_f.data, lstm.b_i.data,
        lstm.b_o.data, lstm.b_u.data,
    ])
    return WeightPack(
        dtype=dt,
        emb=lstm.embedding.weight.data.astype(dt, copy=False),
        w_all=w_all.astype(dt, copy=False),
        u_lr=np.vstack([u_left, u_right]).astype(dt, copy=False),
        bias=bias.astype(dt, copy=False),
        leaf=lstm._leaf_state().data.astype(dt, copy=False),
        hidden_dim=lstm.hidden_dim,
        num_labels=lstm.num_labels,
    )


def encode_batch(
    lstm: BinaryTreeLSTM,
    trees: Sequence[BinaryTreeNode],
    compiled: CompiledBatch = None,
    *,
    dtype=np.float64,
    block: int = 0,
    pack: Optional[WeightPack] = None,
    observer: Optional[Callable[[int, float], None]] = None,
) -> np.ndarray:
    """Encode a batch of trees to a ``(n_trees, h)`` root-h matrix.

    Pure numpy: per level, one gather from the preallocated state buffers,
    two fused-weight gate GEMMs (embedding, and both children through one
    stacked ``(2h, 5h)`` matrix), one sigmoid over all four gates, one
    contiguous write-back.  No autograd graph is built, so this is the
    path for corpus ingest and evaluation.  Results are bit-for-bit
    identical regardless of batch composition (see :data:`GEMM_BLOCK`).

    ``dtype`` selects the float64 reference path (default) or the float32
    fast path (weights cast once via :func:`pack_weights`); ``block=0``
    lets :func:`resolve_block` pick the GEMM row block.  ``observer``, if
    given, receives ``(level_rows, seconds)`` per evaluated level.
    """
    if compiled is None:
        compiled = compile_trees(trees)
    if pack is None:
        pack = pack_weights(lstm, dtype)
    h = pack.hidden_dim
    if compiled.n_trees == 0:
        return np.zeros((0, h), dtype=pack.dtype)
    _check_labels(compiled, pack.num_labels)
    block = resolve_block(block, h, pack.dtype)
    H = np.empty((compiled.n_nodes + 1, h), dtype=pack.dtype)
    C = np.empty_like(H)
    H[-1] = C[-1] = pack.leaf
    h2, h3, h4 = 2 * h, 3 * h, 4 * h

    for level in compiled.levels:
        started = time.perf_counter() if observer is not None else 0.0
        n = level.size
        E = pack.emb[level.labels]
        z_e = _blocked_mm(E, pack.w_all, block)
        HLR = np.empty((n, h2), dtype=pack.dtype)
        HLR[:, :h] = H[level.left_global]
        HLR[:, h:] = H[level.right_global]
        Z = _blocked_mm(HLR, pack.u_lr, block)
        # fold the embedding pre-activations into the (5h) gate columns
        # [f_l, f_r, i, o, u]; the W_f block feeds both forget gates
        Z[:, :h] += z_e[:, :h]
        Z[:, h:h2] += z_e[:, :h]
        Z[:, h2:] += z_e[:, h:]
        Z += pack.bias
        G = _sigmoid(Z[:, :h4])
        u = np.tanh(Z[:, h4:])
        CL = C[level.left_global]
        CR = C[level.right_global]
        CL *= G[:, :h]  # gathers are fresh copies; scale them in place
        CR *= G[:, h:h2]
        end = level.offset + n
        c = C[level.offset:end]
        np.multiply(G[:, h2:h3], u, out=c)
        c += CL
        c += CR
        np.tanh(c, out=u)
        np.multiply(G[:, h3:h4], u, out=H[level.offset:end])
        if observer is not None:
            observer(n, time.perf_counter() - started)
    return H[compiled.root_global]


# -- bucketed batch scheduling ------------------------------------------------


@dataclass
class CompiledChunk:
    """One scheduler chunk: which input trees it covers, compiled."""

    indices: np.ndarray  # rows of the caller's tree list, int64
    batch: CompiledBatch


@dataclass
class CompiledPlan:
    """A full input's encode schedule: size-bucketed compiled chunks.

    Model-independent (it holds tree structure only), so it can be cached
    across weight changes -- see the pipeline's ``ctrees`` artifacts.
    """

    chunks: List[CompiledChunk]
    n_trees: int


def plan_chunks(
    sizes: Sequence[int],
    batch_size: int,
    node_budget: int = 0,
    bucketed: bool = True,
) -> List[np.ndarray]:
    """Partition tree indices into encode chunks.

    With ``bucketed`` set, trees are stably sorted by node count first, so
    each chunk holds similarly-sized trees (less per-level padding waste,
    and deep outliers stop serializing whole batches).  Chunks are cut at
    ``batch_size`` trees or ``node_budget`` total nodes, whichever comes
    first, which keeps the flattened state buffers cache-resident no
    matter how wide the caller's batch is.  Per-tree results do not depend
    on the partition (fixed GEMM row blocks), so any chunking -- bucketed
    or not -- produces bit-for-bit identical vectors.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    sizes = np.asarray(sizes, dtype=np.int64)
    budget = resolve_node_budget(node_budget)
    order = (
        np.argsort(sizes, kind="stable") if bucketed
        else np.arange(len(sizes), dtype=np.int64)
    )
    chunks: List[np.ndarray] = []
    current: List[int] = []
    current_nodes = 0
    for idx in order:
        size = int(sizes[idx])
        if current and (
            len(current) >= batch_size or current_nodes + size > budget
        ):
            chunks.append(np.asarray(current, dtype=np.int64))
            current, current_nodes = [], 0
        current.append(int(idx))
        current_nodes += size
    if current:
        chunks.append(np.asarray(current, dtype=np.int64))
    return chunks


def compile_plan(
    trees: Sequence[BinaryTreeNode],
    batch_size: int,
    node_budget: int = 0,
    bucketed: bool = True,
) -> CompiledPlan:
    """Bucket + compile a tree list into a reusable :class:`CompiledPlan`."""
    sizes = [tree.size() for tree in trees]
    return CompiledPlan(
        chunks=[
            CompiledChunk(
                indices=indices,
                batch=compile_trees([trees[i] for i in indices]),
            )
            for indices in plan_chunks(
                sizes, batch_size, node_budget, bucketed
            )
        ],
        n_trees=len(trees),
    )


def encode_plan(
    lstm: BinaryTreeLSTM,
    plan: CompiledPlan,
    *,
    dtype=np.float64,
    block: int = 0,
    observer: Optional[Callable[[int, float], None]] = None,
) -> np.ndarray:
    """Encode a :class:`CompiledPlan`, scattering rows back to input order."""
    pack = pack_weights(lstm, dtype)
    out = np.empty((plan.n_trees, pack.hidden_dim), dtype=pack.dtype)
    for chunk in plan.chunks:
        out[chunk.indices] = encode_batch(
            lstm, (), chunk.batch, pack=pack, block=block, observer=observer
        )
    return out


# -- compiled-plan (de)serialization ------------------------------------------

#: Per-level int64 array fields of :class:`LevelPlan`, in storage order.
_LEVEL_FIELDS = (
    "labels", "left_level", "left_index", "right_level", "right_index",
    "left_global", "right_global",
)


def plan_to_state(plan: CompiledPlan) -> Dict[str, np.ndarray]:
    """Flatten a :class:`CompiledPlan` to named arrays (npz-storable).

    Per-chunk, each :class:`LevelPlan` array field is concatenated across
    levels with a ``level_sizes`` vector to split them back; level offsets
    and ``n_nodes`` are derivable so they are not stored.
    """
    state: Dict[str, np.ndarray] = {
        "n_chunks": np.asarray([len(plan.chunks)], dtype=np.int64),
        "n_trees": np.asarray([plan.n_trees], dtype=np.int64),
    }
    for ci, chunk in enumerate(plan.chunks):
        prefix = f"c{ci}_"
        batch = chunk.batch
        state[prefix + "indices"] = chunk.indices
        state[prefix + "level_sizes"] = np.asarray(
            [level.size for level in batch.levels], dtype=np.int64
        )
        for name in _LEVEL_FIELDS:
            state[prefix + name] = (
                np.concatenate([getattr(lv, name) for lv in batch.levels])
                if batch.levels else np.zeros(0, dtype=np.int64)
            )
        state[prefix + "root_level"] = batch.root_level
        state[prefix + "root_index"] = batch.root_index
        state[prefix + "root_global"] = batch.root_global
    return state


def plan_from_state(state: Dict[str, np.ndarray]) -> CompiledPlan:
    """Rebuild a :class:`CompiledPlan` from :func:`plan_to_state` arrays."""
    n_chunks = int(np.asarray(state["n_chunks"])[0])
    chunks: List[CompiledChunk] = []
    for ci in range(n_chunks):
        prefix = f"c{ci}_"
        level_sizes = np.asarray(state[prefix + "level_sizes"], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(level_sizes)]).astype(np.int64)
        splits = {
            name: np.split(
                np.asarray(state[prefix + name], dtype=np.int64),
                offsets[1:-1],
            )
            for name in _LEVEL_FIELDS
        }
        levels = [
            LevelPlan(
                offset=int(offsets[lvl]),
                **{name: splits[name][lvl] for name in _LEVEL_FIELDS},
            )
            for lvl in range(len(level_sizes))
        ]
        chunks.append(
            CompiledChunk(
                indices=np.asarray(state[prefix + "indices"], dtype=np.int64),
                batch=CompiledBatch(
                    levels=levels,
                    root_level=np.asarray(
                        state[prefix + "root_level"], dtype=np.int64
                    ),
                    root_index=np.asarray(
                        state[prefix + "root_index"], dtype=np.int64
                    ),
                    root_global=np.asarray(
                        state[prefix + "root_global"], dtype=np.int64
                    ),
                    n_nodes=int(offsets[-1]),
                ),
            )
        )
    return CompiledPlan(
        chunks=chunks, n_trees=int(np.asarray(state["n_trees"])[0])
    )


# -- training path -----------------------------------------------------------


def _embed_rows(weight, labels: np.ndarray) -> Tensor:
    """Batched embedding lookup: ``(n,)`` label ids -> ``(n, d)`` rows."""
    out_data = weight.data[labels]

    def backward(grad):
        if weight.requires_grad:
            full = np.zeros_like(weight.data)
            np.add.at(full, labels, grad)
            weight._accumulate(full)

    return Tensor._op(out_data, (weight,), backward)


def _gather_states(
    level_outputs: List[Tensor],
    src_level: np.ndarray,
    src_index: np.ndarray,
    leaf: np.ndarray,
) -> Tensor:
    """Gather one child side's ``(2, n, h)`` stacked (h, c) states.

    Sources are the already-computed per-level stacked outputs (row 0 = h,
    row 1 = c); ``src_level == LEAF`` rows take the constant leaf state.
    Backward scatter-adds the incoming gradient back into each producing
    level tensor.
    """
    n = len(src_level)
    out = np.empty((2, n, leaf.shape[0]))
    leaf_rows = src_level == LEAF
    if leaf_rows.any():
        out[:, leaf_rows, :] = leaf
    groups = []
    # children concentrate on few distinct levels (a deep spine has one),
    # so group by the levels actually present, not every prior level
    for m in np.unique(src_level):
        if m == LEAF:
            continue
        tensor = level_outputs[m]
        rows = np.nonzero(src_level == m)[0]
        out[:, rows, :] = tensor.data[:, src_index[rows], :]
        groups.append((tensor, rows, src_index[rows]))

    def backward(grad):
        for tensor, out_rows, src_rows in groups:
            if not tensor.requires_grad:
                continue
            full = np.zeros_like(tensor.data)
            for part in (0, 1):
                np.add.at(full[part], src_rows, grad[part, out_rows])
            tensor._accumulate(full)

    return Tensor._op(out, tuple(t for t, _r, _s in groups), backward)


def _gather_roots(
    level_outputs: List[Tensor],
    root_level: np.ndarray,
    root_index: np.ndarray,
    h_dim: int,
) -> Tensor:
    """Collect each tree's root hidden state into one ``(n_trees, h)``."""
    n = len(root_level)
    out = np.empty((n, h_dim))
    groups = []
    for m in np.unique(root_level):
        tensor = level_outputs[m]
        rows = np.nonzero(root_level == m)[0]
        out[rows] = tensor.data[0, root_index[rows]]
        groups.append((tensor, rows, root_index[rows]))

    def backward(grad):
        for tensor, out_rows, src_rows in groups:
            if not tensor.requires_grad:
                continue
            full = np.zeros_like(tensor.data)
            np.add.at(full[0], src_rows, grad[out_rows])
            tensor._accumulate(full)

    return Tensor._op(out, tuple(t for t, _r, _s in groups), backward)


def batch_cell_forward(
    lstm: BinaryTreeLSTM,
    e: Tensor,
    h_l: Tensor,
    h_r: Tensor,
    c_l: Tensor,
    c_r: Tensor,
) -> Tensor:
    """The fused Tree-LSTM cell generalised from vectors to ``(n, h)``.

    Same math as :meth:`BinaryTreeLSTM.node_forward_fused`, applied to all
    same-level nodes at once; returns a stacked ``(2, n, h)`` tensor (row 0
    = h, row 1 = c).  The analytic backward generalises accordingly: weight
    gradients become ``X.T @ dZ``, bias gradients row sums, and child-state
    gradients stay elementwise per row.
    """
    params = (
        lstm.w_f, lstm.u_f_ll, lstm.u_f_lr, lstm.u_f_rl, lstm.u_f_rr,
        lstm.b_f, lstm.w_i, lstm.u_i_l, lstm.u_i_r, lstm.b_i,
        lstm.w_o, lstm.u_o_l, lstm.u_o_r, lstm.b_o,
        lstm.w_u, lstm.u_u_l, lstm.u_u_r, lstm.b_u,
    )
    (w_f, u_f_ll, u_f_lr, u_f_rl, u_f_rr, b_f,
     w_i, u_i_l, u_i_r, b_i,
     w_o, u_o_l, u_o_r, b_o,
     w_u, u_u_l, u_u_r, b_u) = params
    ev, hl, hr, cl, cr = (t.data for t in (e, h_l, h_r, c_l, c_r))

    e_wf = ev @ w_f.data
    f_l = _sigmoid(e_wf + hl @ u_f_ll.data + hr @ u_f_lr.data + b_f.data)
    f_r = _sigmoid(e_wf + hl @ u_f_rl.data + hr @ u_f_rr.data + b_f.data)
    i = _sigmoid(ev @ w_i.data + hl @ u_i_l.data + hr @ u_i_r.data + b_i.data)
    o = _sigmoid(ev @ w_o.data + hl @ u_o_l.data + hr @ u_o_r.data + b_o.data)
    u = np.tanh(ev @ w_u.data + hl @ u_u_l.data + hr @ u_u_r.data + b_u.data)
    c = i * u + cl * f_l + cr * f_r
    tanh_c = np.tanh(c)
    h = o * tanh_c
    out_data = np.stack([h, c])

    inputs = (e, h_l, h_r, c_l, c_r)

    def backward(grad):
        dh, dc_out = grad[0], grad[1]
        do = dh * tanh_c
        dc = dc_out + dh * o * (1.0 - tanh_c ** 2)
        di = dc * u
        du = dc * i
        df_l = dc * cl
        df_r = dc * cr
        if c_l.requires_grad:
            c_l._accumulate(dc * f_l)
        if c_r.requires_grad:
            c_r._accumulate(dc * f_r)
        dz_o = do * o * (1.0 - o)
        dz_i = di * i * (1.0 - i)
        dz_fl = df_l * f_l * (1.0 - f_l)
        dz_fr = df_r * f_r * (1.0 - f_r)
        dz_u = du * (1.0 - u ** 2)
        dz_f = dz_fl + dz_fr
        if e.requires_grad:
            e._accumulate(
                dz_f @ w_f.data.T + dz_i @ w_i.data.T
                + dz_o @ w_o.data.T + dz_u @ w_u.data.T
            )
        if h_l.requires_grad:
            h_l._accumulate(
                dz_fl @ u_f_ll.data.T + dz_fr @ u_f_rl.data.T
                + dz_i @ u_i_l.data.T + dz_o @ u_o_l.data.T
                + dz_u @ u_u_l.data.T
            )
        if h_r.requires_grad:
            h_r._accumulate(
                dz_fl @ u_f_lr.data.T + dz_fr @ u_f_rr.data.T
                + dz_i @ u_i_r.data.T + dz_o @ u_o_r.data.T
                + dz_u @ u_u_r.data.T
            )
        w_f._accumulate(ev.T @ dz_f)
        b_f._accumulate(dz_f.sum(axis=0))
        u_f_ll._accumulate(hl.T @ dz_fl)
        u_f_lr._accumulate(hr.T @ dz_fl)
        u_f_rl._accumulate(hl.T @ dz_fr)
        u_f_rr._accumulate(hr.T @ dz_fr)
        w_i._accumulate(ev.T @ dz_i)
        u_i_l._accumulate(hl.T @ dz_i)
        u_i_r._accumulate(hr.T @ dz_i)
        b_i._accumulate(dz_i.sum(axis=0))
        w_o._accumulate(ev.T @ dz_o)
        u_o_l._accumulate(hl.T @ dz_o)
        u_o_r._accumulate(hr.T @ dz_o)
        b_o._accumulate(dz_o.sum(axis=0))
        w_u._accumulate(ev.T @ dz_u)
        u_u_l._accumulate(hl.T @ dz_u)
        u_u_r._accumulate(hr.T @ dz_u)
        b_u._accumulate(dz_u.sum(axis=0))

    return Tensor._op(out_data, inputs + params, backward)


def encode_batch_states(
    lstm: BinaryTreeLSTM,
    trees: Sequence[BinaryTreeNode],
    compiled: CompiledBatch = None,
) -> Tensor:
    """Differentiable batch encoding: ``(n_trees, h)`` root hidden states.

    The training-path twin of :func:`encode_batch`: the same level schedule,
    but each level runs through :func:`batch_cell_forward` so gradients flow
    back to every parameter and minibatched training works through one
    stacked graph instead of per-node cell calls.
    """
    if compiled is None:
        compiled = compile_trees(trees)
    if compiled.n_trees == 0:
        return Tensor(np.zeros((0, lstm.hidden_dim)))
    _check_labels(compiled, lstm.num_labels)
    leaf = lstm._leaf_state().data
    outputs: List[Tensor] = []
    for level in compiled.levels:
        e = _embed_rows(lstm.embedding.weight, level.labels)
        left = _gather_states(outputs, level.left_level, level.left_index, leaf)
        right = _gather_states(outputs, level.right_level, level.right_index, leaf)
        outputs.append(
            batch_cell_forward(lstm, e, left[0], right[0], left[1], right[1])
        )
    return _gather_roots(
        outputs, compiled.root_level, compiled.root_index, lstm.hidden_dim
    )
