"""Structure2vec graph embedding network (the Gemini baseline's encoder).

Follows Xu et al. (CCS 2017): node features are lifted into a latent space
and refined for T rounds of neighbourhood aggregation,

    mu_v^(t+1) = tanh(W1 x_v + sigma(sum_{u in N(v)} mu_u^(t)))

where ``sigma`` is a small ReLU MLP; the graph embedding is
``W2 (sum_v mu_v^(T))``.  All node updates for one graph are vectorised as
matrix ops (states stacked row-wise, neighbour sums via the adjacency
matrix), so this model *can* batch per-graph -- which is also why Gemini's
offline encoding is faster than Asteria's, as the paper measures.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter, glorot
from repro.nn.tensor import Tensor
from repro.utils.rng import RNG


class Structure2Vec(Module):
    """Graph embedding network over attributed CFGs."""

    def __init__(
        self,
        feature_dim: int,
        embedding_dim: int = 64,
        iterations: int = 5,
        mlp_layers: int = 2,
        seed: int = 0,
    ):
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        rng = RNG(seed)
        self.feature_dim = feature_dim
        self.embedding_dim = embedding_dim
        self.iterations = iterations
        self.w1 = Parameter(glorot(rng.child("w1"), (feature_dim, embedding_dim)))
        self.w2 = Parameter(glorot(rng.child("w2"), (embedding_dim, embedding_dim)))
        self.sigma_layers = [
            Parameter(glorot(rng.child("sigma", i), (embedding_dim, embedding_dim)))
            for i in range(mlp_layers)
        ]

    def forward(self, features: np.ndarray, adjacency: np.ndarray) -> Tensor:
        """Embed one graph.

        Args:
            features: (n_nodes, feature_dim) node attribute matrix.
            adjacency: (n_nodes, n_nodes) 0/1 adjacency matrix (undirected
                neighbourhood aggregation uses A + A^T clipped to 1).
        """
        features = np.asarray(features, dtype=np.float64)
        n = features.shape[0]
        if features.shape[1] != self.feature_dim:
            raise ValueError(
                f"feature dim {features.shape[1]} != {self.feature_dim}"
            )
        neighbours = Tensor(np.clip(adjacency + adjacency.T, 0, 1))
        x = Tensor(features)
        lifted = x @ self.w1  # (n, p)
        mu = Tensor(np.zeros((n, self.embedding_dim)))
        for _ in range(self.iterations):
            agg = neighbours @ mu  # (n, p)
            hidden = agg
            for layer in self.sigma_layers:
                hidden = (hidden @ layer).relu()
            mu = (lifted + hidden).tanh()
        pooled = Tensor(np.ones(n)) @ mu  # sum over nodes -> (p,)
        return pooled @ self.w2


def cosine_similarity(a: Tensor, b: Tensor) -> Tensor:
    """Cosine similarity between two embedding vectors (autograd-aware)."""
    return a.dot(b) / (a.norm() * b.norm())


def cosine_similarity_matrix(
    queries: np.ndarray, vectors: np.ndarray
) -> np.ndarray:
    """Batched inference-path cosine scores: ``(q, d) x (n, d) -> (q, n)``.

    The Siamese-head analogue of
    :meth:`repro.core.siamese.SiameseClassifier.similarity_from_matrix`
    for the Gemini baseline: Q cached graph embeddings score a whole
    corpus of cached embeddings with one normalised GEMM instead of
    ``q * n`` per-pair :func:`cosine_similarity` calls.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=vectors.dtype))
    norms = (
        np.linalg.norm(queries, axis=1)[:, None]
        * np.linalg.norm(vectors, axis=1)[None, :]
    )
    norms = np.where(norms == 0.0, 1e-12, norms)
    return queries @ vectors.T / norms
