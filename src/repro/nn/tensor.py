"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``ndarray`` and records the operations applied to
it; :meth:`Tensor.backward` walks the recorded graph in reverse topological
order accumulating gradients.  Broadcasting is supported (gradients are
summed back over broadcast dimensions).

The op set is exactly what the Asteria/Gemini models need: elementwise
arithmetic, matmul, sigmoid/tanh/exp/log, abs, sum/mean, concatenation,
softmax, and embedding-row lookup (in :mod:`repro.nn.layers`).
"""

from __future__ import annotations

import contextlib
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

_GRAD_ENABLED = [True]


def stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Overflow-free logistic function.

    ``1/(1+exp(-x))`` overflows (with a RuntimeWarning) for large negative
    pre-activations; computing ``exp(-|x|)`` keeps the exponent non-positive
    so both branches of the sign split stay in ``(0, 1]``.
    """
    ex = np.exp(-np.abs(x))
    return np.where(np.asarray(x) >= 0, 1.0 / (1.0 + ex), ex / (1.0 + ex))


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def grad_enabled() -> bool:
    return _GRAD_ENABLED[-1]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` back down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading added dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An array with an autograd tape."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")
    __array_priority__ = 100  # so ndarray + Tensor defers to Tensor

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and grad_enabled()
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None
        self.name = name

    # -- construction helpers -----------------------------------------------

    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def _op(data, parents: Sequence["Tensor"], backward) -> "Tensor":
        # Always construct a plain Tensor: results of ops on Parameters are
        # intermediate values, not trainable parameters themselves.
        requires = any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, parents=tuple(parents),
                      backward=backward)

    # -- properties -----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return self._op(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data - other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.data.shape))

        return self._op(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return self._op(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data ** 2),
                                 other.data.shape)
                )

        return self._op(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __neg__(self) -> "Tensor":
        def backward(grad):
            if self.requires_grad:
                self._accumulate(-grad)

        return self._op(-self.data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1 and a.ndim == 2:
                    self._accumulate(np.outer(grad, b))
                elif a.ndim == 1 and b.ndim == 2:
                    self._accumulate(grad @ b.T)
                else:
                    self._accumulate(grad @ np.swapaxes(b, -1, -2))
            if other.requires_grad:
                if a.ndim == 1 and b.ndim == 2:
                    other._accumulate(np.outer(a, grad))
                elif b.ndim == 1 and a.ndim == 2:
                    other._accumulate(a.T @ grad)
                else:
                    other._accumulate(np.swapaxes(a, -1, -2) @ grad)

        return self._op(out_data, (self, other), backward)

    def pow(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._op(out_data, (self,), backward)

    # -- nonlinearities --------------------------------------------------------------

    def sigmoid(self) -> "Tensor":
        out_data = stable_sigmoid(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (self.data > 0))

        return self._op(out_data, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return self._op(out_data, (self,), backward)

    def softmax(self) -> "Tensor":
        """Numerically stable softmax over the last axis."""
        shifted = self.data - self.data.max(axis=-1, keepdims=True)
        exps = np.exp(shifted)
        out_data = exps / exps.sum(axis=-1, keepdims=True)

        def backward(grad):
            if self.requires_grad:
                dot = (grad * out_data).sum(axis=-1, keepdims=True)
                self._accumulate(out_data * (grad - dot))

        return self._op(out_data, (self,), backward)

    # -- reductions ---------------------------------------------------------------------

    def sum(self) -> "Tensor":
        out_data = self.data.sum()

        def backward(grad):
            if self.requires_grad:
                self._accumulate(np.broadcast_to(grad, self.data.shape).copy())

        return self._op(out_data, (self,), backward)

    def mean(self) -> "Tensor":
        out_data = self.data.mean()
        count = self.data.size

        def backward(grad):
            if self.requires_grad:
                self._accumulate(
                    np.broadcast_to(grad / count, self.data.shape).copy()
                )

        return self._op(out_data, (self,), backward)

    def dot(self, other: "Tensor") -> "Tensor":
        """Vector dot product (rank-1 tensors)."""
        return (self * other).sum()

    def norm(self, eps: float = 1e-12) -> "Tensor":
        """L2 norm of a vector (stabilised away from zero)."""
        return (self.dot(self) + eps).pow(0.5)

    # -- indexing (for softmax outputs etc.) ----------------------------------------------

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                full[index] = grad
                self._accumulate(full)

        return self._op(out_data, (self,), backward)

    # -- autograd ------------------------------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64)
        else:
            self.grad = self.grad + grad

    def backward(self) -> None:
        """Backpropagate from this (scalar) tensor."""
        if self.data.size != 1:
            raise ValueError("backward() requires a scalar tensor")
        topo: List[Tensor] = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self.grad = np.ones_like(self.data)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concat(tensors: Sequence[Tensor]) -> Tensor:
    """Concatenate rank-1 tensors into one vector."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors])

    def backward(grad):
        offset = 0
        for t in tensors:
            size = t.data.size
            if t.requires_grad:
                t._accumulate(grad[offset:offset + size])
            offset += size

    return Tensor._op(out_data, tuple(tensors), backward)


def zeros(shape) -> Tensor:
    return Tensor(np.zeros(shape))


def ones(shape) -> Tensor:
    return Tensor(np.ones(shape))
