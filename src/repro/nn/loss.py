"""Loss functions."""

from __future__ import annotations

from repro.nn.tensor import Tensor

_EPS = 1e-12


def bce_loss(prediction: Tensor, target) -> Tensor:
    """Binary cross entropy, averaged over elements.

    The paper trains with ``BCELoss`` between the Siamese network's softmax
    output ``[dissimilarity, similarity]`` and the one-hot label vector
    ([1,0] = non-homologous, [0,1] = homologous).
    """
    target = Tensor._lift(target)
    count = prediction.data.size
    log_pos = (prediction + _EPS).log()
    log_neg = ((1.0 - prediction) + _EPS).log()
    losses = -(target * log_pos + (1.0 - target) * log_neg)
    return losses.sum() * (1.0 / count)


def mse_loss(prediction: Tensor, target) -> Tensor:
    """Mean squared error."""
    target = Tensor._lift(target)
    diff = prediction - target
    return (diff * diff).mean()


def cosine_embedding_loss(similarity: Tensor, label: int, margin: float = 0.0) -> Tensor:
    """Cosine-embedding-style loss on a scalar similarity.

    label +1: loss = 1 - sim;  label -1: loss = max(0, sim - margin).
    Used to train the Gemini baseline (cosine Siamese with ±1 ground truth).
    """
    if label == 1:
        return 1.0 - similarity
    if label == -1:
        return (similarity - margin).relu()
    raise ValueError("label must be +1 or -1")
