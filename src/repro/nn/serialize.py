"""Model checkpointing via ``numpy.savez``."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

_META_KEY = "__meta__"


def save_state(path, state: Dict[str, np.ndarray], meta: Dict = None) -> None:
    """Save a state dict (and optional JSON-able metadata) to ``path``."""
    path = Path(path)
    payload = dict(state)
    if _META_KEY in payload:
        raise ValueError(f"{_META_KEY!r} is a reserved key")
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **payload)


def load_state(path) -> Tuple[Dict[str, np.ndarray], Dict]:
    """Load ``(state_dict, meta)`` saved by :func:`save_state`.

    Only plain ndarrays are accepted (``allow_pickle=False``): checkpoints
    and embedding shards are data, never code.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        state = {
            key: archive[key] for key in archive.files if key != _META_KEY
        }
    return state, meta
