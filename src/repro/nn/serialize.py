"""Model checkpointing via ``numpy.savez``.

Writes are crash-safe: the archive is written to a temporary sibling,
fsynced, and atomically renamed over the target, so a kill mid-save
leaves the previous checkpoint (or nothing) -- never a torn archive.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

from repro.utils.fsio import commit_file

_META_KEY = "__meta__"


def save_state(path, state: Dict[str, np.ndarray], meta: Dict = None) -> None:
    """Save a state dict (and optional JSON-able metadata) to ``path``."""
    path = Path(path)
    if not path.name.endswith(".npz"):
        path = Path(str(path) + ".npz")  # match numpy.savez naming
    payload = dict(state)
    if _META_KEY in payload:
        raise ValueError(f"{_META_KEY!r} is a reserved key")
    payload[_META_KEY] = np.frombuffer(
        json.dumps(meta or {}).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        np.savez(handle, **payload)
        handle.flush()
        os.fsync(handle.fileno())
    commit_file(tmp, path)


def load_state(path) -> Tuple[Dict[str, np.ndarray], Dict]:
    """Load ``(state_dict, meta)`` saved by :func:`save_state`.

    Only plain ndarrays are accepted (``allow_pickle=False``): checkpoints
    and embedding shards are data, never code.
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(".npz").exists():
        path = path.with_suffix(".npz")
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(bytes(archive[_META_KEY]).decode("utf-8"))
        state = {
            key: archive[key] for key in archive.files if key != _META_KEY
        }
    return state, meta
