"""Module base class and parameter container."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.rng import RNG


class Parameter(Tensor):
    """A trainable tensor."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


def glorot(rng: RNG, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    fan_in = shape[0] if len(shape) > 1 else shape[0]
    fan_out = shape[1] if len(shape) > 1 else shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class Module:
    """Base class for layers and models.

    Parameters are discovered by attribute reflection: any attribute that is
    a :class:`Parameter`, a :class:`Module`, or a list of either contributes
    to :meth:`parameters` and :meth:`state_dict`.
    """

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in vars(self).items():
            path = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{path}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(f"{path}.{i}.")

    def parameters(self) -> List[Parameter]:
        return [p for _name, p in self.named_parameters()]

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    def n_parameters(self) -> int:
        return sum(p.data.size for p in self.parameters())

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, parameter in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != parameter.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {parameter.data.shape}"
                )
            parameter.data = value.copy()

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError
