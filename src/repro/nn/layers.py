"""Basic layers: Linear and Embedding."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module, Parameter, glorot
from repro.nn.tensor import Tensor
from repro.utils.rng import RNG


class Linear(Module):
    """Affine map ``y = x @ W + b`` for rank-1 inputs."""

    def __init__(self, in_features: int, out_features: int, rng: RNG,
                 bias: bool = True):
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(glorot(rng, (in_features, out_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors.

    The stand-in for ``torch.nn.Embedding`` the paper uses to embed the
    Table-I node labels into 16-dimensional vectors.
    """

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: RNG):
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            rng.normal(0.0, 1.0, size=(num_embeddings, embedding_dim))
        )

    def forward(self, index: int) -> Tensor:
        if not 0 <= index < self.num_embeddings:
            raise IndexError(
                f"embedding index {index} out of range "
                f"[0, {self.num_embeddings})"
            )
        weight = self.weight
        out_data = weight.data[index]

        def backward(grad):
            if weight.requires_grad:
                full = np.zeros_like(weight.data)
                full[index] = grad
                weight._accumulate(full)

        return Tensor._op(out_data, (weight,), backward)
