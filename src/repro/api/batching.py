"""Dynamic micro-batching for concurrent query encodes.

The serving layer's hot path is "encode one query AST, then score it":
with N concurrent clients the naive implementation performs N sequential
tree walks.  :class:`MicroBatcher` coalesces in-flight encode requests
into single level-batched :meth:`~repro.core.model.Asteria.encode_batch`
calls (PR 2's stacked-GEMM fast path), so concurrency turns into batch
width instead of queueing delay.

The protocol is leader/follower: a calling thread appends its tree to
the pending queue; whichever thread finds no batch in flight elects
itself leader, drains up to ``max_batch_size`` pending items, grants a
short ``max_wait_s`` accumulation window for late arrivals, then runs
one batched encode and publishes each result.  Followers block on their
item's event.  Exactly one batch runs at a time, which also keeps the
(single) model's encode path effectively single-threaded -- callers need
no extra locking.

Because the level-batched engine issues fixed-size GEMM blocks, the
encoding of a tree is bit-for-bit independent of which other trees
happen to share its batch: a coalesced encode returns exactly the bytes
a serial encode would.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.api.errors import DeadlineExceededError
from repro.obs.metrics import FRACTION_BUCKETS, SIZE_BUCKETS, MetricsRegistry


@dataclass
class BatcherStats:
    """Coalescing counters (exposed via ``AsteriaEngine.stats()``)."""

    n_batches: int = 0
    n_items: int = 0
    max_batch_size: int = 0

    def record(self, size: int) -> None:
        self.n_batches += 1
        self.n_items += size
        self.max_batch_size = max(self.max_batch_size, size)

    @property
    def mean_batch_size(self) -> float:
        return self.n_items / self.n_batches if self.n_batches else 0.0

    def coalesced(self) -> bool:
        """Did any batch actually carry more than one request?"""
        return self.max_batch_size > 1


class _Item:
    __slots__ = ("tree", "done", "result", "error", "submitted", "deadline")

    def __init__(self, tree, deadline: Optional[float] = None):
        self.tree = tree
        self.done = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None
        self.submitted = time.perf_counter()
        #: absolute ``time.monotonic()`` instant after which the caller
        #: no longer wants the result (None = no deadline)
        self.deadline = deadline

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class MicroBatcher:
    """Coalesce concurrent ``encode(tree)`` calls into batched encodes.

    ``encode_batch_fn`` maps a sequence of trees to an ``(n, h)`` matrix.
    ``max_batch_size=1`` degenerates to serialized per-tree encoding --
    the baseline the serving throughput benchmark compares against.
    """

    def __init__(
        self,
        encode_batch_fn: Callable[[Sequence], np.ndarray],
        max_batch_size: int = 64,
        max_wait_s: float = 0.002,
        registry: Optional[MetricsRegistry] = None,
    ):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self._encode_batch = encode_batch_fn
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_s
        self._cond = threading.Condition()
        self._pending: List[_Item] = []
        self._busy = False
        self.stats = BatcherStats()
        self.registry = registry

    def encode(self, tree, deadline: Optional[float] = None) -> np.ndarray:
        """Encode one tree, riding whatever batch is forming."""
        return self.encode_many([tree], deadline=deadline)[0]

    def encode_many(
        self, trees: Sequence, deadline: Optional[float] = None
    ) -> np.ndarray:
        """Encode many trees from one caller as an ``(n, h)`` matrix.

        The items enter the shared pending queue, so a multi-query
        caller (``AsteriaEngine.query_batch``) coalesces with concurrent
        single queries exactly like N separate threads would -- but with
        one submitting thread and no per-item wakeup churn.  More items
        than ``max_batch_size`` simply span several batches.

        ``deadline`` is an absolute ``time.monotonic()`` instant: a
        caller still queued when it passes raises
        :class:`DeadlineExceededError` instead of waiting forever behind
        a storm (its unclaimed items leave the queue; items already in a
        running batch finish and are discarded).
        """
        items = [_Item(tree, deadline=deadline) for tree in trees]
        if not items:
            return np.zeros((0, 0))
        with self._cond:
            self._pending.extend(items)
        while True:
            run: Optional[List[_Item]] = None
            with self._cond:
                if all(item.done.is_set() for item in items):
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    # give up: pull our unclaimed items out of the queue
                    # so no leader wastes a batch slot on them
                    ours = set(map(id, items))
                    self._pending = [
                        it for it in self._pending if id(it) not in ours
                    ]
                    raise DeadlineExceededError(
                        "query overran its deadline while queued for "
                        "encoding"
                    )
                if not self._busy and self._pending:
                    self._busy = True
                    run = self._claim_pending_locked()
                else:
                    # a leader is encoding (maybe our items); it notifies
                    # when it finishes, the timeout is only a safety net
                    timeout = 0.05
                    if deadline is not None:
                        timeout = min(
                            timeout, max(0.0, deadline - time.monotonic())
                        )
                    self._cond.wait(timeout=timeout)
                    continue
            self._run_batch(run)
        for item in items:
            if item.error is not None:
                raise item.error
        return np.stack([item.result for item in items])

    def _claim_pending_locked(self) -> List[_Item]:
        """Take the next batch off the queue, expiring stale items.

        Runs under ``self._cond``.  Items whose deadline has already
        passed get :class:`DeadlineExceededError` published immediately
        -- encoding them would waste batch width on a result nobody is
        waiting for.
        """
        now = time.monotonic()
        run: List[_Item] = []
        taken = 0
        for it in self._pending:
            if len(run) == self.max_batch_size:
                break
            taken += 1
            if it.expired(now):
                it.error = DeadlineExceededError(
                    "query overran its deadline while queued for encoding"
                )
                it.done.set()
                continue
            run.append(it)
        del self._pending[:taken]
        return run

    def _run_batch(self, run: List[_Item]) -> None:
        if not run:  # every claimed item had already expired
            with self._cond:
                self._busy = False
                self._cond.notify_all()
            return
        # accumulation window: let threads mid-submit join this batch
        if self.max_wait_s > 0 and len(run) < self.max_batch_size:
            time.sleep(self.max_wait_s)
            with self._cond:
                extra = self._pending[: self.max_batch_size - len(run)]
                del self._pending[: len(extra)]
            run.extend(extra)
        try:
            vectors = self._encode_batch([it.tree for it in run])
            for i, it in enumerate(run):
                it.result = np.asarray(vectors[i]).copy()
        except BaseException as exc:  # publish, don't strand followers
            for it in run:
                it.error = exc
        finally:
            with self._cond:
                self._busy = False
                self.stats.record(len(run))
                for it in run:
                    it.done.set()
                # wake followers: completed ones return, the rest elect
                # the next leader immediately instead of timing out
                self._cond.notify_all()
            self._observe(run)

    def _observe(self, run: List[_Item]) -> None:
        if self.registry is None:
            return
        now = time.perf_counter()
        self.registry.counter(
            "repro_microbatch_batches_total", "Micro-batches run"
        ).inc()
        self.registry.counter(
            "repro_microbatch_items_total", "Items coalesced into batches"
        ).inc(len(run))
        self.registry.histogram(
            "repro_microbatch_size", "Items per micro-batch",
            buckets=SIZE_BUCKETS,
        ).observe(len(run))
        self.registry.histogram(
            "repro_microbatch_fill",
            "Micro-batch fill ratio (items / max_batch_size)",
            buckets=FRACTION_BUCKETS,
        ).observe(len(run) / self.max_batch_size)
        wait = self.registry.histogram(
            "repro_microbatch_wait_seconds",
            "Submit-to-publish coalescing wait per item",
        )
        for it in run:
            wait.observe(now - it.submitted)
