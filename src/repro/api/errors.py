"""Typed engine errors with stable CLI exit codes and HTTP statuses.

Every failure a consumer can plausibly hit -- a missing checkpoint, a
query against an index that was never built, a malformed request --
raises an :class:`EngineError` subclass.  The CLI maps them to one-line
``error: ...`` messages with *distinct* non-zero exit codes (so scripts
can tell "model missing" from "index missing" without parsing stderr),
and the HTTP server maps the same hierarchy to response statuses.

Exit code 2 is deliberately unused: argparse claims it for usage errors.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for clean, user-facing engine failures."""

    exit_code = 1
    http_status = 500


class ModelNotFoundError(EngineError):
    """No model checkpoint at the configured path (or none configured)."""

    exit_code = 3
    http_status = 503


class InputNotFoundError(EngineError):
    """A binary / firmware input path does not exist or cannot be read."""

    exit_code = 4
    http_status = 404


class IndexStoreError(EngineError):
    """The embedding index is missing, corrupt, or cannot be created."""

    exit_code = 5
    http_status = 409


class BadRequestError(EngineError):
    """A structurally valid call with unusable content (unknown function,
    unknown CVE id, malformed config key, bad parameter value)."""

    exit_code = 6
    http_status = 400


class DeadlineExceededError(EngineError):
    """A request overran its deadline (``request_timeout_ms``) and was
    abandoned rather than allowed to hold a slot indefinitely."""

    exit_code = 7
    http_status = 504


class ServerOverloadedError(EngineError):
    """Admission control shed this request: the bounded in-flight queue
    was full.  The HTTP layer adds a ``Retry-After`` header."""

    exit_code = 8
    http_status = 503
