"""The unified Asteria facade: one object, the whole paper workflow.

:class:`AsteriaEngine` owns the model, the artifact cache, the embedding
index and the staged corpus pipeline behind one
:class:`~repro.api.config.EngineConfig`, and exposes the full lifecycle
as a small set of typed request/response dataclasses:

* :meth:`AsteriaEngine.encode`  -- binary -> function encodings (cached);
* :meth:`AsteriaEngine.ingest`  -- firmware/binaries -> embedding index
  via the staged pipeline;
* :meth:`AsteriaEngine.query` / :meth:`query_batch` -- top-k similar
  functions, query-side encodes coalesced through the serving
  micro-batcher (:mod:`repro.api.batching`); a query batch sweeps the
  corpus once for all its queries (broadcasted Siamese GEMM blocks);
* :meth:`AsteriaEngine.compare` -- pairwise M / calibrated F scores;
* :meth:`AsteriaEngine.train`   -- train a model and adopt it;
* :meth:`AsteriaEngine.stats`   -- counters for monitoring and tests.

Every consumer -- the CLI, the HTTP server
(:mod:`repro.api.server`), ``VulnerabilitySearch``, ``SearchService``,
benchmarks and examples -- constructs its model/cache/index/pipeline
stack through this class; nothing else in the repo assembles those
pieces by hand.  The engine is thread-safe: concurrent :meth:`query`
calls are the serving hot path and ride the micro-batcher, while
store-mutating calls serialize behind one lock.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from collections import OrderedDict

import numpy as np
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import repro.faults as faults
from repro.api.batching import MicroBatcher
from repro.api.config import EngineConfig
from repro.api.errors import (
    BadRequestError,
    DeadlineExceededError,
    EngineError,
    IndexStoreError,
    InputNotFoundError,
    ModelNotFoundError,
)
from repro.binformat.binary import BinaryFile
from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.core.training import TrainConfig, Trainer, TrainHistory
from repro.index.ann import DEFAULT_MIN_CANDIDATES
from repro.index.search import SearchHit, SearchService
from repro.index.store import MANIFEST_NAME, EmbeddingStore, StoreError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, trace
from repro.pipeline import (
    ArtifactCache,
    CorpusPipeline,
    PipelineStats,
    binary_digest,
)
from repro.pipeline.stages import extract_binary
from repro.serving import generations
from repro.serving.coordinator import ServingCoordinator
from repro.serving.pool import SweepError
from repro.utils.logging import get_logger

_LOG = get_logger("api.engine")

#: Sentinel for "use the engine's configured default" on optional knobs
#: where ``None`` already means "unlimited".
USE_DEFAULT = -1

#: Most-recently-queried binaries whose extracted trees stay memoized in
#: memory; a long-running server over many distinct query binaries evicts
#: the oldest instead of growing without bound (the artifact cache still
#: holds evicted trees, on disk when ``cache_dir`` is set).
EXTRACT_MEMO_MAX_BINARIES = 64

BinarySource = Union[BinaryFile, str, Path]


# -- request / response types -------------------------------------------------------


@dataclass
class EncodeRequest:
    """Encode every (or one named) function of a binary."""

    binary: Optional[BinarySource] = None
    function: Optional[str] = None


@dataclass
class EncodeResult:
    binary_name: str
    arch: str
    encodings: List[FunctionEncoding]


@dataclass
class IngestRequest:
    """Feed corpora into the engine's embedding index.

    Any combination of: in-memory firmware ``images``, loose ``binaries``
    (:class:`BinaryFile` or ``(binary, image_id)`` pairs), or a generated
    firmware corpus (``corpus_images``/``corpus_seed``, the substitute
    for the paper's vendor image crawl).
    """

    images: Sequence = ()
    binaries: Sequence = ()
    corpus_images: Optional[int] = None
    corpus_seed: int = 0


@dataclass
class IngestResult:
    """Counts cover everything the request ingested.  ``pipeline`` is
    the first pipeline run's per-stage stats (the firmware-images run
    when a request carries both images and loose binaries); every run's
    stats are in ``pipelines``."""

    n_functions: int = 0
    n_binaries: int = 0
    n_images: int = 0
    n_unpack_failures: int = 0
    n_skipped_small: int = 0
    n_rows_total: int = 0
    pipeline: Optional[PipelineStats] = None
    pipelines: List[PipelineStats] = field(default_factory=list)


@dataclass
class QueryRequest:
    """One top-k similarity query.

    Exactly one query source: a ready ``encoding``, a library ``cve_id``,
    or a ``binary`` (object or path) plus ``function`` name.
    ``top_k=USE_DEFAULT`` picks the configured default; ``top_k=None``
    keeps every above-threshold hit.  ``threshold=USE_DEFAULT`` applies
    the configured Youden threshold; ``threshold=None`` disables the
    cutoff (the full top-k).
    """

    encoding: Optional[FunctionEncoding] = None
    cve_id: Optional[str] = None
    binary: Optional[BinarySource] = None
    function: Optional[str] = None
    top_k: Optional[int] = USE_DEFAULT
    threshold: Optional[float] = None
    #: Absolute ``time.monotonic()`` deadline; ``None`` derives one from
    #: ``EngineConfig.request_timeout_ms`` at query entry.
    deadline: Optional[float] = None


@dataclass
class QueryResult:
    query: str
    encoding: FunctionEncoding
    hits: List[SearchHit]
    n_rows: int
    #: Index generation the hits were swept from (shard-parallel serving
    #: only; the in-process path leaves it empty).  Every hit in one
    #: result comes from this single generation -- merges never mix.
    generation: str = ""


@dataclass
class CompareRequest:
    binary1: Optional[BinarySource] = None
    function1: str = ""
    binary2: Optional[BinarySource] = None
    function2: str = ""


@dataclass
class CompareResult:
    function1: str
    function2: str
    ast_similarity: float  # M, the raw Siamese score
    similarity: float  # F, callee-count calibrated


@dataclass
class TrainRequest:
    """Train on the generated buildroot corpus (the paper's dataset)."""

    packages: int = 4
    pairs: int = 15
    epochs: int = 2
    embedding_dim: int = 16
    batch_size: int = 1
    lr: float = 0.05
    split: float = 0.8
    seed: int = 0
    output_path: Optional[str] = None


@dataclass
class TrainResult:
    n_train: int
    n_dev: int
    best_auc: float
    best_epoch: int
    history: TrainHistory
    model_path: Optional[str] = None


@dataclass
class EngineStats:
    """A point-in-time snapshot of the engine's counters."""

    model_loaded: bool = False
    model_path: Optional[str] = None
    model_fingerprint: Optional[str] = None
    index_root: Optional[str] = None
    index_rows: int = 0
    index_shards: int = 0
    index_dtype: Optional[str] = None
    index_mmap: bool = False
    index_vector_bytes: int = 0
    index_resident_bytes: int = 0
    ann_backend: Optional[str] = None
    ann_persisted: Optional[bool] = None
    ann_rows_projected: int = 0
    #: Tiered (ivf-pq) index surface: rows (re)quantized by the live
    #: index construction and the coarse-partition knobs it runs with.
    ann_rows_quantized: int = 0
    ann_n_lists: int = 0
    ann_nprobe: int = 0
    n_queries: int = 0
    n_query_batches: int = 0
    n_query_encodes: int = 0
    n_encoded_trees: int = 0
    encode_block_rows: int = 0
    micro_batches: int = 0
    micro_batched_items: int = 0
    micro_batch_max: int = 0
    micro_batch_mean: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Degraded-mode surface: True when the engine is serving with less
    #: than its full fidelity (quarantined shards, ANN fallback, ...).
    degraded: bool = False
    degraded_reasons: List[str] = field(default_factory=list)
    index_quarantined_shards: int = 0
    n_shed: int = 0
    n_timeouts: int = 0
    serve_workers: int = 1
    active_generation: int = 0
    pool_workers_alive: int = 0
    pool_workers: List[Dict] = field(default_factory=list)
    n_index_swaps: int = 0
    config: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return dataclasses.asdict(self)


# -- the facade ---------------------------------------------------------------------


class AsteriaEngine:
    """One engine = one model + one cache + one index + one pipeline."""

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        model: Optional[Asteria] = None,
        store: Optional[EmbeddingStore] = None,
        cache: Optional[ArtifactCache] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config or EngineConfig()
        self._model = model
        self._store = store
        self._cache = cache
        self._pipeline: Optional[CorpusPipeline] = None
        self._service: Optional[SearchService] = None
        self._batcher: Optional[MicroBatcher] = None
        self._library: Optional[Dict] = None
        self._coordinator: Optional[ServingCoordinator] = None
        self._coordinator_unavailable = False
        self._extract_memo: "OrderedDict[str, Tuple]" = OrderedDict()
        self._lock = threading.RLock()  # store / service / pipeline state
        self._extract_lock = threading.Lock()  # query-side tree extraction
        #: the engine's telemetry sink, shared with every component it
        #: assembles (batcher, pipeline, service, ANN index, HTTP server)
        self.obs = registry if registry is not None else MetricsRegistry()
        if self.config.faults:
            # arm configured failpoints process-wide (chaos testing)
            faults.configure(self.config.faults)

    @classmethod
    def from_model(
        cls, model: Asteria, config: Optional[EngineConfig] = None, **kw
    ) -> "AsteriaEngine":
        """Wrap an already-constructed model (the deprecated-shim path)."""
        return cls(config=config, model=model, **kw)

    # -- owned components --------------------------------------------------

    @property
    def model(self) -> Asteria:
        with self._lock:
            if self._model is None:
                path = self.config.model_path
                if path is None:
                    raise ModelNotFoundError(
                        "no model: set EngineConfig.model_path, pass a "
                        "model, or call train() first"
                    )
                if not Path(path).exists():
                    raise ModelNotFoundError(
                        f"model checkpoint not found: {path}"
                    )
                self._model = Asteria.load(path)
            return self._model

    @property
    def cache(self) -> ArtifactCache:
        with self._lock:
            if self._cache is None:
                self._cache = (
                    ArtifactCache(self.config.cache_dir)
                    if self.config.cache_dir
                    else ArtifactCache.in_memory()
                )
            return self._cache

    @property
    def pipeline(self) -> CorpusPipeline:
        with self._lock:
            if self._pipeline is None:
                self._pipeline = CorpusPipeline(
                    self.model,
                    jobs=self.config.jobs,
                    cache=self.cache,
                    encode_batch_size=self.config.encode_batch_size,
                    registry=self.obs,
                    encode_dtype=self.config.encode_dtype,
                    encode_block=self.config.encode_block,
                )
            return self._pipeline

    @property
    def store(self) -> EmbeddingStore:
        """The engine's index: durable at ``index_root``, else in-memory.

        A configured ``index_root`` is opened when it exists and created
        when it does not; use :meth:`open_index` / :meth:`create_index`
        when only one of those is acceptable.
        """
        with self._lock:
            if self._store is None:
                root = self.config.index_root
                if root is None:
                    self._store = EmbeddingStore.in_memory(
                        dim=self.model.config.hidden_dim,
                        shard_size=self.config.shard_size,
                        dtype=self.config.store_dtype,
                    )
                elif (
                    generations.active_root(root) / MANIFEST_NAME
                ).exists():
                    self._store = self.open_index()
                else:
                    self._store = self.create_index()
            return self._store

    @property
    def service(self) -> SearchService:
        with self._lock:
            if self._service is None:
                self._service = self._make_service(self.store)
            return self._service

    @property
    def batcher(self) -> MicroBatcher:
        with self._lock:
            if self._batcher is None:
                model = self.model
                config = self.config

                def encode(trees):
                    # under the engine lock: a batch must not read
                    # weights that train()'s optimizer is mid-mutating
                    with self._lock:
                        return model.encode_batch(
                            trees,
                            batch_size=config.encode_batch_size,
                            dtype=config.encode_dtype,
                            block=config.encode_block,
                            registry=self.obs,
                        )

                self._batcher = MicroBatcher(
                    encode,
                    max_batch_size=self.config.micro_batch_size,
                    max_wait_s=self.config.micro_batch_wait_ms / 1000.0,
                    registry=self.obs,
                )
            return self._batcher

    def _backend_options(self, backend: str) -> Dict:
        if backend == "lsh":
            return {"seed": self.config.seed}
        if backend == "ivf-pq":
            return {
                "seed": self.config.seed,
                "n_lists": self.config.ann_lists,
                "nprobe": self.config.ann_nprobe,
                "rerank": self.config.ann_rerank,
            }
        return {}

    def _make_service(
        self,
        store: EmbeddingStore,
        backend: Optional[str] = None,
        encode_batch_size: Optional[int] = None,
        **backend_options,
    ) -> SearchService:
        backend = backend or self.config.backend
        options = self._backend_options(backend)
        options.update(backend_options)
        encode_batch_size = encode_batch_size or self.config.encode_batch_size
        pipeline = self.pipeline
        if encode_batch_size != pipeline.encode_batch_size:
            # honor a per-service batch size override (same model, cache
            # and worker count; only the encode chunking differs)
            pipeline = CorpusPipeline(
                self.model,
                jobs=self.config.jobs,
                cache=self.cache,
                encode_batch_size=encode_batch_size,
                registry=self.obs,
                encode_dtype=self.config.encode_dtype,
                encode_block=self.config.encode_block,
            )
        return SearchService(
            self.model,
            store,
            backend=backend,
            calibrate=self.config.calibrate,
            encode_batch_size=encode_batch_size,
            pipeline=pipeline,
            registry=self.obs,
            **options,
        )

    def make_service(
        self,
        root=None,
        backend: Optional[str] = None,
        shard_size: Optional[int] = None,
        encode_batch_size: Optional[int] = None,
        meta: Optional[Dict] = None,
        **backend_options,
    ) -> SearchService:
        """Assemble a standalone store + service sharing this engine's
        model, cache and pipeline (``root=None`` keeps it in memory)."""
        dim = self.model.config.hidden_dim
        shard_size = shard_size or self.config.shard_size
        if root is None:
            store = EmbeddingStore.in_memory(
                dim=dim, shard_size=shard_size,
                dtype=self.config.store_dtype,
            )
        else:
            try:
                store = EmbeddingStore.create(
                    root, dim=dim, shard_size=shard_size, meta=meta,
                    dtype=self.config.store_dtype,
                )
            except StoreError as exc:
                raise IndexStoreError(str(exc)) from exc
        return self._make_service(
            store, backend=backend, encode_batch_size=encode_batch_size,
            **backend_options,
        )

    # -- index lifecycle ---------------------------------------------------

    def create_index(self, meta: Optional[Dict] = None) -> EmbeddingStore:
        """Create a new durable index at ``config.index_root``."""
        root = self.config.index_root
        if root is None:
            raise IndexStoreError(
                "create_index needs EngineConfig.index_root"
            )
        try:
            store = EmbeddingStore.create(
                root,
                dim=self.model.config.hidden_dim,
                shard_size=self.config.shard_size,
                meta=meta,
                dtype=self.config.store_dtype,
            )
        except StoreError as exc:
            raise IndexStoreError(str(exc)) from exc
        self._adopt_store(store)
        return store

    def open_index(self) -> EmbeddingStore:
        """Open the existing durable index at ``config.index_root``.

        Resolves through the generation ``CURRENT`` pointer when one
        exists, so an engine restarted after a hot swap opens the
        generation the swap published, not the stale flat layout.
        """
        root = self.config.index_root
        if root is None:
            raise IndexStoreError("open_index needs EngineConfig.index_root")
        try:
            store = EmbeddingStore.open(generations.active_root(root))
        except StoreError as exc:
            raise IndexStoreError(str(exc)) from exc
        self._adopt_store(store)
        return store

    def _adopt_store(self, store: EmbeddingStore) -> None:
        with self._lock:
            self._store = store
            self._service = None

    # -- shard-parallel serving --------------------------------------------

    @property
    def coordinator(self) -> Optional[ServingCoordinator]:
        """The shard-parallel serving coordinator, or ``None``.

        Materialised lazily when ``config.serve_workers > 1`` and the
        index is durable (workers mmap the store by path; an in-memory
        store has nothing to share, so it falls back to in-process
        sweeps with a one-time warning).
        """
        if self.config.serve_workers <= 1:
            return None
        with self._lock:
            if self._coordinator is None and not self._coordinator_unavailable:
                if self.config.index_root is None:
                    _LOG.warning(
                        "serve_workers=%d needs a durable index_root; "
                        "falling back to in-process sweeps",
                        self.config.serve_workers,
                    )
                    self._coordinator_unavailable = True
                    return None
                store = self.store  # materialise (and verify) once here
                coordinator = ServingCoordinator(
                    self.model,
                    self.config.index_root,
                    self.config.serve_workers,
                    registry=self.obs,
                    calibrate=self.config.calibrate,
                )
                rel = (
                    generations.read_current(self.config.index_root)
                    or generations.FLAT_GENERATION
                )
                coordinator.activate(rel, store)
                self._coordinator = coordinator
            return self._coordinator

    def pool_workers(self) -> List[Dict]:
        """Per-worker liveness of the serve pool (empty when disabled)."""
        with self._lock:
            coordinator = self._coordinator
        return coordinator.workers_info() if coordinator is not None else []

    def close(self) -> None:
        """Release background serving resources (pool workers).

        Idempotent; the engine remains usable afterwards via the
        in-process sweep path (the pool is not respawned -- a draining
        server must not leak fresh children).  Called by the HTTP
        server on shutdown so no orphaned processes survive it.
        """
        with self._lock:
            coordinator, self._coordinator = self._coordinator, None
            self._coordinator_unavailable = True
        if coordinator is not None:
            coordinator.close()

    # -- encode ------------------------------------------------------------

    def encode(self, request: Optional[EncodeRequest] = None,
               **kw) -> EncodeResult:
        """Offline phase for one binary (through the artifact cache)."""
        request = request or EncodeRequest(**kw)
        binary = self._binary_of(request.binary)
        with trace("engine.encode", binary=binary.name):
            with self._lock:  # the artifact cache is not itself thread-safe
                encodings = self.pipeline.encode_binary(binary)
        if request.function is not None:
            encodings = [e for e in encodings if e.name == request.function]
            if not encodings:
                raise BadRequestError(
                    f"function {request.function!r} not found (or below the "
                    f"AST size floor) in binary {binary.name!r}"
                )
        return EncodeResult(
            binary_name=binary.name, arch=binary.arch, encodings=encodings
        )

    # -- ingest ------------------------------------------------------------

    def ingest(self, request: Optional[IngestRequest] = None,
               **kw) -> IngestResult:
        """Offline phase for corpora: pipeline -> embedding index."""
        request = request or IngestRequest(**kw)
        images = list(request.images)
        if request.corpus_images is not None:  # 0 = an (empty) corpus
            from repro.evalsuite.vulnsearch import build_firmware_dataset

            dataset = build_firmware_dataset(
                n_images=request.corpus_images, seed=request.corpus_seed
            )
            images.extend(dataset.images)
        tagged = [
            (item, "") if isinstance(item, BinaryFile) else tuple(item)
            for item in request.binaries
        ]
        result = IngestResult()
        with trace("engine.ingest", n_images=len(images),
                   n_binaries=len(tagged)) as span:
            with self._lock:
                coordinator = self.coordinator
                if coordinator is not None:
                    # shard-parallel serving: build the extended corpus
                    # as a fresh generation while queries keep sweeping
                    # the old one (pool sweeps don't take this lock),
                    # then hot-swap atomically
                    rel, store = self._prepare_next_generation()
                else:
                    rel, store = None, self.store
                if images or not tagged:
                    # an images run always happens unless the request was
                    # binaries-only, so result.pipeline is never None and an
                    # empty corpus reports empty stats rather than nothing
                    run = self.pipeline.run_images(images, sink=store)
                    self._merge_ingest(result, run.stats)
                if tagged:
                    run = self.pipeline.run_binaries(tagged, sink=store)
                    self._merge_ingest(result, run.stats)
                result.n_rows_total = len(store)
                if coordinator is not None:
                    self._adopt_store(
                        coordinator.swap_to(rel, store=store)
                    )
            span.set(n_functions=result.n_functions,
                     n_rows_total=result.n_rows_total)
        _LOG.info(
            "ingested %d functions (%d total rows)",
            result.n_functions, result.n_rows_total,
        )
        return result

    def _prepare_next_generation(self) -> Tuple[str, EmbeddingStore]:
        """Clone the live store into the next generation directory.

        Shard files are hard-linked (immutable once flushed), so the
        clone is O(files) not O(bytes); the pipeline then appends new
        shards only the new generation can see.
        """
        root = self.config.index_root
        old = self.store
        rel, path = generations.prepare_generation(root)
        generations.clone_store(old.root, path)
        try:
            store = EmbeddingStore.open(path, verify=False)
        except StoreError as exc:
            raise IndexStoreError(str(exc)) from exc
        return rel, store

    @staticmethod
    def _merge_ingest(result: IngestResult, stats: PipelineStats) -> None:
        result.n_functions += stats.n_functions
        result.n_binaries += stats.n_binaries
        result.n_images += stats.n_images
        result.n_unpack_failures += stats.n_unpack_failures
        result.n_skipped_small += stats.n_skipped_small
        result.pipelines.append(stats)
        result.pipeline = result.pipelines[0]

    # -- query -------------------------------------------------------------

    def cve_library(self) -> Dict[str, Tuple]:
        """``{cve_id: (CVEEntry, FunctionEncoding)}``, encoded once.

        The query side of the paper's search protocol; encodings go
        through the same artifact cache as the corpus.
        """
        with self._lock:
            if self._library is None:
                from repro.compiler.pipeline import compile_package
                from repro.evalsuite.vulnsearch import (
                    CVE_LIBRARY,
                    vulnerable_function,
                )
                from repro.lang.nodes import Package

                library = {}
                for entry in CVE_LIBRARY:
                    package = Package(
                        name=f"{entry.software}-{entry.vulnerable_version}",
                        functions=[vulnerable_function(entry)],
                    )
                    binary = compile_package(package, "x86")
                    by_name = {
                        encoding.name: encoding
                        for encoding in self.pipeline.encode_binary(binary)
                    }
                    encoding = by_name.get(entry.function_name)
                    if encoding is None:
                        raise ValueError(
                            f"CVE function {entry.function_name!r} did not "
                            f"survive decompilation/preprocessing"
                        )
                    library[entry.cve_id] = (entry, encoding)
                self._library = library
            return self._library

    def _deadline_of(self, request: QueryRequest) -> Optional[float]:
        """The request's absolute deadline (its own, or one derived from
        ``config.request_timeout_ms`` starting now)."""
        if request.deadline is not None:
            return request.deadline
        timeout_ms = self.config.request_timeout_ms
        if timeout_ms is None:
            return None
        return time.monotonic() + timeout_ms / 1000.0

    @staticmethod
    def _check_deadline(deadline: Optional[float], where: str) -> None:
        if deadline is not None and time.monotonic() >= deadline:
            raise DeadlineExceededError(
                f"request overran its deadline before the {where}"
            )

    def _count_timeout(self) -> None:
        self.obs.counter(
            "repro_request_timeouts_total",
            "Requests abandoned at their deadline",
        ).inc()

    def query(self, request: Optional[QueryRequest] = None,
              **kw) -> QueryResult:
        """Top-k similar corpus functions for one query.

        Concurrent callers coalesce their query-side encodes into shared
        level-batched GEMM calls; results are bit-for-bit identical to
        serial execution.  A request that cannot finish by its deadline
        (``request.deadline`` or ``config.request_timeout_ms``) raises
        :class:`DeadlineExceededError` instead of holding its slot.
        """
        request = request or QueryRequest(**kw)
        deadline = self._deadline_of(request)
        try:
            with trace("engine.query") as span:
                name, encoding = self._resolve_query(
                    request, deadline=deadline
                )
                span.set(query=name)
                self._check_deadline(deadline, "corpus sweep")
                result = self._finish_query(name, encoding, request)
                span.set(n_hits=len(result.hits), n_rows=result.n_rows)
        except DeadlineExceededError:
            self._count_timeout()
            raise
        self._observe_query(span, "repro_query_seconds",
                            "Wall time of one engine.query call")
        return result

    def query_batch(
        self, requests: Sequence[QueryRequest]
    ) -> List[QueryResult]:
        """Many queries in one pass: batched encode, batched top-k.

        Selects the same hits as mapping :meth:`query` (scores agree to
        float rounding; only near-exact ties can reorder), but
        binary-sourced query encodes run as one micro-batched
        level-batched GEMM call and the top-k scoring sweeps the corpus
        once for the whole batch (``Q x corpus`` Siamese GEMM blocks)
        instead of once per request.  Requests sharing effective
        ``top_k``/``threshold`` values are scored together; mixed
        parameters simply split the batch into a few sub-batches.
        """
        requests = list(requests)
        if not requests:
            return []
        deadlines = [
            d for d in (self._deadline_of(r) for r in requests)
            if d is not None
        ]
        # the earliest per-request deadline bounds the shared phases (one
        # encode pass + one sweep serve the whole batch)
        deadline = min(deadlines) if deadlines else None
        try:
            return self._query_batch(requests, deadline)
        except DeadlineExceededError:
            self._count_timeout()
            raise

    def _query_batch(
        self, requests: List[QueryRequest], deadline: Optional[float]
    ) -> List[QueryResult]:
        with trace("engine.query_batch", n_queries=len(requests)) as span:
            resolved = self._resolve_query_batch(requests, deadline=deadline)
            self._check_deadline(deadline, "corpus sweep")
            groups: Dict[Tuple, List[int]] = {}
            for i, request in enumerate(requests):
                top_k = (
                    self.config.top_k if request.top_k == USE_DEFAULT
                    else request.top_k
                )
                threshold = (
                    self.config.threshold if request.threshold == USE_DEFAULT
                    else request.threshold
                )
                groups.setdefault((top_k, threshold), []).append(i)
            results: List[Optional[QueryResult]] = [None] * len(requests)
            coordinator = self.coordinator
            if coordinator is not None:
                n_rows = 0
                for (top_k, threshold), members in groups.items():
                    hit_lists, n_rows, generation = self._pool_sweep(
                        coordinator,
                        [resolved[i][1] for i in members],
                        top_k, threshold, deadline,
                    )
                    for i, hits in zip(members, hit_lists):
                        name, encoding = resolved[i]
                        results[i] = QueryResult(
                            query=name, encoding=encoding, hits=hits,
                            n_rows=n_rows, generation=generation,
                        )
            else:
                with self._lock:
                    service = self.service
                    n_rows = len(service.store)
                    for (top_k, threshold), members in groups.items():
                        hit_lists = service.query_batch(
                            [resolved[i][1] for i in members],
                            top_k=top_k,
                            threshold=threshold,
                        )
                        for i, hits in zip(members, hit_lists):
                            name, encoding = resolved[i]
                            results[i] = QueryResult(
                                query=name, encoding=encoding, hits=hits,
                                n_rows=n_rows,
                            )
            span.set(n_groups=len(groups), n_rows=n_rows)
        self.obs.counter(
            "repro_queries_total", "Queries answered by the engine"
        ).inc(len(requests))
        self.obs.counter(
            "repro_query_batches_total", "query_batch calls answered"
        ).inc()
        self._observe_query(span, "repro_query_batch_seconds",
                            "Wall time of one engine.query_batch call")
        return results

    def _observe_query(self, span: Span, metric: str, help_text: str) -> None:
        """Record a closed query span: latency histogram + slow-query log."""
        self.obs.histogram(metric, help_text).observe(span.wall_s)
        threshold_ms = self.config.slow_query_ms
        if threshold_ms is None or span.wall_s * 1000.0 < threshold_ms:
            return
        self.obs.counter(
            "repro_slow_queries_total",
            "Queries slower than EngineConfig.slow_query_ms",
        ).inc()
        _LOG.warning(
            "slow query (%.1fms >= %.1fms): %s",
            span.wall_s * 1000.0, threshold_ms,
            json.dumps(span.to_dict(), sort_keys=True),
        )

    def _resolve_query_batch(
        self,
        requests: Sequence[QueryRequest],
        deadline: Optional[float] = None,
    ) -> List[Tuple[str, FunctionEncoding]]:
        """Resolve every request's encoding, coalescing binary encodes.

        Requests that need a query-side encode contribute their trees to
        a single :meth:`MicroBatcher.encode_many` call, so a Q-query
        batch costs a handful of wide GEMM passes instead of Q tree
        walks.
        """
        resolved: List[Optional[Tuple[str, FunctionEncoding]]] = (
            [None] * len(requests)
        )
        jobs: List[Tuple[int, BinaryFile, str, Tuple]] = []
        for i, request in enumerate(requests):
            if (
                request.encoding is not None
                or request.cve_id is not None
                or request.binary is None
                or not request.function
            ):
                resolved[i] = self._resolve_query(request, deadline=deadline)
                continue
            binary = self._binary_of(request.binary)
            extracted, trees = self._extracted_for(binary)
            if request.function not in trees:
                raise BadRequestError(
                    f"function {request.function!r} not found (or below "
                    f"the AST size floor) in binary {binary.name!r}"
                )
            jobs.append(
                (i, binary, request.function, extracted,
                 trees[request.function])
            )
        if jobs:
            with trace("engine.encode_queries", n=len(jobs)):
                vectors = self.batcher.encode_many(
                    [tree for *_rest, tree in jobs], deadline=deadline
                )
            self.obs.counter(
                "repro_query_encodes_total",
                "Query-side function encodes",
            ).inc(len(jobs))
            for (i, binary, function, extracted, _tree), vector in zip(
                jobs, vectors
            ):
                encoding = self._encoding_from_extracted(
                    extracted, function, vector
                )
                resolved[i] = (f"{binary.name}:{function}", encoding)
        return resolved

    def _finish_query(
        self, name: str, encoding: FunctionEncoding, request: QueryRequest
    ) -> QueryResult:
        top_k = (
            self.config.top_k if request.top_k == USE_DEFAULT
            else request.top_k
        )
        threshold = (
            self.config.threshold if request.threshold == USE_DEFAULT
            else request.threshold
        )
        coordinator = self.coordinator
        if coordinator is not None:
            hit_lists, n_rows, generation = self._pool_sweep(
                coordinator, [encoding], top_k, threshold,
                self._deadline_of(request),
            )
            hits = hit_lists[0]
        else:
            generation = ""
            with self._lock:
                service = self.service
                hits = service.query(
                    encoding, top_k=top_k, threshold=threshold
                )
                n_rows = len(service.store)
        self.obs.counter(
            "repro_queries_total", "Queries answered by the engine"
        ).inc()
        return QueryResult(
            query=name, encoding=encoding, hits=hits, n_rows=n_rows,
            generation=generation,
        )

    def _pool_sweep(
        self,
        coordinator: ServingCoordinator,
        encodings: List[FunctionEncoding],
        top_k: Optional[int],
        threshold: Optional[float],
        deadline: Optional[float],
    ) -> Tuple[List[List[SearchHit]], int, str]:
        """One coordinator sweep with deadline + error translation.

        Runs *outside* the engine lock: concurrent requests fan out to
        the worker pool in parallel instead of serialising their GEMMs
        behind one in-process sweep.
        """
        timeout_s = (
            None if deadline is None
            else max(0.0, deadline - time.monotonic())
        )
        candidates = self._pool_candidates(encodings, top_k)
        try:
            return coordinator.query_batch(
                encodings, top_k=top_k, threshold=threshold,
                timeout_s=timeout_s, candidates=candidates,
            )
        except SweepError as exc:
            if "timed out" in str(exc):
                raise DeadlineExceededError(str(exc)) from exc
            raise EngineError(f"parallel sweep failed: {exc}") from exc

    def _pool_candidates(
        self,
        encodings: List[FunctionEncoding],
        top_k: Optional[int],
    ) -> Optional[List[np.ndarray]]:
        """Partition-aware serving for the tiered backend.

        The in-process ``ivf-pq`` index proposes per-query candidate
        rows (coarse probe + quantized sweep); the worker pool then
        exact-reranks only each range's slice of those rows, and the
        coordinator's :func:`select_top_k` merge stays bit-for-bit equal
        to a single-process rerank of the same candidate set.  ``None``
        (any other backend, ``top_k=None``, or a degraded exact
        fallback) keeps the full-corpus sweep.
        """
        if self.config.backend != "ivf-pq" or top_k is None:
            return None
        with self._lock:
            index = self.service.index()
        wanted = max(
            top_k * getattr(index, "oversample", self.config.ann_rerank),
            DEFAULT_MIN_CANDIDATES,
        )
        matrix = np.stack([np.asarray(e.vector) for e in encodings])
        per_query = index.candidate_rows_batch(matrix, wanted, encodings)
        if any(rows is None for rows in per_query):
            return None  # exact-fallback index: sweep everything
        return per_query

    def _resolve_query(
        self, request: QueryRequest, deadline: Optional[float] = None
    ) -> Tuple[str, FunctionEncoding]:
        if request.encoding is not None:
            return request.encoding.name, request.encoding
        if request.cve_id is not None:
            library = self.cve_library()
            if request.cve_id not in library:
                raise BadRequestError(f"unknown CVE id: {request.cve_id}")
            entry, encoding = library[request.cve_id]
            return entry.cve_id, encoding
        if request.binary is None:
            raise BadRequestError(
                "query needs an encoding, a cve_id, or a binary + function"
            )
        if not request.function:
            raise BadRequestError("binary queries need a function name")
        binary = self._binary_of(request.binary)
        encoding = self._encode_query_function(
            binary, request.function, deadline=deadline
        )
        return f"{binary.name}:{request.function}", encoding

    def _encode_query_function(
        self,
        binary: BinaryFile,
        function: str,
        deadline: Optional[float] = None,
    ) -> FunctionEncoding:
        """Encode one query function, riding the micro-batcher.

        Tree extraction (model-independent) is cached; the encode itself
        is deliberately fresh each call so the batcher -- not a memo --
        carries concurrent load.
        """
        extracted, trees = self._extracted_for(binary)
        if function not in trees:
            raise BadRequestError(
                f"function {function!r} not found (or below the AST size "
                f"floor) in binary {binary.name!r}"
            )
        with trace("engine.encode_query", function=function):
            vector = self.batcher.encode(trees[function], deadline=deadline)
        self.obs.counter(
            "repro_query_encodes_total", "Query-side function encodes"
        ).inc()
        return self._encoding_from_extracted(extracted, function, vector)

    def _encoding_from_extracted(
        self, extracted, function: str, vector: np.ndarray
    ) -> FunctionEncoding:
        i = extracted.names.index(function)
        return FunctionEncoding(
            name=function,
            arch=extracted.arch,
            binary_name=extracted.binary_name,
            vector=vector,
            callee_count=extracted.filtered_callee_count(
                i, self.model.config.beta
            ),
            ast_size=int(extracted.ast_sizes[i]),
        )

    def _extracted_for(self, binary: BinaryFile) -> Tuple:
        digest = binary_digest(binary)
        with self._extract_lock:
            entry = self._extract_memo.get(digest)
            if entry is not None:
                self._extract_memo.move_to_end(digest)
                return entry
        min_ast_size = self.model.config.min_ast_size
        with self._lock:  # all artifact-cache access shares one lock
            extracted = self.cache.get_trees(digest, min_ast_size)
        if extracted is None:
            # extraction runs unlocked so concurrent cold queries against
            # distinct binaries proceed in parallel; a duplicate
            # extraction of the same binary is idempotent, merely wasted
            extracted = extract_binary(binary, min_ast_size)
            with self._lock:
                if self.cache.get_trees(digest, min_ast_size) is None:
                    self.cache.put_trees(digest, min_ast_size, extracted)
                    self.cache.flush()
        entry = (extracted, dict(zip(extracted.names, extracted.trees())))
        with self._extract_lock:
            entry = self._extract_memo.setdefault(digest, entry)
            self._extract_memo.move_to_end(digest)
            while len(self._extract_memo) > EXTRACT_MEMO_MAX_BINARIES:
                self._extract_memo.popitem(last=False)  # evict oldest
            return entry

    # -- compare -----------------------------------------------------------

    def compare(self, request: Optional[CompareRequest] = None,
                **kw) -> CompareResult:
        """Pairwise scores for two named binary functions."""
        request = request or CompareRequest(**kw)
        self.model  # a missing checkpoint outranks missing inputs
        e1 = self._compare_encoding(request.binary1, request.function1)
        e2 = self._compare_encoding(request.binary2, request.function2)
        return CompareResult(
            function1=request.function1,
            function2=request.function2,
            ast_similarity=self.model.similarity(e1, e2, calibrate=False),
            similarity=self.model.similarity(e1, e2),
        )

    def _compare_encoding(
        self, source: Optional[BinarySource], function: str
    ) -> FunctionEncoding:
        """Encode one function for compare (no AST size floor, as the
        paper's pairwise protocol scores every decompilable function)."""
        from repro.decompiler import decompile_function

        binary = self._binary_of(source)
        try:
            record = binary.function_named(function)
        except KeyError as exc:
            raise BadRequestError(str(exc)) from exc
        fn = decompile_function(binary, record)
        with self._lock:  # encode_function toggles autograd state
            return self.model.encode_function(fn)

    # -- train -------------------------------------------------------------

    def train(self, request: Optional[TrainRequest] = None,
              **kw) -> TrainResult:
        """Train a fresh model on the generated corpus and adopt it."""
        from repro.core.pairs import (
            build_cross_arch_pairs,
            split_pairs,
            to_tree_pairs,
        )
        from repro.evalsuite.datasets import build_buildroot_dataset

        request = request or TrainRequest(**kw)
        dataset = build_buildroot_dataset(
            n_packages=request.packages, seed=request.seed
        )
        pairs = to_tree_pairs(
            build_cross_arch_pairs(
                dataset.functions, request.pairs, seed=request.seed
            )
        )
        train, dev = split_pairs(pairs, request.split, seed=request.seed)
        model = Asteria(AsteriaConfig(embedding_dim=request.embedding_dim))
        trainer = Trainer(
            model.siamese,
            TrainConfig(
                epochs=request.epochs,
                lr=request.lr,
                batch_size=request.batch_size,
            ),
        )
        with self._lock:
            # training's backward passes and the encode paths' no_grad()
            # both touch process-global autograd state; serialize them
            history = trainer.train(train, dev)
        if request.output_path:
            model.save(request.output_path)
        self._adopt_model(model)
        return TrainResult(
            n_train=len(train),
            n_dev=len(dev),
            best_auc=history.best_auc,
            best_epoch=history.best_epoch,
            history=history,
            model_path=request.output_path,
        )

    def _adopt_model(self, model: Asteria) -> None:
        """Swap the engine onto a new model, dropping model-bound state.

        The store keeps its rows: re-:meth:`ingest` to refresh encodings
        produced by an older model.
        """
        with self._lock:
            self._model = model
            self._pipeline = None
            self._service = None
            self._batcher = None
            self._library = None
            with self._extract_lock:
                self._extract_memo.clear()

    # -- stats -------------------------------------------------------------

    def stats(self) -> EngineStats:
        """Counters snapshot of already-materialised state.

        Deliberately side-effect free: it never loads the model, builds
        the pipeline/cache, or touches disk, so a monitoring endpoint
        polling it cannot perturb the engine.  ``model_fingerprint`` is
        therefore only reported once the pipeline exists (i.e. after the
        first encode/ingest/query).
        """
        stats = EngineStats(
            model_loaded=self._model is not None,
            model_path=self.config.model_path,
            index_root=self.config.index_root,
            config=self.config.to_dict(),
        )
        with self._lock:
            if self._pipeline is not None:
                stats.model_fingerprint = self._pipeline.model_fingerprint
            if self._store is not None:
                stats.index_rows = len(self._store)
                stats.index_shards = self._store.n_shards
                footprint = self._store.memory_footprint()
                stats.index_dtype = footprint["dtype"]
                stats.index_mmap = footprint["mmap"]
                stats.index_vector_bytes = footprint["vector_bytes"]
                stats.index_resident_bytes = footprint["resident_bytes"]
                stats.index_quarantined_shards = len(self._store.quarantined)
                if self._store.degraded:
                    stats.degraded_reasons.append(
                        f"{len(self._store.quarantined)} shard(s) "
                        f"quarantined; serving a corpus prefix"
                    )
            if self._service is not None:
                stats.ann_backend = self._service.backend
                stats.degraded_reasons.extend(self._service.degraded_reasons)
                ann = self._service.ann_info()
                if ann is not None:
                    stats.ann_persisted = ann["persisted"]
                    stats.ann_rows_projected = ann["rows_projected"]
                    stats.ann_rows_quantized = ann.get(
                        "rows_quantized", 0
                    )
                    stats.ann_n_lists = ann.get("n_lists", 0)
                    stats.ann_nprobe = ann.get("nprobe", 0)
            if self._cache is not None:
                stats.cache_hits = self._cache.stats.hits
                stats.cache_misses = self._cache.stats.misses
            if self._batcher is not None:
                b = self._batcher.stats
                stats.micro_batches = b.n_batches
                stats.micro_batched_items = b.n_items
                stats.micro_batch_max = b.max_batch_size
                stats.micro_batch_mean = b.mean_batch_size
            stats.serve_workers = self.config.serve_workers
            if self._coordinator is not None:
                stats.active_generation = self._coordinator.generation_seq
                stats.pool_workers = self._coordinator.workers_info()
                stats.pool_workers_alive = sum(
                    1 for w in stats.pool_workers if w["alive"]
                )
        # the query counters are views over the metrics registry, so
        # /v1/stats and a /metrics scrape can never disagree
        stats.n_queries = int(self.obs.value("repro_queries_total"))
        stats.n_query_batches = int(
            self.obs.value("repro_query_batches_total")
        )
        stats.n_query_encodes = int(
            self.obs.value("repro_query_encodes_total")
        )
        stats.n_encoded_trees = int(
            self.obs.value("repro_encode_trees_total")
        )
        stats.encode_block_rows = int(
            self.obs.value("repro_encode_block_rows")
        )
        stats.n_shed = int(self.obs.value("repro_requests_shed_total"))
        stats.n_timeouts = int(
            self.obs.value("repro_request_timeouts_total")
        )
        stats.n_index_swaps = int(
            self.obs.value("repro_index_swaps_total")
        )
        stats.degraded = bool(stats.degraded_reasons)
        return stats

    def _sync_observability(self) -> None:
        """Mirror polled state (model/index/cache) into registry gauges.

        Counters and histograms stream in from the hot paths; gauges for
        sizes and flags are synced on demand so a scrape reflects the
        present, not the last event.  Side-effect free like
        :meth:`stats`: nothing is materialised.
        """
        obs = self.obs
        with self._lock:
            obs.gauge(
                "repro_model_loaded", "1 when a model is resident"
            ).set(1.0 if self._model is not None else 0.0)
            degraded = False
            if self._store is not None:
                degraded = degraded or self._store.degraded
                obs.gauge(
                    "repro_index_rows", "Rows in the embedding index"
                ).set(len(self._store))
                obs.gauge(
                    "repro_index_shards", "Shards in the embedding index"
                ).set(self._store.n_shards)
                obs.gauge(
                    "repro_index_quarantined_shards",
                    "Shards quarantined by crash recovery",
                ).set(len(self._store.quarantined))
                footprint = self._store.memory_footprint()
                obs.gauge(
                    "repro_index_vector_bytes",
                    "Bytes of vector data in the index",
                ).set(footprint["vector_bytes"])
                obs.gauge(
                    "repro_index_resident_bytes",
                    "Index bytes resident in process memory",
                ).set(footprint["resident_bytes"])
            if self._service is not None:
                degraded = degraded or bool(self._service.degraded_reasons)
            obs.gauge(
                "repro_serve_workers",
                "Configured shard-parallel serve workers (1 = in-process)",
            ).set(self.config.serve_workers)
            if self._coordinator is not None:
                workers = self._coordinator.workers_info()
                obs.gauge(
                    "repro_serve_workers_alive",
                    "Serve-pool workers currently alive",
                ).set(sum(1 for w in workers if w["alive"]))
            obs.gauge(
                "repro_engine_degraded",
                "1 when serving in degraded mode (quarantined shards, "
                "ANN fallback, ...)",
            ).set(1.0 if degraded else 0.0)
            if self._cache is not None:
                obs.gauge(
                    "repro_cache_hits", "Artifact-cache hits (lifetime)"
                ).set(self._cache.stats.hits)
                obs.gauge(
                    "repro_cache_misses", "Artifact-cache misses (lifetime)"
                ).set(self._cache.stats.misses)

    def metrics_text(self) -> str:
        """The registry as Prometheus text exposition (``GET /metrics``)."""
        self._sync_observability()
        return self.obs.to_prometheus()

    def flush_metrics(self) -> Dict:
        """Sync gauges and return a final registry snapshot.

        Called on clean shutdown so in-flight coalescing counters land in
        the shutdown response instead of dying with the process.
        """
        self._sync_observability()
        return self.obs.snapshot()

    # -- input loading -----------------------------------------------------

    def _binary_of(self, source: Optional[BinarySource]) -> BinaryFile:
        if isinstance(source, BinaryFile):
            return source
        if source is None:
            raise BadRequestError("no binary given")
        path = Path(source)
        if not path.exists():
            raise InputNotFoundError(f"no such binary: {path}")
        try:
            return BinaryFile.from_bytes(path.read_bytes())
        except Exception as exc:
            raise BadRequestError(
                f"{path} is not a valid RBIN binary: {exc}"
            ) from exc
