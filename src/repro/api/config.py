"""The one configuration object behind every engine consumer.

:class:`EngineConfig` replaces the per-subcommand ``--cache-dir`` /
``--jobs`` / ``--batch-size`` plumbing (and the ad hoc keyword threading
inside ``VulnerabilitySearch`` / ``SearchService``) with a single typed
value that can be built four ways:

* directly, as a dataclass;
* :meth:`EngineConfig.from_dict` / :meth:`to_dict` -- JSON-shaped, for
  config files (:meth:`from_file`) and the HTTP server;
* :meth:`EngineConfig.from_env` -- ``REPRO_*`` environment variables;
* :meth:`EngineConfig.from_args` -- an argparse namespace, shared by all
  ``repro-cli`` subcommands.

Later sources override earlier ones field-by-field, so
``EngineConfig.from_env().merged(jobs=4)`` reads naturally.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, Optional

from repro.api.errors import BadRequestError
from repro.core.model import DEFAULT_ENCODE_BATCH_SIZE, DEFAULT_ENCODE_DTYPE

_BACKENDS = ("exact", "ivf-pq", "lsh")
_DTYPES = ("float32", "float64")

#: argparse destination -> config field, shared by every subcommand.
_ARG_FIELDS = {
    "model": "model_path",
    "index": "index_root",
    "cache_dir": "cache_dir",
    "jobs": "jobs",
    "batch_size": "encode_batch_size",
    "encode_dtype": "encode_dtype",
    "encode_block": "encode_block",
    "shard_size": "shard_size",
    "dtype": "store_dtype",
    "backend": "backend",
    "ann_nprobe": "ann_nprobe",
    "ann_rerank": "ann_rerank",
    "ann_lists": "ann_lists",
    "threshold": "threshold",
    "top_k": "top_k",
    "seed": "seed",
    "request_timeout_ms": "request_timeout_ms",
    "max_inflight": "max_inflight",
    "drain_timeout_ms": "drain_timeout_ms",
    "serve_workers": "serve_workers",
    "faults": "faults",
}


@dataclass
class EngineConfig:
    """Everything an :class:`~repro.api.engine.AsteriaEngine` needs.

    ``model_path``/``index_root``/``cache_dir`` of ``None`` mean "fresh
    in-memory" (no checkpoint yet / ephemeral index / ephemeral cache).
    ``micro_batch_size`` caps how many concurrent query encodes the
    serving micro-batcher coalesces into one level-batched GEMM call
    (1 disables coalescing); ``micro_batch_wait_ms`` is the accumulation
    window a batch leader grants late arrivals.  ``slow_query_ms`` of
    ``None`` disables the slow-query log; any other value is the wall
    time above which a query's full span tree is logged.  ``store_dtype`` is the
    vector dtype of newly created embedding indexes (the default
    float32 halves bytes-per-row with no measurable effect on the
    calibrated scores; pick float64 to keep encoder-exact vectors).
    """

    model_path: Optional[str] = None
    index_root: Optional[str] = None
    cache_dir: Optional[str] = None
    jobs: int = 1
    encode_batch_size: int = DEFAULT_ENCODE_BATCH_SIZE
    #: Inference dtype of the batched encoder: "float64" is the
    #: bit-exact reference, "float32" the ~2x fast path (rankings
    #: preserved; see README "Encoder performance").
    encode_dtype: str = DEFAULT_ENCODE_DTYPE
    #: GEMM row-block size for the batched encoder; 0 auto-tunes via a
    #: one-time micro-probe (``REPRO_ENCODE_BLOCK`` also overrides).
    encode_block: int = 0
    shard_size: int = 1024
    store_dtype: str = "float32"
    backend: str = "exact"
    #: Tiered-index (``backend="ivf-pq"``) knobs: ``ann_nprobe`` coarse
    #: partitions swept per query (the recall-vs-speed dial),
    #: ``ann_rerank`` the exact-rerank oversampling (k * rerank
    #: candidates survive the quantized sweep), ``ann_lists`` the number
    #: of coarse partitions (0 = auto, ~sqrt(corpus rows)).
    ann_nprobe: int = 8
    ann_rerank: int = 8
    ann_lists: int = 0
    calibrate: bool = True
    threshold: float = 0.84
    top_k: int = 10
    seed: int = 0
    micro_batch_size: int = DEFAULT_ENCODE_BATCH_SIZE
    micro_batch_wait_ms: float = 2.0
    slow_query_ms: Optional[float] = None
    #: Per-request deadline enforced through the micro-batcher and the
    #: corpus sweep; ``None`` disables deadlines.
    request_timeout_ms: Optional[float] = None
    #: Bound on concurrently admitted heavy requests; excess load is
    #: shed with HTTP 503 + ``Retry-After`` instead of queueing without
    #: limit.
    max_inflight: int = 64
    #: How long ``/v1/shutdown`` waits for in-flight requests to drain
    #: before stopping anyway.
    drain_timeout_ms: float = 5000.0
    #: Shard-parallel serving: number of sweep worker processes.  1 (the
    #: default) keeps the in-process sweep path; >1 requires a durable
    #: ``index_root`` (workers mmap the store read-only by path).
    serve_workers: int = 1
    #: Failpoint spec (see :mod:`repro.faults`), e.g.
    #: ``"store.flush.pre_rename=kill"``.  Empty string = no faults.
    #: Also read from ``REPRO_FAULTS`` by the faults module itself.
    faults: str = ""

    def __post_init__(self):
        for name in ("jobs", "encode_batch_size", "shard_size",
                     "micro_batch_size", "serve_workers",
                     "ann_nprobe", "ann_rerank"):
            if int(getattr(self, name)) < 1:
                raise BadRequestError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )
        if int(self.ann_lists) < 0:
            raise BadRequestError(
                f"ann_lists must be >= 0 (0 = auto), got {self.ann_lists}"
            )
        if self.backend not in _BACKENDS:
            raise BadRequestError(
                f"unknown backend {self.backend!r} "
                f"(choose from {', '.join(_BACKENDS)})"
            )
        if self.store_dtype not in _DTYPES:
            raise BadRequestError(
                f"unknown store_dtype {self.store_dtype!r} "
                f"(choose from {', '.join(_DTYPES)})"
            )
        if self.encode_dtype not in _DTYPES:
            raise BadRequestError(
                f"unknown encode_dtype {self.encode_dtype!r} "
                f"(choose from {', '.join(_DTYPES)})"
            )
        if int(self.encode_block) < 0:
            raise BadRequestError(
                f"encode_block must be >= 0 (0 = auto), "
                f"got {self.encode_block}"
            )
        if self.micro_batch_wait_ms < 0:
            raise BadRequestError("micro_batch_wait_ms must be >= 0")
        if self.slow_query_ms is not None and self.slow_query_ms < 0:
            raise BadRequestError("slow_query_ms must be >= 0 or null")
        if self.request_timeout_ms is not None and self.request_timeout_ms <= 0:
            raise BadRequestError("request_timeout_ms must be > 0 or null")
        if self.max_inflight < 1:
            raise BadRequestError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.drain_timeout_ms < 0:
            raise BadRequestError("drain_timeout_ms must be >= 0")

    # -- dict / file / env / args loading ----------------------------------

    def to_dict(self) -> Dict:
        """JSON-serialisable field dict (the inverse of :meth:`from_dict`)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "EngineConfig":
        known = {f.name: f for f in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise BadRequestError(
                f"unknown EngineConfig key(s): {', '.join(unknown)}"
            )
        try:
            return cls(**data)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"bad EngineConfig: {exc}") from exc

    @classmethod
    def from_file(cls, path) -> "EngineConfig":
        path = Path(path)
        if not path.exists():
            raise BadRequestError(f"no config file at {path}")
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise BadRequestError(f"config file {path} is not JSON: {exc}")
        if not isinstance(data, dict):
            raise BadRequestError(f"config file {path} must hold an object")
        return cls.from_dict(data)

    @classmethod
    def from_env(cls, environ=None, prefix: str = "REPRO_") -> "EngineConfig":
        """Read ``<prefix><FIELD>`` variables (e.g. ``REPRO_MODEL_PATH``)."""
        environ = os.environ if environ is None else environ
        data: Dict = {}
        for f in fields(cls):
            raw = environ.get(prefix + f.name.upper())
            if raw is None:
                continue
            data[f.name] = _coerce(f, raw)
        return cls.from_dict(data)

    @classmethod
    def from_args(cls, args, **overrides) -> "EngineConfig":
        """Adapt an argparse namespace; every subcommand shares this.

        Only destinations the subcommand actually defines (and that were
        not left at ``None``) are picked up; ``overrides`` win last, so a
        subcommand can redirect e.g. ``--output`` into ``index_root``.
        """
        data: Dict = {}
        for dest, field_name in _ARG_FIELDS.items():
            value = getattr(args, dest, None)
            if value is not None:
                data[field_name] = value
        data.update(overrides)
        return cls.from_dict(data)

    def merged(self, **overrides) -> "EngineConfig":
        """A copy with ``overrides`` applied (validation re-runs)."""
        data = self.to_dict()
        data.update(overrides)
        return self.from_dict(data)


def _coerce(f, raw: str):
    """Parse one env-var string to the field's annotated type."""
    kind = f.type if isinstance(f.type, str) else getattr(
        f.type, "__name__", str(f.type)
    )
    if "int" in kind:
        try:
            return int(raw)
        except ValueError:
            raise BadRequestError(f"{f.name} expects an integer, got {raw!r}")
    if "float" in kind:
        try:
            return float(raw)
        except ValueError:
            raise BadRequestError(f"{f.name} expects a number, got {raw!r}")
    if "bool" in kind:
        if raw.lower() in ("1", "true", "yes", "on"):
            return True
        if raw.lower() in ("0", "false", "no", "off"):
            return False
        raise BadRequestError(f"{f.name} expects a boolean, got {raw!r}")
    return raw
