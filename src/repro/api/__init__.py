"""Unified Asteria API: the engine facade, its config, and the server.

This package is the single construction path for the repo's
model + cache + index + pipeline stack.  Everything a consumer needs::

    from repro.api import AsteriaEngine, EngineConfig

    engine = AsteriaEngine(EngineConfig(model_path="asteria.npz"))
    engine.ingest(corpus_images=8, corpus_seed=0)
    result = engine.query(cve_id="CVE-2016-2105", top_k=10)

See :mod:`repro.api.engine` for the request/response dataclasses,
:mod:`repro.api.server` for the HTTP serving layer (``repro-cli serve``)
and :mod:`repro.api.batching` for the query micro-batcher.
"""

from repro.api.batching import BatcherStats, MicroBatcher
from repro.api.config import EngineConfig
from repro.api.engine import (
    USE_DEFAULT,
    AsteriaEngine,
    CompareRequest,
    CompareResult,
    EncodeRequest,
    EncodeResult,
    EngineStats,
    IngestRequest,
    IngestResult,
    QueryRequest,
    QueryResult,
    TrainRequest,
    TrainResult,
)
from repro.api.errors import (
    BadRequestError,
    EngineError,
    IndexStoreError,
    InputNotFoundError,
    ModelNotFoundError,
)
from repro.api.server import EngineServer, serve

__all__ = [
    "AsteriaEngine",
    "BadRequestError",
    "BatcherStats",
    "CompareRequest",
    "CompareResult",
    "EncodeRequest",
    "EncodeResult",
    "EngineConfig",
    "EngineError",
    "EngineServer",
    "EngineStats",
    "IndexStoreError",
    "IngestRequest",
    "IngestResult",
    "InputNotFoundError",
    "MicroBatcher",
    "ModelNotFoundError",
    "QueryRequest",
    "QueryResult",
    "TrainRequest",
    "TrainResult",
    "USE_DEFAULT",
    "serve",
]
