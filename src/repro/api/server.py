"""Stdlib-only threaded HTTP/JSON serving layer over :class:`AsteriaEngine`.

``repro-cli serve`` exposes the engine's lifecycle over HTTP so the
paper's workflow -- encode a CVE function once, query it against
firmware corpora at scale -- is reachable from any client.  One engine
serves every request; concurrent ``/v1/query`` handlers funnel their
query-side encodes through the engine's dynamic micro-batcher, so
under load the server performs a few wide level-batched GEMM calls
instead of one tree walk per request.

Endpoints (all JSON unless noted)::

    GET  /healthz       {"status": "ok", "version", "uptime_s",
                         "model_loaded", "index_rows", "index_shards",
                         "index_generation"}
    GET  /metrics       Prometheus text exposition (text/plain)
    GET  /v1/stats      EngineStats.to_dict()
    POST /v1/encode     {"binary_b64", "function"?}
                        -> {"binary", "arch", "encodings": [...]}
    POST /v1/ingest     {"binary_b64"?, "image_id"?,
                         "corpus": {"images", "seed"}?}
                        -> {"n_functions", "n_rows_total", ...}
    POST /v1/query      {"cve" | "binary_b64" + "function",
                         "top_k"?, "threshold"?}
                        -> {"query", "n_rows", "hits": [...]}
    POST /v1/query_batch {"queries": [<query object>, ...]}
                        -> {"results": [<query response>, ...]}
                        (one corpus sweep answers the whole batch)
    POST /v1/compare    {"binary1_b64", "function1",
                         "binary2_b64", "function2"}
                        -> {"ast_similarity", "similarity"}
    POST /v1/shutdown   {"status": "shutting down", "stats": {...}}
                        (final registry snapshot, then a clean exit)

Binaries travel as base64-encoded RBIN bytes.  Engine errors map to
their ``http_status`` with ``{"error": ..., "exit_code": ...}`` bodies.

Every request runs under a trace span: the ``X-Request-Id`` header is
honoured when a client sends one, minted otherwise, echoed on the
response, and stamped onto every log record emitted while handling the
request.  Per-endpoint request counts, error counts and latency
histograms stream into the engine's metrics registry, scrapeable at
``GET /metrics``.
"""

from __future__ import annotations

import base64
import binascii
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple, Union

import repro.faults as faults
from repro.api.engine import (
    AsteriaEngine,
    CompareRequest,
    EncodeRequest,
    IngestRequest,
    QueryRequest,
    USE_DEFAULT,
)
from repro.api.errors import (
    BadRequestError,
    EngineError,
    ServerOverloadedError,
)
from repro.binformat.binary import BinaryFile
from repro.core.model import FunctionEncoding
from repro.index.search import SearchHit
from repro.obs.trace import new_request_id, trace
from repro.utils.logging import configure, get_logger

_LOG = get_logger("api.server")
_ACCESS = get_logger("api.access")

MAX_BODY_BYTES = 64 * 1024 * 1024


def _encoding_json(encoding: FunctionEncoding) -> Dict:
    return {
        "name": encoding.name,
        "arch": encoding.arch,
        "binary_name": encoding.binary_name,
        "callee_count": encoding.callee_count,
        "ast_size": encoding.ast_size,
        "vector": [float(x) for x in encoding.vector],
    }


def _hit_json(rank: int, hit: SearchHit) -> Dict:
    return {
        "rank": rank,
        "row": hit.row,
        "score": hit.score,
        "function": hit.name,
        "binary_name": hit.binary_name,
        "arch": hit.arch,
        "image_id": hit.image_id,
    }


def _int_field(obj: Dict, key: str, default: int) -> int:
    value = obj.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"{key} must be an integer, got {value!r}")
    return value


def _optional_number(obj: Dict, key: str):
    value = obj.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(f"{key} must be a number, got {value!r}")
    return value


def _binary_from_b64(payload: Dict, key: str = "binary_b64") -> BinaryFile:
    raw = payload.get(key)
    if not isinstance(raw, str):
        raise BadRequestError(f"missing or non-string {key!r}")
    try:
        data = base64.b64decode(raw, validate=True)
    except (binascii.Error, ValueError) as exc:
        raise BadRequestError(f"{key} is not valid base64: {exc}") from exc
    try:
        return BinaryFile.from_bytes(data)
    except Exception as exc:
        raise BadRequestError(
            f"{key} is not a valid RBIN binary: {exc}"
        ) from exc


class EngineRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the shared engine."""

    server_version = "AsteriaEngine/1.0"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def engine(self) -> AsteriaEngine:
        return self.server.engine

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        _LOG.debug("%s %s", self.address_string(), format % args)

    def _reply(
        self,
        status: int,
        body: Union[Dict, str],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        """Send a JSON (dict) or plain-text (str, for /metrics) body."""
        if isinstance(body, str):
            data = body.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            data = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        request_id = getattr(self, "_request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(data)

    def _payload(self) -> Dict:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self.close_connection = True  # body length unknowable
            raise BadRequestError("Content-Length must be an integer")
        if length < 0 or length > MAX_BODY_BYTES:
            # replying without reading the body would desync keep-alive
            self.close_connection = True
            raise BadRequestError(
                f"Content-Length must be within [0, {MAX_BODY_BYTES}], "
                f"got {length}"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BadRequestError(f"request body is not JSON: {exc}")
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        return payload

    def _dispatch(self, routes: Dict, gated: bool = False) -> None:
        started = time.perf_counter()
        # honour a client-supplied request id so traces correlate across
        # services; mint one otherwise.  _reply echoes it back.
        self._request_id = (
            self.headers.get("X-Request-Id") or new_request_id()
        )
        handler = routes.get(self.path)
        endpoint = self.path if handler is not None else "_unknown_"
        # /v1/shutdown must stay reachable while the server is saturated
        # or draining, so it bypasses admission control
        gated = gated and self.path != "/v1/shutdown"
        with trace(f"http {self.command} {self.path}",
                   request_id=self._request_id):
            if handler is None:
                # the request body was never read; keeping the connection
                # alive would let it be parsed as the next request line
                self.close_connection = True
                status: int = 404
                self._reply(status, {"error": f"no route {self.path}"})
            elif gated and not self.server.try_admit():
                # load shedding: a bounded number of heavy requests run
                # concurrently; the rest get a fast, honest 503 instead
                # of queueing toward a timeout (body unread -> close)
                self.close_connection = True
                status = 503
                self.engine.obs.counter(
                    "repro_requests_shed_total",
                    "Requests shed by admission control (HTTP 503)",
                ).inc()
                self._reply(
                    status,
                    {
                        "error": "server overloaded, retry later",
                        "exit_code": ServerOverloadedError.exit_code,
                    },
                    headers={"Retry-After": "1"},
                )
            else:
                try:
                    if gated:  # health/metrics stay fault-free for ops
                        faults.inject("server.request")
                    status, body = handler()
                    self._reply(status, body)
                except EngineError as exc:
                    status = exc.http_status
                    self._reply(
                        status,
                        {"error": str(exc), "exit_code": exc.exit_code},
                    )
                except Exception as exc:  # never leak a traceback
                    _LOG.exception("unhandled error serving %s", self.path)
                    status = 500
                    self._reply(status, {"error": f"internal error: {exc}"})
                finally:
                    if gated:
                        self.server.release()
            self._observe(endpoint, status, started)

    def _observe(self, endpoint: str, status: int, started: float) -> None:
        """Per-endpoint request/error/latency metrics + access log line."""
        elapsed = time.perf_counter() - started
        registry = self.engine.obs
        registry.counter(
            "repro_requests_total", "HTTP requests served",
            endpoint=endpoint, method=self.command, status=str(status),
        ).inc()
        if status >= 400:
            registry.counter(
                "repro_request_errors_total",
                "HTTP requests answered with status >= 400",
                endpoint=endpoint,
            ).inc()
        registry.histogram(
            "repro_request_seconds", "HTTP request wall time",
            endpoint=endpoint,
        ).observe(elapsed)
        _ACCESS.info(
            "%s %s %s %d %.1fms",
            self.address_string(), self.command, self.path, status,
            elapsed * 1000.0,
        )

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:
        self._dispatch({
            "/healthz": self._handle_health,
            "/metrics": self._handle_metrics,
            "/v1/stats": self._handle_stats,
        })

    def do_POST(self) -> None:
        # every POST does real work (decompile/encode/sweep), so they all
        # pass through the bounded admission gate; GETs always answer
        self._dispatch({
            "/v1/encode": self._handle_encode,
            "/v1/ingest": self._handle_ingest,
            "/v1/query": self._handle_query,
            "/v1/query_batch": self._handle_query_batch,
            "/v1/compare": self._handle_compare,
            "/v1/shutdown": self._handle_shutdown,
        }, gated=True)

    # -- handlers ----------------------------------------------------------

    def _handle_health(self) -> Tuple[int, Dict]:
        from repro import __version__  # lazy: repro/__init__ imports api

        stats = self.engine.stats()
        service = self.engine._service
        return 200, {
            # "degraded" = up and answering, but below full fidelity
            # (quarantined shards, ANN fallback); reasons say why
            "status": "degraded" if stats.degraded else "ok",
            "version": __version__,
            "uptime_s": round(
                time.monotonic() - self.server.started_monotonic, 3
            ),
            "model_loaded": stats.model_loaded,
            "index_rows": stats.index_rows,
            "index_shards": stats.index_shards,
            # which corpus snapshot queries answer from (-1 = no index yet)
            "index_generation": (
                service.index_generation if service is not None else -1
            ),
            "degraded": stats.degraded,
            "degraded_reasons": list(stats.degraded_reasons),
            "quarantined_shards": stats.index_quarantined_shards,
            "inflight": self.server.inflight,
            "draining": self.server.draining,
            # shard-parallel serving: pool size, the generation new
            # queries pin, and per-worker liveness for operators
            "serve_workers": stats.serve_workers,
            "active_generation": stats.active_generation,
            "pool_workers_alive": stats.pool_workers_alive,
            "pool_workers": stats.pool_workers,
        }

    def _handle_metrics(self) -> Tuple[int, str]:
        return 200, self.engine.metrics_text()

    def _handle_stats(self) -> Tuple[int, Dict]:
        body = self.engine.stats().to_dict()
        return 200, body

    def _handle_encode(self) -> Tuple[int, Dict]:
        payload = self._payload()
        result = self.engine.encode(EncodeRequest(
            binary=_binary_from_b64(payload),
            function=payload.get("function"),
        ))
        body = {
            "binary": result.binary_name,
            "arch": result.arch,
            "encodings": [_encoding_json(e) for e in result.encodings],
        }
        return 200, body

    def _handle_ingest(self) -> Tuple[int, Dict]:
        payload = self._payload()
        request = IngestRequest()
        corpus = payload.get("corpus")
        if corpus is not None:
            if not isinstance(corpus, dict):
                raise BadRequestError("corpus must be an object")
            request.corpus_images = _int_field(corpus, "images", 0)
            request.corpus_seed = _int_field(corpus, "seed", 0)
            if request.corpus_images < 1:
                raise BadRequestError("corpus.images must be >= 1")
        if "binary_b64" in payload:
            request.binaries = [(
                _binary_from_b64(payload),
                str(payload.get("image_id", "")),
            )]
        if corpus is None and not request.binaries:
            raise BadRequestError(
                "ingest needs binary_b64 and/or corpus {images, seed}"
            )
        result = self.engine.ingest(request)
        body = {
            "n_functions": result.n_functions,
            "n_binaries": result.n_binaries,
            "n_images": result.n_images,
            "n_unpack_failures": result.n_unpack_failures,
            "n_skipped_small": result.n_skipped_small,
            "n_rows_total": result.n_rows_total,
        }
        return 200, body

    def _parse_query(self, payload: Dict) -> QueryRequest:
        top_k = payload.get("top_k", USE_DEFAULT)
        if "top_k" in payload and top_k is not None:
            # null means "all above threshold"; negatives would leak the
            # engine-internal USE_DEFAULT sentinel (or slice nonsense)
            top_k = _int_field(payload, "top_k", USE_DEFAULT)
            if top_k < 0:
                raise BadRequestError(f"top_k must be >= 0, got {top_k}")
        threshold = _optional_number(payload, "threshold")
        if threshold is not None and threshold < 0:
            raise BadRequestError(
                f"threshold must be >= 0, got {threshold}"
            )
        request = QueryRequest(
            cve_id=payload.get("cve"),
            top_k=top_k,
            threshold=threshold,
        )
        if request.cve_id is None:
            request.binary = _binary_from_b64(payload)
            request.function = payload.get("function")
        return request

    @staticmethod
    def _query_json(result) -> Dict:
        return {
            "query": result.query,
            "n_rows": result.n_rows,
            # the single index generation every hit below came from
            # ("" on the in-process sweep path)
            "generation": result.generation,
            "hits": [
                _hit_json(rank, hit)
                for rank, hit in enumerate(result.hits, start=1)
            ],
        }

    def _handle_query(self) -> Tuple[int, Dict]:
        result = self.engine.query(self._parse_query(self._payload()))
        return 200, self._query_json(result)

    def _handle_query_batch(self) -> Tuple[int, Dict]:
        """Q queries in one request, answered by one engine batch.

        ``{"queries": [<query object>, ...]}`` where each element takes
        the same fields as ``/v1/query``; the corpus is swept once for
        the whole batch instead of once per query.
        """
        payload = self._payload()
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise BadRequestError(
                "query_batch needs a non-empty 'queries' list"
            )
        requests = []
        for i, entry in enumerate(queries):
            if not isinstance(entry, dict):
                raise BadRequestError(f"queries[{i}] must be an object")
            requests.append(self._parse_query(entry))
        results = self.engine.query_batch(requests)
        return 200, {
            "results": [self._query_json(result) for result in results]
        }

    def _handle_compare(self) -> Tuple[int, Dict]:
        payload = self._payload()
        result = self.engine.compare(CompareRequest(
            binary1=_binary_from_b64(payload, "binary1_b64"),
            function1=str(payload.get("function1", "")),
            binary2=_binary_from_b64(payload, "binary2_b64"),
            function2=str(payload.get("function2", "")),
        ))
        body = {
            "function1": result.function1,
            "function2": result.function2,
            "ast_similarity": result.ast_similarity,
            "similarity": result.similarity,
        }
        return 200, body

    def _handle_shutdown(self) -> Tuple[int, Dict]:
        # stop admitting new work, then wait (bounded) for requests that
        # were already admitted to finish -- a client mid-query gets its
        # answer instead of a reset connection
        drained = self.server.drain(
            self.engine.config.drain_timeout_ms / 1000.0
        )
        if not drained:
            _LOG.warning(
                "drain timeout (%.0f ms) expired with %d request(s) "
                "still in flight; shutting down anyway",
                self.engine.config.drain_timeout_ms, self.server.inflight,
            )
        # terminate pool workers before the final snapshot: a clean
        # shutdown must leave no orphaned children, and closing first
        # guarantees the per-worker counters below are final
        self.engine.close()
        # flush the registry next: in-flight coalescing counters would
        # otherwise die with the process before anyone scraped them
        final = self.engine.flush_metrics()
        # shutdown() blocks until serve_forever returns, so it must run
        # outside this handler thread's serve loop
        threading.Thread(target=self.server.shutdown, daemon=True).start()
        return 200, {
            "status": "shutting down",
            "drained": drained,
            "stats": final,
        }


class EngineServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`AsteriaEngine`."""

    daemon_threads = True
    allow_reuse_address = True
    # the default listen backlog (5) drops connections under bursts of
    # concurrent clients -- exactly the serving scenario this layer exists
    # for
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], engine: AsteriaEngine):
        super().__init__(address, EngineRequestHandler)
        self.engine = engine
        self.started_monotonic = time.monotonic()
        self.started_unix = time.time()
        # bounded admission: at most config.max_inflight heavy requests
        # hold a slot at once; the rest are shed with 503 + Retry-After
        self._admission = threading.Condition()
        self._inflight = 0
        self._draining = False

    @property
    def inflight(self) -> int:
        with self._admission:
            return self._inflight

    @property
    def draining(self) -> bool:
        with self._admission:
            return self._draining

    def try_admit(self) -> bool:
        """Claim an in-flight slot; False = shed (full or draining)."""
        with self._admission:
            if self._draining:
                return False
            if self._inflight >= self.engine.config.max_inflight:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        with self._admission:
            self._inflight -= 1
            self._admission.notify_all()

    def drain(self, timeout_s: float) -> bool:
        """Refuse new heavy requests; wait for admitted ones to finish.

        Returns True when the server emptied within ``timeout_s``.
        """
        with self._admission:
            self._draining = True
            return self._admission.wait_for(
                lambda: self._inflight == 0, timeout=timeout_s
            )

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(
    engine: AsteriaEngine,
    host: str = "127.0.0.1",
    port: int = 8080,
    print_fn=print,
    ready: Optional[threading.Event] = None,
) -> int:
    """Run the serving loop until shutdown/interrupt; returns exit code.

    The engine's model is loaded (and a configured index opened) before
    the socket starts accepting, so a bad ``--model`` path fails fast
    with the CLI's distinct exit code instead of per-request 503s.
    """
    configure()  # access + slow-query logs need a handler installed
    engine.model  # raises ModelNotFoundError early
    if engine.config.index_root is not None:
        engine.store  # open or create the durable index up front
    if engine.config.serve_workers > 1:
        # spawn the shard-parallel pool before accepting: the first
        # query must not pay worker startup, and a bad pool config
        # fails fast here instead of per-request
        engine.coordinator
    server = EngineServer((host, port), engine)
    print_fn(f"serving on {server.url}")
    if ready is not None:
        ready.set()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        engine.close()  # reap pool workers; never leave orphans behind
    print_fn("server stopped")
    return 0
