"""Call graphs over binaries.

The calibration step of Asteria needs, per function, the set of callee
functions together with each callee's instruction count (so callees small
enough to have been inlined can be filtered out).  The call graph is built
from decoded call instructions, not from compiler metadata, so it works on
stripped binaries too.
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

from repro.binformat.binary import BinaryFile
from repro.compiler.isa import get_isa


def build_call_graph(binary: BinaryFile) -> nx.DiGraph:
    """Build the static call graph of a binary.

    Nodes are function display names; node attribute ``n_instructions`` is
    the function's instruction count; edge multiplicity is stored in the
    ``count`` attribute.
    """
    from repro.disasm.disassembler import disassemble_function

    isa = get_isa(binary.arch)
    graph = nx.DiGraph()
    for record in binary.functions:
        graph.add_node(
            record.display_name(), n_instructions=record.n_instructions
        )
    for record in binary.functions:
        asm = disassemble_function(binary, record)
        for callee in asm.callee_names():
            if graph.has_edge(record.display_name(), callee):
                graph.edges[record.display_name(), callee]["count"] += 1
            else:
                graph.add_edge(record.display_name(), callee, count=1)
    return graph


def callees_with_sizes(
    binary: BinaryFile, function_name: str, call_graph: nx.DiGraph = None
) -> List[Tuple[str, int]]:
    """Callee names and instruction counts for one function (with repeats).

    A callee called k times appears k times, matching the paper's definition
    of the callee set drawn from call instructions.
    """
    graph = call_graph if call_graph is not None else build_call_graph(binary)
    out: List[Tuple[str, int]] = []
    for _, callee, data in graph.out_edges(function_name, data=True):
        size = graph.nodes[callee].get("n_instructions", 0)
        out.extend([(callee, size)] * data.get("count", 1))
    return out
