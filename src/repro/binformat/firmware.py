"""Firmware images.

A firmware image is a vendor-specific blob: a header (vendor / device model /
version), junk padding (bootloader remnants, compressed filesystems we do not
model), and a sequence of embedded RBIN binaries.  Images may also use an
*unknown format* -- no recognisable magic at all -- which the unpacker must
reject, reproducing the paper's note that binwalk cannot identify certain
firmware formats.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.binformat.binary import BinaryFile
from repro.utils.rng import RNG

FIRMWARE_MAGIC = b"FWIMG1"


@dataclass
class FirmwareImage:
    """A firmware image and its provenance metadata."""

    vendor: str
    model: str
    version: str
    binaries: List[BinaryFile] = field(default_factory=list)
    unknown_format: bool = False
    blob: bytes = b""

    @property
    def identifier(self) -> str:
        return f"{self.vendor}/{self.model}/{self.version}"


def pack_firmware(
    vendor: str,
    model: str,
    version: str,
    binaries: List[BinaryFile],
    seed: int = 0,
    unknown_format: bool = False,
    junk_prefix_max: int = 64,
) -> FirmwareImage:
    """Pack binaries into a firmware blob.

    When ``unknown_format`` is set, the blob carries no recognisable magic
    (the header is scrambled), so :func:`repro.binformat.binwalk.scan_firmware`
    will find nothing in it.
    """
    rng = RNG(seed)
    junk_len = rng.randint(0, junk_prefix_max)
    junk = bytes(rng.randint(1, 255) for _ in range(junk_len))
    header = [
        FIRMWARE_MAGIC if not unknown_format else _scrambled_magic(rng),
        _pack_str(vendor),
        _pack_str(model),
        _pack_str(version),
        struct.pack("<I", len(binaries)),
    ]
    body = []
    for binary in binaries:
        data = binary.to_bytes()
        body.append(struct.pack("<I", len(data)))
        body.append(data)
    blob = junk + b"".join(header) + b"".join(body)
    return FirmwareImage(
        vendor=vendor,
        model=model,
        version=version,
        binaries=list(binaries),
        unknown_format=unknown_format,
        blob=blob,
    )


def _scrambled_magic(rng: RNG) -> bytes:
    """Six bytes guaranteed not to be the firmware magic."""
    while True:
        candidate = bytes(rng.randint(1, 255) for _ in range(len(FIRMWARE_MAGIC)))
        if candidate != FIRMWARE_MAGIC:
            return candidate


def parse_firmware_at(blob: bytes, offset: int) -> "ParsedFirmware":
    """Parse a firmware header + binaries starting at a magic offset."""
    if blob[offset:offset + len(FIRMWARE_MAGIC)] != FIRMWARE_MAGIC:
        raise ValueError(f"no firmware magic at offset {offset}")
    cursor = offset + len(FIRMWARE_MAGIC)
    vendor, cursor = _unpack_str(blob, cursor)
    model, cursor = _unpack_str(blob, cursor)
    version, cursor = _unpack_str(blob, cursor)
    (n_binaries,) = struct.unpack_from("<I", blob, cursor)
    cursor += 4
    binaries: List[BinaryFile] = []
    for _ in range(n_binaries):
        (length,) = struct.unpack_from("<I", blob, cursor)
        cursor += 4
        binaries.append(BinaryFile.from_bytes(blob[cursor:cursor + length]))
        cursor += length
    return ParsedFirmware(
        vendor=vendor, model=model, version=version, binaries=binaries, end=cursor
    )


@dataclass
class ParsedFirmware:
    vendor: str
    model: str
    version: str
    binaries: List[BinaryFile]
    end: int


def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    return struct.pack("<H", len(data)) + data


def _unpack_str(blob: bytes, offset: int):
    (length,) = struct.unpack_from("<H", blob, offset)
    offset += 2
    return blob[offset:offset + length].decode("utf-8"), offset + length
