"""The ``RBIN`` binary container.

A :class:`BinaryFile` is what the compiler emits and what the disassembler
consumes: per-function encoded code, a string section, and a symbol table.
:meth:`BinaryFile.strip` drops function names exactly as release firmware
does, after which the disassembler labels functions ``sub_<address>`` (the
behaviour the paper describes for its Firmware dataset).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.binformat.encoding import EncodingError, encode_function
from repro.compiler.codegen import AsmFunction, FrameInfo
from repro.compiler.isa import SUPPORTED_ARCHES, get_isa

_MAGIC = b"RBIN"
_FORMAT_VERSION = 1
BASE_ADDRESS = 0x1000
_ALIGN = 16


@dataclass
class SymbolEntry:
    """One symbol-table entry (function name -> address)."""

    name: str
    address: int
    function_index: int


@dataclass
class FunctionRecord:
    """One function inside a binary.

    ``name`` is None in stripped binaries.  ``frame`` carries the parameter
    and local counts a decompiler would infer from frame accesses.
    """

    name: Optional[str]
    address: int
    code: bytes
    n_instructions: int
    frame: FrameInfo

    @property
    def size(self) -> int:
        return len(self.code)

    def display_name(self) -> str:
        return self.name if self.name is not None else f"sub_{self.address:x}"


@dataclass
class BinaryFile:
    """A compiled binary: functions + string section + (optional) symbols."""

    name: str
    arch: str
    functions: List[FunctionRecord] = field(default_factory=list)
    string_section: bytes = b""
    symbols: List[SymbolEntry] = field(default_factory=list)

    @property
    def is_stripped(self) -> bool:
        return not self.symbols

    def function_named(self, name: str) -> FunctionRecord:
        for record in self.functions:
            if record.name == name or record.display_name() == name:
                return record
        raise KeyError(f"no function {name!r} in binary {self.name!r}")

    def function_at(self, address: int) -> FunctionRecord:
        for record in self.functions:
            if record.address == address:
                return record
        raise KeyError(f"no function at {address:#x} in binary {self.name!r}")

    def string_at(self, offset: int) -> str:
        end = self.string_section.find(b"\x00", offset)
        if end < 0:
            raise EncodingError(f"unterminated string at offset {offset}")
        return self.string_section[offset:end].decode("utf-8")

    def strip(self) -> "BinaryFile":
        """Return a copy with the symbol table and function names removed."""
        return BinaryFile(
            name=self.name,
            arch=self.arch,
            functions=[replace(f, name=None) for f in self.functions],
            string_section=self.string_section,
            symbols=[],
        )

    # -- serialisation ------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = [
            _MAGIC,
            struct.pack("<B", _FORMAT_VERSION),
            struct.pack("<B", SUPPORTED_ARCHES.index(self.arch)),
            _pack_str(self.name),
            struct.pack("<I", len(self.string_section)),
            self.string_section,
            struct.pack("<B", 0 if self.is_stripped else 1),
        ]
        if not self.is_stripped:
            out.append(struct.pack("<I", len(self.symbols)))
            for symbol in self.symbols:
                out.append(_pack_str(symbol.name))
                out.append(struct.pack("<II", symbol.address, symbol.function_index))
        out.append(struct.pack("<I", len(self.functions)))
        for record in self.functions:
            out.append(struct.pack("<B", 0 if record.name is None else 1))
            if record.name is not None:
                out.append(_pack_str(record.name))
            out.append(
                struct.pack(
                    "<IIHH",
                    record.address,
                    record.n_instructions,
                    record.frame.n_params,
                    record.frame.n_locals,
                )
            )
            out.append(struct.pack("<I", len(record.code)))
            out.append(record.code)
        return b"".join(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "BinaryFile":
        if blob[:4] != _MAGIC:
            raise EncodingError("not an RBIN binary (bad magic)")
        offset = 4
        version = blob[offset]
        if version != _FORMAT_VERSION:
            raise EncodingError(f"unsupported RBIN version {version}")
        offset += 1
        arch = SUPPORTED_ARCHES[blob[offset]]
        offset += 1
        name, offset = _unpack_str(blob, offset)
        (str_len,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        string_section = blob[offset:offset + str_len]
        offset += str_len
        has_symbols = blob[offset]
        offset += 1
        symbols: List[SymbolEntry] = []
        if has_symbols:
            (n_symbols,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            for _ in range(n_symbols):
                sym_name, offset = _unpack_str(blob, offset)
                address, func_index = struct.unpack_from("<II", blob, offset)
                offset += 8
                symbols.append(SymbolEntry(sym_name, address, func_index))
        (n_functions,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        functions: List[FunctionRecord] = []
        for _ in range(n_functions):
            has_name = blob[offset]
            offset += 1
            fn_name = None
            if has_name:
                fn_name, offset = _unpack_str(blob, offset)
            address, n_instructions, n_params, n_locals = struct.unpack_from(
                "<IIHH", blob, offset
            )
            offset += 12
            (code_len,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            code = blob[offset:offset + code_len]
            offset += code_len
            functions.append(
                FunctionRecord(
                    name=fn_name,
                    address=address,
                    code=code,
                    n_instructions=n_instructions,
                    frame=FrameInfo(n_params, n_locals),
                )
            )
        return cls(
            name=name,
            arch=arch,
            functions=functions,
            string_section=string_section,
            symbols=symbols,
        )

    def byte_size(self) -> int:
        return len(self.to_bytes())


def _pack_str(text: str) -> bytes:
    data = text.encode("utf-8")
    return struct.pack("<H", len(data)) + data


def _unpack_str(blob: bytes, offset: int):
    (length,) = struct.unpack_from("<H", blob, offset)
    offset += 2
    return blob[offset:offset + length].decode("utf-8"), offset + length


class LinkError(Exception):
    """Raised when a call target cannot be resolved at assembly time."""


def assemble_binary(name: str, arch: str, asm_functions: Sequence[AsmFunction]) -> BinaryFile:
    """Assemble selected functions into a binary.

    Lays out functions at aligned addresses, pools string literals, builds
    the symbol table, and encodes each function.  Every call target must be
    one of the assembled functions (the compiler pipeline guarantees this by
    appending library leaf functions).
    """
    isa = get_isa(arch)
    name_to_index: Dict[str, int] = {}
    for i, fn in enumerate(asm_functions):
        if fn.arch != arch:
            raise LinkError(
                f"function {fn.name!r} compiled for {fn.arch}, binary is {arch}"
            )
        if fn.name in name_to_index:
            raise LinkError(f"duplicate function name {fn.name!r}")
        name_to_index[fn.name] = i

    # -- string pool -----------------------------------------------------------
    string_offsets: Dict[str, int] = {}
    pool = bytearray()
    for fn in asm_functions:
        for text in fn.string_literals():
            if text not in string_offsets:
                string_offsets[text] = len(pool)
                pool.extend(text.encode("utf-8"))
                pool.append(0)

    def symbol_index(callee: str) -> int:
        try:
            return name_to_index[callee]
        except KeyError:
            raise LinkError(
                f"unresolved call target {callee!r} in binary {name!r}"
            ) from None

    # -- encode + layout ----------------------------------------------------------
    functions: List[FunctionRecord] = []
    symbols: List[SymbolEntry] = []
    address = BASE_ADDRESS
    for i, fn in enumerate(asm_functions):
        code = encode_function(fn, isa, symbol_index, lambda s: string_offsets[s])
        functions.append(
            FunctionRecord(
                name=fn.name,
                address=address,
                code=code,
                n_instructions=len(fn.instructions),
                frame=fn.frame,
            )
        )
        symbols.append(SymbolEntry(fn.name, address, i))
        address += (len(code) + _ALIGN - 1) // _ALIGN * _ALIGN
    return BinaryFile(
        name=name,
        arch=arch,
        functions=functions,
        string_section=bytes(pool),
        symbols=symbols,
    )
