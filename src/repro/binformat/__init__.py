"""Binary container format, firmware images, and unpacking.

Models the artefact layer of the paper's pipeline: compiled binaries (with
symbol tables that release firmware strips), firmware images packed by IoT
vendors, and a ``binwalk``-style scanner that recovers binaries from images
(and fails on unrecognised formats, as the paper notes real binwalk does).
"""

from repro.binformat.binary import (
    BinaryFile,
    FunctionRecord,
    SymbolEntry,
    assemble_binary,
)
from repro.binformat.encoding import encode_function, EncodingError
from repro.binformat.firmware import FirmwareImage, pack_firmware
from repro.binformat.binwalk import scan_firmware, unpack_firmware, UnpackError
from repro.binformat.callgraph import build_call_graph

__all__ = [
    "BinaryFile",
    "FunctionRecord",
    "SymbolEntry",
    "assemble_binary",
    "encode_function",
    "EncodingError",
    "FirmwareImage",
    "pack_firmware",
    "scan_firmware",
    "unpack_firmware",
    "UnpackError",
    "build_call_graph",
]
