"""Instruction encoding: symbolic assembly <-> bytes.

Each ISA gets a stable opcode table (from :meth:`ISA.opcode_table`) and a
canonical register index table.  Instructions encode as::

    [opcode:1][cond:1][n_operands:1] operand*

with operands tagged by type:

    ====  =========  =======================================
    tag   kind       payload
    ====  =========  =======================================
    1     Reg        register index (1 byte)
    2     Imm        signed value (8 bytes, little endian)
    3     Mem        base register (1) + signed offset (4)
    4     Lab        target instruction index (4 bytes)
    5     Sym        symbol-table index (4 bytes)
    6     SRef       string-section offset (4 bytes)
    ====  =========  =======================================

The encoding round-trips exactly (see :mod:`repro.disasm.decoder`), which is
what lets the disassembler and decompiler operate on *bytes* rather than on
in-memory compiler structures -- the same boundary real tooling has.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Tuple

from repro.compiler.codegen import (
    AImm,
    AsmFunction,
    Instruction,
    Lab,
    Mem,
    Reg,
    SRef,
    Sym,
)
from repro.compiler.isa import ISA

_COND_CODES = ("", "eq", "ne", "gt", "lt", "ge", "le")


class EncodingError(Exception):
    """Raised on malformed instructions or undecodable bytes."""


def register_table(isa: ISA) -> Tuple[str, ...]:
    """Canonical ordered register list for one ISA (index = encoding)."""
    seen: List[str] = []
    for name in (
        list(isa.scratch_registers)
        + list(isa.var_registers)
        + list(isa.arg_registers)
        + [isa.frame_pointer, isa.stack_pointer, isa.return_register]
        + ([isa.link_register] if isa.link_register else [])
    ):
        if name and name not in seen:
            seen.append(name)
    return tuple(seen)


def _register_index(isa: ISA) -> Dict[str, int]:
    return {name: i for i, name in enumerate(register_table(isa))}


def encode_function(
    fn: AsmFunction,
    isa: ISA,
    symbol_index: Callable[[str], int],
    string_offset: Callable[[str], int],
) -> bytes:
    """Encode an assembly function to bytes.

    ``symbol_index`` maps a callee name to its symbol-table slot;
    ``string_offset`` maps a string literal to its string-section offset.
    """
    opcodes = isa.opcode_table()
    reg_index = _register_index(isa)
    label_to_instr = fn.labels
    chunks: List[bytes] = []
    for instr in fn.instructions:
        try:
            opcode = opcodes[instr.mnemonic]
        except KeyError:
            raise EncodingError(
                f"mnemonic {instr.mnemonic!r} not in {isa.name} opcode table"
            ) from None
        try:
            cond = _COND_CODES.index(instr.cond)
        except ValueError:
            raise EncodingError(f"unknown condition code {instr.cond!r}") from None
        parts = [struct.pack("<BBB", opcode, cond, len(instr.operands))]
        for operand in instr.operands:
            parts.append(
                _encode_operand(
                    operand, reg_index, label_to_instr, symbol_index, string_offset
                )
            )
        chunks.append(b"".join(parts))
    return b"".join(chunks)


def _encode_operand(
    operand,
    reg_index: Dict[str, int],
    labels: Dict[str, int],
    symbol_index: Callable[[str], int],
    string_offset: Callable[[str], int],
) -> bytes:
    if isinstance(operand, Reg):
        try:
            return struct.pack("<BB", 1, reg_index[operand.name])
        except KeyError:
            raise EncodingError(f"unknown register {operand.name!r}") from None
    if isinstance(operand, AImm):
        return struct.pack("<Bq", 2, operand.value)
    if isinstance(operand, Mem):
        try:
            return struct.pack("<BBi", 3, reg_index[operand.base], operand.offset)
        except KeyError:
            raise EncodingError(f"unknown base register {operand.base!r}") from None
    if isinstance(operand, Lab):
        try:
            return struct.pack("<BI", 4, labels[operand.name])
        except KeyError:
            raise EncodingError(f"undefined label {operand.name!r}") from None
    if isinstance(operand, Sym):
        return struct.pack("<BI", 5, symbol_index(operand.name))
    if isinstance(operand, SRef):
        return struct.pack("<BI", 6, string_offset(operand.text))
    raise EncodingError(f"unencodable operand {operand!r}")


def decode_instructions(
    code: bytes,
    isa: ISA,
    symbol_name: Callable[[int], str],
    string_at: Callable[[int], str],
) -> Tuple[List[Instruction], Dict[int, int]]:
    """Decode bytes back to instructions.

    Returns ``(instructions, branch_targets)`` where ``branch_targets`` maps
    the decoded instruction's position to its target instruction index (for
    label reconstruction by the disassembler).
    """
    mnemonics = isa.mnemonic_table()
    registers = register_table(isa)
    instructions: List[Instruction] = []
    branch_targets: Dict[int, int] = {}
    offset = 0
    while offset < len(code):
        if offset + 3 > len(code):
            raise EncodingError("truncated instruction header")
        opcode, cond_code, n_operands = struct.unpack_from("<BBB", code, offset)
        offset += 3
        try:
            mnemonic = mnemonics[opcode]
        except KeyError:
            raise EncodingError(f"unknown opcode {opcode} for {isa.name}") from None
        if cond_code >= len(_COND_CODES):
            raise EncodingError(f"unknown condition code {cond_code}")
        operands = []
        for _ in range(n_operands):
            operand, offset = _decode_operand(
                code, offset, registers, symbol_name, string_at
            )
            operands.append(operand)
        instr = Instruction(mnemonic, tuple(operands), _COND_CODES[cond_code])
        for operand in operands:
            if isinstance(operand, Lab):
                branch_targets[len(instructions)] = int(operand.name)
        instructions.append(instr)
    return instructions, branch_targets


def _decode_operand(code, offset, registers, symbol_name, string_at):
    if offset >= len(code):
        raise EncodingError("truncated operand")
    tag = code[offset]
    offset += 1
    if tag == 1:
        index = code[offset]
        if index >= len(registers):
            raise EncodingError(f"register index {index} out of range")
        return Reg(registers[index]), offset + 1
    if tag == 2:
        (value,) = struct.unpack_from("<q", code, offset)
        return AImm(value), offset + 8
    if tag == 3:
        base_index = code[offset]
        (off,) = struct.unpack_from("<i", code, offset + 1)
        if base_index >= len(registers):
            raise EncodingError(f"register index {base_index} out of range")
        return Mem(registers[base_index], off), offset + 5
    if tag == 4:
        (target,) = struct.unpack_from("<I", code, offset)
        # Temporarily store raw target index in the label name; the
        # disassembler rewrites these to loc_N labels.
        return Lab(str(target)), offset + 4
    if tag == 5:
        (index,) = struct.unpack_from("<I", code, offset)
        return Sym(symbol_name(index)), offset + 4
    if tag == 6:
        (str_offset,) = struct.unpack_from("<I", code, offset)
        return SRef(string_at(str_offset)), offset + 4
    raise EncodingError(f"unknown operand tag {tag}")
