"""A binwalk-style firmware scanner/unpacker.

Scans a raw blob for known magic signatures and extracts the binaries found.
Images in unknown formats yield :class:`UnpackError`, mirroring the paper's
observation that "not all firmware can be unpacked since binwalk cannot
identify certain firmware format".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.binformat.binary import BinaryFile
from repro.binformat.firmware import (
    FIRMWARE_MAGIC,
    FirmwareImage,
    parse_firmware_at,
)
from repro.utils.logging import get_logger

_LOG = get_logger("binformat.binwalk")


class UnpackError(Exception):
    """Raised when no recognisable firmware signature is present."""


@dataclass
class Signature:
    """A magic match inside a scanned blob."""

    offset: int
    description: str


def scan_firmware(blob: bytes) -> List[Signature]:
    """Scan a blob for known signatures (firmware headers)."""
    signatures: List[Signature] = []
    start = 0
    while True:
        offset = blob.find(FIRMWARE_MAGIC, start)
        if offset < 0:
            break
        signatures.append(Signature(offset=offset, description="RBIN firmware header"))
        start = offset + 1
    return signatures


def unpack_firmware(image: FirmwareImage) -> List[BinaryFile]:
    """Extract the binaries from a firmware image's raw blob.

    Works from ``image.blob`` only (not the in-memory binary list), so the
    whole pack/scan/parse path is exercised.
    """
    return unpack_blob(image.blob)


def unpack_blob(blob: bytes) -> List[BinaryFile]:
    """Extract binaries from a raw firmware blob."""
    signatures = scan_firmware(blob)
    if not signatures:
        raise UnpackError("no recognisable firmware signature")
    binaries: List[BinaryFile] = []
    for signature in signatures:
        try:
            parsed = parse_firmware_at(blob, signature.offset)
        except Exception as exc:  # corrupt region; keep scanning others
            _LOG.debug("failed to parse firmware at %d: %s", signature.offset, exc)
            continue
        binaries.extend(parsed.binaries)
    if not binaries:
        raise UnpackError("signatures found but no binaries could be parsed")
    return binaries
