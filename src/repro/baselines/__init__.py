"""Baseline approaches the paper compares against: Diaphora and Gemini."""

from repro.baselines.diaphora import DiaphoraMatcher, ast_fuzzy_hash
from repro.baselines.gemini import Gemini, GeminiConfig, extract_acfg

__all__ = [
    "DiaphoraMatcher",
    "ast_fuzzy_hash",
    "Gemini",
    "GeminiConfig",
    "extract_acfg",
]
