"""Diaphora's AST fuzzy hash (the paper's AST-based baseline).

Diaphora maps every AST node kind to a small prime and multiplies them: the
product is a structural fingerprint that is *order-insensitive* (it only
sees the multiset of node kinds).  Two functions match exactly when their
products are equal; partial similarity compares the multisets of prime
factors.  Because cross-architecture decompilation perturbs node counts,
this hash degrades to near-chance on cross-platform pairs -- the paper
measures AUC ≈ 0.54, far below the learned approaches.
"""

from __future__ import annotations

from collections import Counter
from difflib import SequenceMatcher
from typing import Dict

from repro.core.labels import NODE_LABELS
from repro.lang.nodes import Node

# The first len(NODE_LABELS) primes, assigned to node kinds in label order
# (Diaphora similarly fixes a static kind -> prime table).
_FIRST_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
    149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223,
)

PRIME_TABLE: Dict[str, int] = {
    op: _FIRST_PRIMES[i] for i, op in enumerate(sorted(NODE_LABELS))
}


def ast_fuzzy_hash(ast: Node) -> int:
    """The prime-product fingerprint of an AST."""
    product = 1
    for node in ast.walk():
        product *= PRIME_TABLE[node.op]
    return product


def _prime_multiset(ast: Node) -> Counter:
    return Counter(PRIME_TABLE[node.op] for node in ast.walk())


class DiaphoraMatcher:
    """AST similarity via prime-product comparison.

    Two scoring modes:

    * ``"product"`` (default, faithful to Diaphora): an exact product match
      scores 1.0; otherwise the two products' decimal representations are
      compared with a fuzzy string ratio, Diaphora's approach to partial
      hash matching.  A single node-kind change completely reshuffles the
      digits, so cross-architecture pairs score near-randomly -- the paper
      measures AUC ≈ 0.54 for Diaphora.
    * ``"multiset"``: the Dice coefficient over prime-factor multisets, a
      strictly stronger variant exposed for ablation.
    """

    def __init__(self, mode: str = "product"):
        if mode not in ("product", "multiset"):
            raise ValueError("mode must be 'product' or 'multiset'")
        self.mode = mode

    def hash(self, ast: Node) -> int:
        return ast_fuzzy_hash(ast)

    def features(self, ast: Node) -> Counter:
        """Offline phase: the factor multiset (cache this per function).

        The multiset determines the product exactly, so it serves both
        scoring modes.
        """
        return _prime_multiset(ast)

    def similarity_from_features(self, a: Counter, b: Counter) -> float:
        """Online phase on cached multisets."""
        if self.mode == "multiset":
            total = sum(a.values()) + sum(b.values())
            if total == 0:
                return 1.0
            common = sum((a & b).values())
            return 2.0 * common / total
        if a == b:
            return 1.0
        product_a = _product_of(a)
        product_b = _product_of(b)
        return SequenceMatcher(None, str(product_a), str(product_b)).ratio()

    def similarity(self, ast1: Node, ast2: Node) -> float:
        return self.similarity_from_features(
            self.features(ast1), self.features(ast2)
        )


def _product_of(multiset: Counter) -> int:
    product = 1
    for prime, count in multiset.items():
        product *= prime ** count
    return product
