"""The Gemini model: structure2vec embeddings + cosine Siamese.

Offline phase: ACFG -> embedding vector.  Online phase: cosine similarity
between cached embeddings (rescaled to [0, 1] for ROC comparability with
Asteria scores).  Training minimises MSE between the cosine similarity and
the ±1 ground-truth label, as in Xu et al.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.baselines.gemini.acfg import ACFG, N_FEATURES
from repro.nn.graphnet import (
    Structure2Vec,
    cosine_similarity,
    cosine_similarity_matrix,
)
from repro.nn.loss import mse_loss
from repro.nn.optim import Adam
from repro.nn.serialize import load_state, save_state
from repro.nn.tensor import no_grad
from repro.utils.logging import get_logger
from repro.utils.rng import RNG

_LOG = get_logger("baselines.gemini")


@dataclass
class GeminiConfig:
    embedding_dim: int = 64
    iterations: int = 5
    mlp_layers: int = 2
    seed: int = 0


@dataclass
class GeminiPair:
    """A labelled ACFG pair for training/evaluation."""

    first: ACFG
    second: ACFG
    label: int  # +1 / -1


@dataclass
class GeminiHistory:
    losses: List[float] = field(default_factory=list)
    aucs: List[float] = field(default_factory=list)
    best_auc: float = 0.0


class Gemini:
    """End-to-end Gemini baseline."""

    def __init__(self, config: Optional[GeminiConfig] = None):
        self.config = config or GeminiConfig()
        self.network = Structure2Vec(
            feature_dim=N_FEATURES,
            embedding_dim=self.config.embedding_dim,
            iterations=self.config.iterations,
            mlp_layers=self.config.mlp_layers,
            seed=self.config.seed,
        )

    # -- offline ------------------------------------------------------------

    def encode(self, acfg: ACFG) -> np.ndarray:
        with no_grad():
            return self.network(acfg.features, acfg.adjacency).data.copy()

    # -- online -------------------------------------------------------------

    def similarity_from_vectors(self, v1: np.ndarray, v2: np.ndarray) -> float:
        denom = np.linalg.norm(v1) * np.linalg.norm(v2)
        if denom == 0:
            return 0.5
        return float((v1 @ v2 / denom + 1.0) * 0.5)

    def similarity_from_matrix(
        self, query: np.ndarray, vectors: np.ndarray
    ) -> np.ndarray:
        """Batched online phase: one ``(h,)``/``(q, h)`` query (matrix)
        against ``(n, h)`` cached embeddings in a single normalised GEMM
        -- the Gemini analogue of Asteria's matrix-at-once scoring."""
        query = np.asarray(query)
        scores = (cosine_similarity_matrix(query, vectors) + 1.0) * 0.5
        return scores[0] if query.ndim == 1 else scores

    def similarity(self, a1: ACFG, a2: ACFG) -> float:
        return self.similarity_from_vectors(self.encode(a1), self.encode(a2))

    # -- training ----------------------------------------------------------------

    def train(
        self,
        train_pairs: Sequence[GeminiPair],
        eval_pairs: Sequence[GeminiPair] = (),
        epochs: int = 10,
        lr: float = 0.001,
        shuffle_seed: int = 0,
    ) -> GeminiHistory:
        from repro.evalsuite.metrics import roc_auc

        optimizer = Adam(self.network.parameters(), lr=lr)
        history = GeminiHistory()
        best_state = None
        rng = RNG(shuffle_seed)
        order = list(train_pairs)
        for epoch in range(epochs):
            rng.child("epoch", epoch).shuffle(order)
            losses = []
            for pair in order:
                optimizer.zero_grad()
                e1 = self.network(pair.first.features, pair.first.adjacency)
                e2 = self.network(pair.second.features, pair.second.adjacency)
                sim = cosine_similarity(e1, e2)
                loss = mse_loss(sim, float(pair.label))
                loss.backward()
                optimizer.step()
                losses.append(float(loss.data))
            history.losses.append(float(np.mean(losses)) if losses else 0.0)
            if eval_pairs:
                scores = [self.similarity(p.first, p.second) for p in eval_pairs]
                labels = [1 if p.label > 0 else 0 for p in eval_pairs]
                auc = roc_auc(labels, scores)
                history.aucs.append(auc)
                if auc > history.best_auc:
                    history.best_auc = auc
                    best_state = self.network.state_dict()
            _LOG.info("gemini epoch %d: loss=%.4f", epoch, history.losses[-1])
        if best_state is not None:
            self.network.load_state_dict(best_state)
        return history

    # -- checkpointing ----------------------------------------------------------------

    def save(self, path) -> None:
        save_state(path, self.network.state_dict(), meta=asdict(self.config))

    @classmethod
    def load(cls, path) -> "Gemini":
        state, meta = load_state(path)
        model = cls(GeminiConfig(**meta))
        model.network.load_state_dict(state)
        return model
