"""Attributed CFG extraction (Genius/Gemini block features).

Each basic block gets the statistical features Gemini uses: counts of string
constants, numeric constants, transfer instructions, calls, total
instructions, arithmetic instructions, plus two structural attributes
(number of offspring and betweenness centrality).  These features are
deliberately architecture-*sensitive* in aggregate -- that is the baseline's
weakness the paper exploits -- but cheap to extract.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.binformat.binary import BinaryFile, FunctionRecord
from repro.compiler.cfg import build_cfg
from repro.compiler.codegen import AImm, SRef
from repro.compiler.isa import get_isa
from repro.disasm.disassembler import disassemble_function

N_FEATURES = 8

_TRANSFER = {
    "mov", "push", "pop", "ldr", "str", "li", "mr", "lwz", "stw", "leave",
}
_ARITH = {
    "add", "sub", "imul", "idiv", "neg", "not", "and", "or", "xor",
    "mul", "sdiv", "rsb", "mvn", "orr", "eor",
    "subf", "mullw", "divw", "nor", "addi",
}


@dataclass
class ACFG:
    """An attributed CFG ready for the graph embedding network."""

    function_name: str
    arch: str
    binary_name: str
    features: np.ndarray  # (n_blocks, N_FEATURES)
    adjacency: np.ndarray  # (n_blocks, n_blocks)

    @property
    def n_blocks(self) -> int:
        return self.features.shape[0]


def extract_acfg(binary: BinaryFile, record: FunctionRecord) -> ACFG:
    """Disassemble one function and extract its ACFG."""
    asm = disassemble_function(binary, record)
    cfg = build_cfg(asm)
    isa = get_isa(binary.arch)
    call_mnemonic = isa.call
    n = cfg.block_count
    block_ids = sorted(cfg.blocks)
    index = {block_id: i for i, block_id in enumerate(block_ids)}
    adjacency = np.zeros((n, n))
    for u, v in cfg.graph.edges():
        adjacency[index[u], index[v]] = 1.0
    betweenness = nx.betweenness_centrality(cfg.graph) if n > 2 else {
        b: 0.0 for b in block_ids
    }
    offspring = {
        block_id: len(nx.descendants(cfg.graph, block_id))
        for block_id in block_ids
    }
    features = np.zeros((n, N_FEATURES))
    for block_id in block_ids:
        block = cfg.blocks[block_id]
        row = index[block_id]
        n_str = n_num = n_transfer = n_calls = n_arith = 0
        for instr in block.instructions:
            if instr.mnemonic == call_mnemonic:
                n_calls += 1
            elif instr.mnemonic in _TRANSFER:
                n_transfer += 1
            elif instr.mnemonic in _ARITH:
                n_arith += 1
            for operand in instr.operands:
                if isinstance(operand, SRef):
                    n_str += 1
                elif isinstance(operand, AImm):
                    n_num += 1
        features[row] = (
            n_str,
            n_num,
            n_transfer,
            n_calls,
            len(block.instructions),
            n_arith,
            offspring[block_id],
            betweenness[block_id],
        )
    return ACFG(
        function_name=record.display_name(),
        arch=binary.arch,
        binary_name=binary.name,
        features=features,
        adjacency=adjacency,
    )
