"""The Gemini baseline (Xu et al., CCS 2017).

Encodes attributed control-flow graphs (ACFGs) with a structure2vec graph
embedding network and compares embeddings by cosine similarity inside a
Siamese setup trained on ±1 labels.
"""

from repro.baselines.gemini.acfg import ACFG, extract_acfg
from repro.baselines.gemini.model import Gemini, GeminiConfig

__all__ = ["ACFG", "extract_acfg", "Gemini", "GeminiConfig"]
