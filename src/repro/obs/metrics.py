"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

:class:`MetricsRegistry` is the one sink every instrumented subsystem
reports into -- the engine owns a registry and threads it through the
micro-batcher, the ANN index, the corpus pipeline and the HTTP server,
so a single ``GET /metrics`` scrape (or ``registry.snapshot()``) sees
the whole serving path.

Design constraints, in order:

* **stdlib-only** -- no prometheus_client; the text exposition format is
  produced directly (:meth:`MetricsRegistry.to_prometheus`);
* **cheap on the hot path** -- one small lock per metric child; label
  lookup is a dict probe on a sorted-tuple key; nothing allocates numpy
  arrays;
* **bounded memory** -- histograms are fixed-bucket (no reservoir), so a
  million observations cost the same bytes as ten.

Metric children are addressed by ``(name, labels)``; the first
registration of a name fixes its kind, help text and (for histograms)
bucket layout -- re-registering with a conflicting kind or buckets
raises, mismatched help is ignored (first writer wins).  Quantiles
(p50/p95/p99) are estimated by linear interpolation inside the winning
bucket, clamped to the observed min/max, which is exact enough for
latency dashboards and entirely deterministic.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "FRACTION_BUCKETS",
]

#: Seconds-scale latency buckets (sub-ms encode calls up to slow sweeps).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Power-of-four count buckets (batch widths, candidate-set sizes).
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384, 65536, 262144,
)

#: Buckets for ratios in [0, 1] (e.g. rerank fraction).
FRACTION_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(items: LabelItems, extra: Optional[Tuple[str, str]] = None
                   ) -> str:
    pairs = list(items)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (set to the latest observation)."""

    kind = "gauge"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with quantile summaries.

    ``buckets`` are inclusive upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the rest.  Quantiles interpolate
    linearly inside the winning bucket and clamp to the observed
    min/max, so p50/p95/p99 are deterministic functions of the counts.
    """

    kind = "histogram"

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"buckets must strictly increase: {bounds}")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # + the +Inf bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect by hand: the bounds tuple is tiny and this avoids
        # importing bisect's key-handling on every observation
        index = 0
        for bound in self.bounds:
            if value <= bound:
                break
            index += 1
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        out: List[Tuple[float, int]] = []
        for bound, count in zip(self.bounds + (math.inf,), counts):
            total += count
            out.append((bound, total))
        return out

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            count = self._count
            lo, hi = self._min, self._max
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        lower = 0.0
        for bound, bucket_count in zip(self.bounds + (math.inf,), counts):
            upper = bound
            if cumulative + bucket_count >= rank and bucket_count:
                if math.isinf(upper):
                    upper = hi  # the +Inf bucket ends at the observed max
                fraction = (
                    (rank - cumulative) / bucket_count if bucket_count else 0.0
                )
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, lo), hi)
            cumulative += bucket_count
            lower = bound
        return hi

    def summary(self) -> Dict[str, float]:
        with self._lock:
            count, total = self._count, self._sum
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class _Family:
    """All children of one metric name (kind/help/buckets fixed)."""

    def __init__(self, name: str, kind: str, help_text: str,
                 buckets: Optional[Tuple[float, ...]] = None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[LabelItems, object] = {}


class MetricsRegistry:
    """Thread-safe named metrics with Prometheus text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    # -- registration ------------------------------------------------------

    def _child(self, name: str, kind: str, help_text: str,
               labels: Dict[str, str],
               buckets: Optional[Tuple[float, ...]] = None):
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            elif kind == "histogram" and buckets is not None \
                    and family.buckets != buckets:
                raise ValueError(
                    f"histogram {name!r} already registered with buckets "
                    f"{family.buckets}, not {buckets}"
                )
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter()
                elif kind == "gauge":
                    child = Gauge()
                else:
                    child = Histogram(family.buckets
                                      or DEFAULT_LATENCY_BUCKETS)
                family.children[key] = child
            return child

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        return self._child(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels) -> Gauge:
        return self._child(name, "gauge", help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._child(
            name, "histogram", help_text, labels,
            buckets=tuple(float(b) for b in buckets),
        )

    # -- reads -------------------------------------------------------------

    def get(self, name: str, **labels):
        """The existing child for ``(name, labels)``, or ``None``."""
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return None
            return family.children.get(_label_key(labels))

    def value(self, name: str, **labels) -> float:
        """Counter/gauge value; with no labels, the sum over all children.

        Missing metrics read as 0.0, so stats views stay total-ordered
        with an engine that has not served traffic yet.
        """
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            if labels:
                child = family.children.get(_label_key(labels))
                children: Iterable = [] if child is None else [child]
            else:
                children = list(family.children.values())
        total = 0.0
        for child in children:
            if isinstance(child, Histogram):
                total += child.count
            else:
                total += child.value
        return total

    def names(self) -> List[str]:
        with self._lock:
            return list(self._families)

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-shaped point-in-time dump of every metric."""
        with self._lock:
            families = [
                (f.name, f.kind, f.help, list(f.children.items()))
                for f in self._families.values()
            ]
        out: Dict[str, Dict] = {}
        for name, kind, help_text, children in families:
            series = []
            for key, child in children:
                entry: Dict = {"labels": dict(key)}
                if isinstance(child, Histogram):
                    entry.update(child.summary())
                else:
                    entry["value"] = child.value
                series.append(entry)
            out[name] = {"kind": kind, "help": help_text, "series": series}
        return out

    # -- exposition --------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        with self._lock:
            families = [
                (f.name, f.kind, f.help, list(f.children.items()))
                for f in self._families.values()
            ]
        lines: List[str] = []
        for name, kind, help_text, children in families:
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for key, child in children:
                if isinstance(child, Histogram):
                    for bound, cumulative in child.cumulative():
                        labels = _render_labels(
                            key, extra=("le", _render_value(bound))
                        )
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    labels = _render_labels(key)
                    lines.append(
                        f"{name}_sum{labels} {_render_value(child.sum)}"
                    )
                    lines.append(f"{name}_count{labels} {child.count}")
                else:
                    labels = _render_labels(key)
                    lines.append(
                        f"{name}{labels} {_render_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
