"""Request tracing: nested context-manager spans with request ids.

A :class:`Span` measures one named unit of work (an HTTP request, an
engine query, a micro-batch flush) with wall time and per-thread CPU
time.  Spans nest: entering :func:`trace` inside an open span attaches
the new span as a child and inherits the parent's ``request_id``, so the
full encode -> sweep -> rerank path of one query shares a single id that
is also echoed to the client as ``X-Request-Id`` and stamped onto log
records (see :mod:`repro.utils.logging`).

The span stack is ``threading.local`` -- spans opened on different
server threads never see each other, which is exactly the isolation a
thread-per-request HTTP server needs.  A span tree stays reachable after
the root closes (the root keeps its children), so the slow-query log can
serialise the whole tree via :meth:`Span.to_dict`.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "trace",
    "current_span",
    "current_request_id",
    "new_request_id",
]

_STACK = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_STACK, "spans", None)
    if stack is None:
        stack = _STACK.spans = []
    return stack


def new_request_id() -> str:
    """A fresh 16-hex-char request id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One timed unit of work; build via :func:`trace`, not directly."""

    __slots__ = (
        "name", "request_id", "attrs", "children",
        "_wall_start", "_cpu_start", "wall_s", "cpu_s",
    )

    def __init__(self, name: str, request_id: str,
                 attrs: Optional[Dict] = None):
        self.name = name
        self.request_id = request_id
        self.attrs: Dict = dict(attrs or {})
        self.children: List[Span] = []
        self._wall_start = time.perf_counter()
        self._cpu_start = time.thread_time()
        self.wall_s: float = 0.0
        self.cpu_s: float = 0.0

    def _finish(self) -> None:
        self.wall_s = time.perf_counter() - self._wall_start
        self.cpu_s = time.thread_time() - self._cpu_start

    def set(self, **attrs) -> None:
        """Attach attributes to the span (e.g. candidate counts)."""
        self.attrs.update(attrs)

    def to_dict(self) -> Dict:
        """JSON-shaped span tree (times in ms, children recursive)."""
        out: Dict = {
            "name": self.name,
            "request_id": self.request_id,
            "wall_ms": round(self.wall_s * 1000.0, 3),
            "cpu_ms": round(self.cpu_s * 1000.0, 3),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out


@contextmanager
def trace(name: str, request_id: Optional[str] = None,
          **attrs) -> Iterator[Span]:
    """Open a span named ``name`` on this thread's span stack.

    ``request_id`` is inherited from the enclosing span when not given;
    a root span with no id mints one.  The span is closed (times fixed)
    when the ``with`` block exits, error or not.
    """
    stack = _stack()
    parent = stack[-1] if stack else None
    if request_id is None:
        request_id = parent.request_id if parent else new_request_id()
    span = Span(name, request_id, attrs)
    if parent is not None:
        parent.children.append(span)
    stack.append(span)
    try:
        yield span
    finally:
        span._finish()
        stack.pop()


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def current_request_id() -> Optional[str]:
    """The request id of the innermost open span, or ``None``."""
    span = current_span()
    return span.request_id if span else None
