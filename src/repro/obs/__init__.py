"""Telemetry: thread-safe metrics registry and request-trace spans.

Stdlib-only by design -- the serving path must stay importable on a bare
python install.  See :mod:`repro.obs.metrics` for the registry and
Prometheus exposition, :mod:`repro.obs.trace` for spans/request ids.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    FRACTION_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    Span,
    current_request_id,
    current_span,
    new_request_id,
    trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "FRACTION_BUCKETS",
    "Span",
    "trace",
    "current_span",
    "current_request_id",
    "new_request_id",
]
