"""Shard-parallel serving: worker pool, merge coordinator, generations.

See :mod:`repro.serving.pool` for the supervised multi-process sweep
pool, :mod:`repro.serving.coordinator` for range planning + exact
top-k merge + hot swap, and :mod:`repro.serving.generations` for the
atomic ``CURRENT``-pointer generation protocol.
"""

from repro.serving.coordinator import ServingCoordinator, shard_ranges
from repro.serving.generations import (
    FLAT_GENERATION,
    active_root,
    clone_store,
    commit_generation,
    generation_seq,
    list_generations,
    prepare_generation,
    read_current,
)
from repro.serving.pool import MAX_ATTEMPTS, ShardWorkerPool, SweepError

__all__ = [
    "FLAT_GENERATION",
    "MAX_ATTEMPTS",
    "ServingCoordinator",
    "ShardWorkerPool",
    "SweepError",
    "active_root",
    "clone_store",
    "commit_generation",
    "generation_seq",
    "list_generations",
    "prepare_generation",
    "read_current",
    "shard_ranges",
]
