"""Coordinator: range planning, partial merge, and hot generation swap.

Sits between the engine's query paths and the :class:`ShardWorkerPool`.
Per batch it pins the active generation (root + open store) under a
lock, cuts the corpus into shard-aligned worker ranges, sweeps them in
parallel, and merges the per-range partials with the same
:func:`~repro.index.ann.select_top_k` the single-process sweep ends
with.  The merge is exact *including tie order*: every global top-k row
is necessarily in its own range's top-k (scores are per-row and
identical either way), and range-local ties at the cut keep exactly the
ascending-row winners the global lexsort would keep.

A swap never touches in-flight queries: they hold a reference to the
generation they pinned at admission, whose shard files are immutable,
while :meth:`swap_to` atomically rewrites the ``CURRENT`` pointer and
re-pins new arrivals to the new store.  Every response therefore comes
from exactly one generation -- no torn merges across a flip.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import Asteria, FunctionEncoding
from repro.index.ann import SCORE_BLOCK_ROWS, select_top_k
from repro.index.search import SearchHit
from repro.index.store import EmbeddingStore
from repro.serving import generations
from repro.serving.pool import ShardWorkerPool
from repro.utils.logging import get_logger

_LOG = get_logger("serving.coordinator")

__all__ = ["ServingCoordinator", "shard_ranges"]


def scoring_block_offsets(
    offsets: Sequence[int], block_rows: int = SCORE_BLOCK_ROWS
) -> List[int]:
    """Cumulative boundaries of the global sweep's scoring blocks.

    Replicates :meth:`AnnIndex._scoring_blocks`' greedy shard
    coalescing (consecutive shards gathered up to ``block_rows``), so
    worker ranges can be cut exactly where the single-process sweep
    cuts its GEMM blocks.
    """
    bounds = [0]
    pending = 0
    for i in range(len(offsets) - 1):
        size = offsets[i + 1] - offsets[i]
        if pending and pending + size > block_rows:
            bounds.append(bounds[-1] + pending)
            pending = 0
        pending += size
    if pending:
        bounds.append(bounds[-1] + pending)
    return bounds


def shard_ranges(
    offsets: Sequence[int], n_parts: int
) -> List[Tuple[int, int]]:
    """Cut cumulative shard offsets into ≤``n_parts`` contiguous ranges.

    Ranges are aligned to the global sweep's *scoring-block* boundaries
    (shard-aligned, coalesced up to :data:`SCORE_BLOCK_ROWS` rows), not
    just shard boundaries.  That alignment is the bit-for-bit merge
    guarantee: each worker's block coalescer, restarted at a global
    block boundary, regenerates exactly the blocks the single-process
    sweep would score there, so every Siamese GEMM call sees identical
    inputs and produces identical floats.  BLAS kernels pick different
    accumulation strategies for different GEMM widths, so ranges cut
    mid-block would differ from the reference in the last bits.
    """
    n_rows = offsets[-1] if offsets else 0
    if n_rows <= 0 or n_parts < 1:
        return []
    bounds = scoring_block_offsets(offsets)
    target = n_rows / n_parts
    # greedy: close a range at the first block boundary past the ideal
    # cumulative cut for that range
    ranges: List[Tuple[int, int]] = []
    start = 0
    cuts_done = 0
    for boundary in bounds[1:]:
        ideal = (cuts_done + 1) * target
        if boundary >= ideal or boundary == n_rows:
            ranges.append((start, boundary))
            start = boundary
            cuts_done += 1
            if cuts_done == n_parts:
                break
    if start < n_rows:
        # fewer blocks than parts, or rounding left a tail: extend the
        # last range to cover it
        if ranges:
            ranges[-1] = (ranges[-1][0], n_rows)
        else:
            ranges = [(0, n_rows)]
    return ranges


class ServingCoordinator:
    """Owns the worker pool and the active-generation pin."""

    def __init__(
        self,
        model: Asteria,
        index_root,
        n_workers: int,
        registry=None,
        calibrate: bool = True,
    ):
        self.index_root = Path(index_root)
        self.calibrate = calibrate
        self._registry = registry
        self._lock = threading.Lock()
        self._generation_rel: str = generations.FLAT_GENERATION
        self._store: Optional[EmbeddingStore] = None
        self.pool = ShardWorkerPool(model, n_workers, registry=registry)
        self._closed = False

    # -- generation pin ----------------------------------------------------

    @property
    def generation(self) -> str:
        with self._lock:
            return self._generation_rel

    @property
    def generation_seq(self) -> int:
        return generations.generation_seq(self.generation)

    def activate(self, rel: str, store: EmbeddingStore) -> None:
        """Pin ``store`` (the generation at ``rel``) for new queries."""
        with self._lock:
            self._generation_rel = rel
            self._store = store
        if self._registry is not None:
            self._registry.gauge(
                "repro_serve_active_generation",
                "Sequence number of the generation serving new queries",
            ).set(generations.generation_seq(rel))

    def _pin(self) -> Tuple[str, EmbeddingStore]:
        with self._lock:
            if self._store is None:
                raise RuntimeError("coordinator has no active generation")
            return self._generation_rel, self._store

    # -- queries -----------------------------------------------------------

    def query_batch(
        self,
        encodings: Sequence[FunctionEncoding],
        top_k: Optional[int],
        threshold: Optional[float],
        timeout_s: Optional[float] = None,
        candidates: Optional[Sequence[np.ndarray]] = None,
    ) -> Tuple[List[List[SearchHit]], int, str]:
        """Shard-parallel exact sweep for a batch of encoded queries.

        ``candidates`` (per-query global row arrays, from a tiered ANN
        backend) restricts each worker to its range's slice of those
        rows; ``None`` sweeps every range fully.  Either way the merge
        below is the same :func:`select_top_k` the single-process path
        ends with, so results stay bit-for-bit identical to it.

        Returns ``(hit_lists, corpus_rows, generation_rel)`` -- the
        generation every one of these results came from.
        """
        rel, store = self._pin()
        n_rows = store.n_flushed
        if n_rows == 0 or not encodings:
            return [[] for _ in encodings], n_rows, rel
        began = time.monotonic()
        q_vectors = np.stack(
            [np.asarray(e.vector, dtype=np.float64) for e in encodings]
        )
        q_counts = np.array(
            [e.callee_count for e in encodings], dtype=np.int64
        )
        ranges = shard_ranges(store.shard_offsets(), self.pool.n_workers)
        per_range = self.pool.sweep(
            str(store.root), ranges, q_vectors, q_counts,
            top_k, threshold, self.calibrate, timeout_s=timeout_s,
            candidates=candidates,
        )
        hit_lists: List[List[SearchHit]] = []
        for qi in range(len(encodings)):
            rows = np.concatenate(
                [partials[qi][0] for partials in per_range]
            ) if per_range else np.zeros(0, dtype=np.int64)
            scores = np.concatenate(
                [partials[qi][1] for partials in per_range]
            ) if per_range else np.zeros(0, dtype=np.float64)
            keep = select_top_k(scores, rows, top_k)
            hits = []
            for pos in keep:
                meta = store.metadata_at(int(rows[pos]))
                hits.append(SearchHit(
                    row=meta.row,
                    score=float(scores[pos]),
                    name=meta.name,
                    binary_name=meta.binary_name,
                    arch=meta.arch,
                    callee_count=meta.callee_count,
                    ast_size=meta.ast_size,
                    image_id=meta.image_id,
                ))
            hit_lists.append(hits)
        if self._registry is not None:
            self._registry.counter(
                "repro_serve_pool_queries_total",
                "Queries answered by the shard-parallel pool",
            ).inc(len(encodings))
            self._registry.histogram(
                "repro_serve_pool_sweep_seconds",
                "End-to-end pooled sweep+merge wall time per batch",
            ).observe(time.monotonic() - began)
        return hit_lists, n_rows, rel

    # -- swap --------------------------------------------------------------

    def swap_to(
        self, rel: str, store: Optional[EmbeddingStore] = None
    ) -> EmbeddingStore:
        """Atomically publish generation ``rel`` and pin it.

        Commit order matters: the ``CURRENT`` pointer flips on disk
        first (the ``serving.swap`` failpoint sits in that window -- a
        raise there aborts with the old generation still serving and
        the swaps counter untouched), then new queries are re-pinned.
        In-flight queries keep their old pin and complete untouched.
        Pass the already-open ``store`` (the ingest path just wrote it)
        to skip a redundant verify-on-open.
        """
        generations.commit_generation(self.index_root, rel)
        if store is None:
            store = EmbeddingStore.open(
                generations.active_root(self.index_root)
            )
        self.activate(rel, store)
        if self._registry is not None:
            self._registry.counter(
                "repro_index_swaps_total",
                "Hot index generation swaps completed",
            ).inc()
        _LOG.info(
            "hot-swapped index to generation %s (%d rows)",
            rel, store.n_flushed,
        )
        return store

    # -- lifecycle ---------------------------------------------------------

    def workers_info(self) -> List[dict]:
        return self.pool.workers_info()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.pool.close()
