"""Supervised multi-process sweep pool for shard-parallel serving.

One query's corpus sweep is a GEMM over every flushed row; a single
process serializes concurrent queries behind the engine lock.  The pool
splits the corpus into disjoint shard-aligned row ranges and hands each
range to a separate worker process.  Workers mmap-open the store
read-only -- PR 5's float32 shards make the vector bytes shareable
across processes for free (one page-cache copy) -- and sweep their
range with the exact :class:`~repro.index.ann.BruteForceIndex` scorers,
returning per-query ``(rows, scores)`` partials for the coordinator to
merge with :func:`~repro.index.ann.select_top_k`.

Supervision follows ``pipeline/workers.py``: the parent tracks exactly
which tasks each worker holds, polls liveness while waiting on results,
and on a worker death (OOM kill, segfault, a ``serving.worker`` kill
failpoint) respawns the slot and re-dispatches its in-flight tasks to
the replacement.  A task that fails ``max_attempts`` times surfaces as
:class:`SweepError` instead of hanging the query.

Workers cache open stores by root path (bounded LRU), so a generation
swap simply starts naming a different root in task payloads: the first
sweep against the new generation opens it, the old one ages out.
"""

from __future__ import annotations

import atexit
import multiprocessing
import queue as queue_mod
import threading
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.faults as faults
from repro.core.model import Asteria, AsteriaConfig, FunctionEncoding
from repro.index.ann import BruteForceIndex, select_top_k
from repro.index.store import EmbeddingStore
from repro.utils.logging import get_logger

_LOG = get_logger("serving.pool")

__all__ = ["ShardWorkerPool", "SweepError", "MAX_ATTEMPTS"]

#: Per-task attempt budget across worker crashes and task faults.
MAX_ATTEMPTS = 3
#: Liveness-poll period while the collector waits on results.
_POLL_S = 0.1
#: Stores a worker keeps open at once (old + new generation during a
#: swap; anything older has aged out of the query stream).
_STORE_CACHE_MAX = 2

#: One sweep partial per query: global store rows and their scores.
Partial = Tuple[np.ndarray, np.ndarray]


class SweepError(RuntimeError):
    """A sweep task failed ``max_attempts`` times (crash or exception)."""


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


def _open_corpus(cache: "OrderedDict", root: str):
    """Worker-side store open with a tiny LRU over generations.

    ``verify=False``: the coordinator verified checksums when it opened
    the generation; re-hashing every shard per worker would turn each
    swap into an O(corpus) stall.  ``migrate=False`` keeps workers
    strictly read-only on disk.
    """
    entry = cache.get(root)
    if entry is None:
        store = EmbeddingStore.open(root, migrate=False, verify=False)
        entry = (store.vectors().snapshot(), store.callee_counts())
        cache[root] = entry
        while len(cache) > _STORE_CACHE_MAX:
            cache.popitem(last=False)
    else:
        cache.move_to_end(root)
    return entry


def _worker_main(worker_id, model_meta, model_state,
                 task_queue, result_queue) -> None:
    """Worker loop: sweep one shard range per task until the sentinel.

    Only the Siamese head is needed for scoring, so the model is
    reconstructed from its config + head state without encoder weights.
    """
    model = Asteria(AsteriaConfig(**model_meta))
    model.siamese.load_state_dict(model_state)
    cache: "OrderedDict" = OrderedDict()
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, payload = item
        try:
            # chaos hook: kill-mode is an OOM-killed worker mid-sweep,
            # raise-mode a transient sweep fault the pool must retry
            faults.inject("serving.worker")
            (root, start, stop, q_vectors, q_counts,
             k, threshold, calibrate, cand_lists) = payload
            began = time.monotonic()
            vectors, counts = _open_corpus(cache, root)
            sub = vectors.slice_rows(start, stop)
            index = BruteForceIndex(
                model, sub,
                counts[start:stop] if calibrate else None,
                calibrate=calibrate,
            )
            queries = [
                FunctionEncoding(
                    name=f"q{i}", arch="", binary_name="",
                    vector=q_vectors[i], callee_count=int(q_counts[i]),
                )
                for i in range(len(q_vectors))
            ]
            partials: List[Partial] = []
            if cand_lists is None:
                for neighbors in index.top_k_batch(
                    queries, k=k, threshold=threshold
                ):
                    rows = np.array(
                        [n.row for n in neighbors], dtype=np.int64
                    ) + start
                    scores = np.array(
                        [n.score for n in neighbors], dtype=np.float64
                    )
                    partials.append((rows, scores))
            else:
                # tiered-index rerank: score only each query's candidate
                # rows that fall in this range.  Each score is one
                # independent per-row dot product through the Siamese
                # head, so slicing the candidate set across workers
                # cannot change any row's score; ties are broken by
                # *global* row id so the coordinator's select_top_k
                # merge stays bit-for-bit with the single-process path.
                for i, query in enumerate(queries):
                    cand = np.asarray(cand_lists[i], dtype=np.int64)
                    local = cand[(cand >= start) & (cand < stop)]
                    if local.size == 0:
                        partials.append((
                            np.zeros(0, dtype=np.int64), np.zeros(0)
                        ))
                        continue
                    scores = index.score_matrix([query], local - start)[0]
                    if threshold is not None:
                        keep = scores >= threshold
                        local, scores = local[keep], scores[keep]
                    top = select_top_k(scores, local, k)
                    partials.append((
                        local[top],
                        np.asarray(scores[top], dtype=np.float64),
                    ))
            sweep_s = time.monotonic() - began
            result_queue.put(
                (task_id, "ok", (worker_id, sweep_s, partials))
            )
        except BaseException as exc:  # noqa: BLE001 -- report, don't die
            result_queue.put(
                (task_id, "error", f"{type(exc).__name__}: {exc}")
            )


# ---------------------------------------------------------------------------
# parent-side bookkeeping
# ---------------------------------------------------------------------------


@dataclass
class _PendingTask:
    payload: tuple
    worker_id: int
    attempts: int = 1
    done: threading.Event = field(default_factory=threading.Event)
    result: Optional[Tuple[int, float, List[Partial]]] = None
    error: Optional[str] = None

    def finish_ok(self, value) -> None:
        self.result = value
        self.done.set()

    def finish_error(self, message: str) -> None:
        self.error = message
        self.done.set()


class _PoolWorker:
    """One sweep process plus its task queue (may hold several tasks)."""

    __slots__ = ("worker_id", "process", "queue")

    @classmethod
    def spawn(cls, ctx, worker_id, model_payload, result_queue):
        worker = cls.__new__(cls)
        worker.worker_id = worker_id
        worker.queue = ctx.Queue()
        meta, state = model_payload
        worker.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, meta, state, worker.queue, result_queue),
            daemon=True,
        )
        worker.process.start()
        return worker

    def stop(self) -> None:
        try:
            self.queue.put(None)
        except (OSError, ValueError):
            pass

    def reap(self, timeout: float = 1.0) -> None:
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
        self.queue.close()


class ShardWorkerPool:
    """Fixed-size supervised pool of shard-sweep workers.

    Thread-safe: any number of server threads may call :meth:`sweep`
    concurrently; tasks from different sweeps interleave freely on the
    workers.  A background collector thread routes results to waiters
    and replaces dead workers.
    """

    def __init__(
        self,
        model: Asteria,
        n_workers: int,
        registry=None,
        max_attempts: int = MAX_ATTEMPTS,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._ctx = multiprocessing.get_context()
        self._model_payload = (
            asdict(model.config), model.siamese.state_dict()
        )
        self._registry = registry
        self._max_attempts = max_attempts
        self._results = self._ctx.Queue()
        self._lock = threading.Lock()
        self._pending: Dict[int, _PendingTask] = {}
        self._next_task_id = 0
        self._rr = 0
        self._closed = False
        self._workers = [
            _PoolWorker.spawn(self._ctx, i, self._model_payload,
                              self._results)
            for i in range(n_workers)
        ]
        self._collector = threading.Thread(
            target=self._collect_loop, name="serve-pool-collector",
            daemon=True,
        )
        self._collector.start()
        # a pool the owner forgot to close must not leak children past
        # interpreter exit (close is idempotent, so double-close is fine)
        atexit.register(self.close)

    # -- accounting --------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    def workers_info(self) -> List[Dict]:
        """Liveness snapshot for /healthz and stats."""
        with self._lock:
            return [
                {
                    "worker": w.worker_id,
                    "pid": w.process.pid,
                    "alive": bool(w.process.is_alive()),
                }
                for w in self._workers
            ]

    def _count(self, name: str, help_text: str, n: float = 1,
               **labels) -> None:
        if self._registry is not None:
            self._registry.counter(name, help_text, **labels).inc(n)

    def _observe(self, name: str, help_text: str, value: float,
                 **labels) -> None:
        if self._registry is not None:
            self._registry.histogram(name, help_text, **labels).observe(value)

    # -- collector ---------------------------------------------------------

    def _collect_loop(self) -> None:
        while not self._closed:
            try:
                got = self._results.get(timeout=_POLL_S)
            except queue_mod.Empty:
                self._check_liveness()
                continue
            except (OSError, ValueError):
                return  # queue closed under us during shutdown
            task_id, status, value = got
            with self._lock:
                task = self._pending.get(task_id)
                if task is None or task.done.is_set():
                    continue  # duplicate from a replaced worker
                if status == "ok":
                    worker_id, sweep_s, partials = value
                    self._pending.pop(task_id, None)
                    n_queries = len(partials)
                    task.finish_ok(value)
                else:
                    self._retry_or_fail(task_id, task, value)
                    continue
            self._count(
                "repro_serve_worker_queries_total",
                "Query sweeps completed per serve-pool worker",
                n=n_queries, worker=worker_id,
            )
            self._observe(
                "repro_serve_worker_sweep_seconds",
                "Per-task shard-range sweep wall time",
                sweep_s, worker=worker_id,
            )

    def _retry_or_fail(self, task_id: int, task: _PendingTask,
                       reason: str) -> None:
        """Re-dispatch a failed task (caller holds the lock)."""
        if task.attempts >= self._max_attempts:
            self._pending.pop(task_id, None)
            task.finish_error(
                f"sweep task failed {task.attempts} time(s); last: {reason}"
            )
            return
        task.attempts += 1
        next_slot = (task.worker_id + 1) % len(self._workers)
        task.worker_id = next_slot
        self._count(
            "repro_serve_task_retries_total",
            "Sweep tasks re-dispatched after a worker fault",
        )
        _LOG.warning(
            "sweep task %d failed (attempt %d/%d): %s; re-dispatching "
            "to worker %d",
            task_id, task.attempts, self._max_attempts, reason, next_slot,
        )
        try:
            self._workers[next_slot].queue.put((task_id, task.payload))
        except (OSError, ValueError):
            self._pending.pop(task_id, None)
            task.finish_error(f"pool closing; last: {reason}")

    def _check_liveness(self) -> None:
        if not threading.main_thread().is_alive():
            # interpreter shutdown: worker deaths here are the process
            # group being torn down, and a respawned child would outlive
            # the parent as an orphan holding its pipes open
            return
        with self._lock:
            if self._closed:
                return
            for i, worker in enumerate(self._workers):
                if worker.process.is_alive():
                    continue
                exitcode = worker.process.exitcode
                worker.reap(timeout=0.1)
                self._count(
                    "repro_serve_worker_restarts_total",
                    "Serve-pool workers replaced after dying mid-sweep",
                )
                _LOG.warning(
                    "serve worker %d died (exit %s); replacing it",
                    worker.worker_id, exitcode,
                )
                self._workers[i] = _PoolWorker.spawn(
                    self._ctx, worker.worker_id, self._model_payload,
                    self._results,
                )
                # the dead child took its queued tasks with it
                lost = [
                    (tid, t) for tid, t in self._pending.items()
                    if t.worker_id == worker.worker_id
                    and not t.done.is_set()
                ]
                for tid, task in lost:
                    self._retry_or_fail(
                        tid, task,
                        f"worker died with exit code {exitcode}",
                    )

    # -- dispatch ----------------------------------------------------------

    def sweep(
        self,
        store_root: str,
        ranges: Sequence[Tuple[int, int]],
        q_vectors: np.ndarray,
        q_counts: np.ndarray,
        k: Optional[int],
        threshold: Optional[float],
        calibrate: bool,
        timeout_s: Optional[float] = None,
        candidates: Optional[Sequence[np.ndarray]] = None,
    ) -> List[List[Partial]]:
        """Sweep every range concurrently; partials in range order.

        ``candidates`` (one global-row array per query, from a tiered
        ANN backend) restricts every worker to its range's slice of
        those rows instead of a full range sweep.

        Returns one ``List[Partial]`` per range (one partial per query).
        Raises :class:`SweepError` on exhausted retries or timeout.
        """
        if not ranges:
            return []
        if candidates is not None:
            candidates = [
                np.asarray(rows, dtype=np.int64) for rows in candidates
            ]
        tasks: List[Tuple[int, _PendingTask]] = []
        with self._lock:
            if self._closed:
                raise SweepError("pool is closed")
            base = self._rr
            self._rr = (self._rr + len(ranges)) % len(self._workers)
            for j, (start, stop) in enumerate(ranges):
                slot = (base + j) % len(self._workers)
                payload = (store_root, int(start), int(stop),
                           q_vectors, q_counts, k, threshold, calibrate,
                           candidates)
                task_id = self._next_task_id
                self._next_task_id += 1
                task = _PendingTask(payload=payload, worker_id=slot)
                self._pending[task_id] = task
                tasks.append((task_id, task))
            for task_id, task in tasks:
                try:
                    self._workers[task.worker_id].queue.put(
                        (task_id, task.payload)
                    )
                except (OSError, ValueError):
                    self._pending.pop(task_id, None)
                    task.finish_error("pool closing")
        deadline = (
            None if timeout_s is None else time.monotonic() + timeout_s
        )
        out: List[List[Partial]] = []
        for task_id, task in tasks:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            if not task.done.wait(timeout=remaining):
                with self._lock:
                    self._pending.pop(task_id, None)
                raise SweepError(
                    f"sweep task {task_id} timed out after {timeout_s}s"
                )
            if task.error is not None:
                raise SweepError(task.error)
            _, _, partials = task.result
            out.append(partials)
        return out

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop workers and fail any in-flight sweeps.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for task in pending:
            if not task.done.is_set():
                task.finish_error("pool closed")
        for worker in self._workers:
            worker.stop()
        for worker in self._workers:
            worker.reap()
        if self._collector.is_alive():
            self._collector.join(timeout=2.0)
        try:
            self._results.close()
        except (OSError, ValueError):
            pass
