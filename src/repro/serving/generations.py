"""Versioned index generations with an atomic ``CURRENT`` pointer.

A *generation* is one immutable, fully-built embedding store directory.
The flat layout every earlier PR produced (``<index_root>/manifest.json``
and friends directly under the root) is generation 0; rebuilt or
extended stores are prepared under ``<index_root>/generations/gen-NNNNN``
while the old one keeps serving, then published by atomically rewriting
a one-line ``CURRENT`` pointer file (write temp → fsync → ``os.replace``,
the PR 7 crash-safe idiom).  Readers that pinned the old generation
before the flip keep sweeping it untouched -- shard files are never
mutated in place -- so an in-flight query stream crosses a swap without
a single failed or torn response.

Crash safety: a crash before the ``os.replace`` leaves the old
``CURRENT`` (old generation keeps serving, the half-prepared directory
is inert garbage); a crash after leaves the new one.  There is no state
in between.
"""

from __future__ import annotations

import os
import re
import shutil
from pathlib import Path
from typing import List, Optional, Tuple

from repro.utils.fsio import atomic_write_text

__all__ = [
    "CURRENT_NAME",
    "FLAT_GENERATION",
    "GENERATIONS_DIR",
    "active_root",
    "clone_store",
    "commit_generation",
    "generation_seq",
    "list_generations",
    "prepare_generation",
    "read_current",
]

GENERATIONS_DIR = "generations"
CURRENT_NAME = "CURRENT"

#: Pointer value naming the flat (pre-generations) store layout.
FLAT_GENERATION = "."

_GEN_RE = re.compile(r"^gen-(\d{5,})$")

#: Store artifacts a new generation inherits from its parent.  Anything
#: else under the root (``generations/`` itself, ``quarantine/``, the
#: ``CURRENT`` pointer, stray temp files) stays behind.
_CLONE_GLOBS = ("manifest.json", "shard-*.npy", "shard-*.meta.npz",
                "ann-lsh.npz")


def read_current(index_root) -> Optional[str]:
    """The committed generation pointer, or ``None`` if never written.

    Returned as the relative path stored in ``CURRENT`` (``"."`` for the
    flat layout, ``"generations/gen-00001"`` and up afterwards).
    """
    path = Path(index_root) / CURRENT_NAME
    try:
        text = path.read_text(encoding="utf-8").strip()
    except FileNotFoundError:
        return None
    return text or None


def active_root(index_root) -> Path:
    """Directory of the generation queries should sweep right now.

    A store that has never been swapped has no ``CURRENT`` file and its
    artifacts sit directly under ``index_root`` -- that flat layout *is*
    generation 0, so no migration step is needed to start serving it.
    """
    index_root = Path(index_root)
    rel = read_current(index_root)
    if rel is None or rel == FLAT_GENERATION:
        return index_root
    return index_root / rel


def generation_seq(rel: Optional[str]) -> int:
    """Monotone sequence number of a generation pointer value."""
    if rel is None or rel == FLAT_GENERATION:
        return 0
    match = _GEN_RE.match(Path(rel).name)
    if not match:
        raise ValueError(f"not a generation path: {rel!r}")
    return int(match.group(1))


def list_generations(index_root) -> List[str]:
    """Relative paths of every prepared generation, in sequence order."""
    base = Path(index_root) / GENERATIONS_DIR
    if not base.is_dir():
        return []
    found = []
    for entry in base.iterdir():
        if entry.is_dir() and _GEN_RE.match(entry.name):
            found.append(f"{GENERATIONS_DIR}/{entry.name}")
    found.sort(key=generation_seq)
    return found


def prepare_generation(index_root) -> Tuple[str, Path]:
    """Allocate the next generation directory (created, empty).

    Returns ``(relative_path, absolute_path)``.  Nothing is visible to
    readers until :func:`commit_generation` publishes the pointer.
    """
    index_root = Path(index_root)
    existing = list_generations(index_root)
    next_seq = max(
        [generation_seq(rel) for rel in existing]
        + [generation_seq(read_current(index_root))]
    ) + 1
    rel = f"{GENERATIONS_DIR}/gen-{next_seq:05d}"
    path = index_root / rel
    path.mkdir(parents=True, exist_ok=False)
    return rel, path


def clone_store(src_root, dst_root) -> int:
    """Populate a prepared generation with the parent store's artifacts.

    Hard-links shard files where the filesystem allows (shards are
    immutable once flushed, so sharing the bytes is safe and O(1) per
    file) and falls back to a copy otherwise.  Returns the number of
    files cloned.
    """
    src_root, dst_root = Path(src_root), Path(dst_root)
    cloned = 0
    for pattern in _CLONE_GLOBS:
        for src in sorted(src_root.glob(pattern)):
            if not src.is_file():
                continue
            dst = dst_root / src.name
            try:
                os.link(src, dst)
            except OSError:
                shutil.copy2(src, dst)
            cloned += 1
    return cloned


def commit_generation(index_root, rel: str) -> None:
    """Atomically flip ``CURRENT`` to ``rel``.

    The ``serving.swap`` failpoint fires inside the crash window (new
    pointer durable under the temp name, old one still in place): a
    raise there aborts the swap cleanly and the old generation keeps
    serving; a kill there models a power cut mid-swap.
    """
    atomic_write_text(Path(index_root) / CURRENT_NAME, rel + "\n",
                      failpoint="serving.swap")
