"""Named failpoints: deterministic fault injection for chaos testing.

Production code marks its crash-critical moments with
``faults.inject("store.flush.pre_rename")``.  When no failpoint is
active -- the normal case -- :func:`inject` is a single module-flag
check and returns immediately; activating failpoints (via
``EngineConfig.faults``, the ``REPRO_FAULTS`` environment variable, or
:func:`configure` / :func:`activate` directly) arms them process-wide so
chaos tests can raise, delay, or kill the process at exactly the moment
a real fault would strike.

Spec syntax (comma- or semicolon-separated failpoints)::

    <name>=<mode>[:<arg>][@<skip>][*<times>]

    store.flush.pre_rename=kill          kill the process at every hit
    store.flush.pre_manifest=kill@2      skip 1 hit, kill on the 2nd
    cache.put.pre_rename=raise*1         raise FaultInjected once
    server.request=delay:250             sleep 250 ms per hit

Modes:

* ``raise`` -- raise :class:`FaultInjected` (a recoverable error a
  caller may or may not survive -- that is the point of the test);
* ``delay:<ms>`` -- sleep, simulating a stall (slow disk, GC pause);
* ``kill`` -- ``os._exit(KILL_EXIT_CODE)``: instant process death with
  no atexit handlers, no buffer flush, no cleanup -- the closest a test
  can get to ``kill -9`` / an OOM kill from inside.

``@skip`` ignores the first *skip* hits; ``*times`` fires at most
*times* times.  Both counters are per-process -- except when a **state
directory** is set (``REPRO_FAULTS_STATE`` or ``configure(...,
state_dir=...)``): then each firing must claim a ticket file created
with ``O_EXCL``, so ``*times`` is enforced *across* processes.  That is
how a chaos test kills exactly one pipeline worker out of a pool: every
forked worker inherits the armed failpoint, but only one can claim the
single ticket.

Failpoint state is process-global by design (faults are); it is
inherited by forked worker processes and re-read from ``REPRO_FAULTS``
on import, so spawned subprocesses arm themselves too.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "FaultInjected",
    "KILL_EXIT_CODE",
    "FAILPOINTS",
    "activate",
    "clear",
    "configure",
    "fired_counts",
    "inject",
    "is_active",
    "parse_spec",
]

#: Exit status of a ``kill``-mode failpoint (128 + SIGKILL, the status a
#: genuinely OOM-killed process reports).
KILL_EXIT_CODE = 137

#: The failpoints production code declares, for discoverability (a spec
#: may also name points not listed here -- e.g. ones local to a test).
FAILPOINTS = (
    "store.flush.pre_rename",    # shard files written, not yet visible
    "store.flush.pre_manifest",  # shards renamed, manifest still old
    "store.manifest.pre_rename", # new manifest written to tmp only
    "ann.persist.pre_rename",    # LSH state written to tmp only
    "ann.build",                 # ANN backend construction
    "cache.put.pre_rename",      # cache object written to tmp only
    "worker.task",               # pipeline worker, start of one task
    "server.request",            # HTTP handler, after admission
    "serving.worker",            # serve-pool worker, start of one sweep
    "serving.swap",              # generation swap, CURRENT written to tmp only
)

_MODES = ("raise", "delay", "kill")


class FaultInjected(RuntimeError):
    """Raised by a ``raise``-mode failpoint."""

    def __init__(self, name: str):
        super().__init__(f"failpoint {name!r} injected")
        self.failpoint = name


class _Failpoint:
    __slots__ = ("name", "mode", "arg", "skip", "times", "hits", "fired")

    def __init__(self, name: str, mode: str, arg: float = 0.0,
                 skip: int = 0, times: Optional[int] = None):
        if mode not in _MODES:
            raise ValueError(
                f"unknown failpoint mode {mode!r} for {name!r} "
                f"(choose from {', '.join(_MODES)})"
            )
        if skip < 0 or (times is not None and times < 1) or arg < 0:
            raise ValueError(f"bad failpoint counts for {name!r}")
        self.name = name
        self.mode = mode
        self.arg = arg
        self.skip = skip
        self.times = times
        self.hits = 0
        self.fired = 0


_lock = threading.Lock()
_points: Dict[str, _Failpoint] = {}
_fired: Dict[str, int] = {}
_state_dir: Optional[str] = None
#: Fast-path flag: :func:`inject` returns immediately while this is
#: false, so disarmed failpoints cost one attribute load per call.
_ACTIVE = False


def parse_spec(spec: str) -> List[_Failpoint]:
    """Parse a ``name=mode[:arg][@skip][*times]`` spec string."""
    points = []
    for chunk in spec.replace(";", ",").split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(
                f"bad failpoint {chunk!r}: expected name=mode[:arg]"
                f"[@skip][*times]"
            )
        name, action = chunk.split("=", 1)
        times: Optional[int] = None
        skip = 0
        if "*" in action:
            action, times_s = action.rsplit("*", 1)
            times = int(times_s)
        if "@" in action:
            action, skip_s = action.rsplit("@", 1)
            skip = int(skip_s) - 1  # "@N" = fire on the Nth hit
        arg = 0.0
        if ":" in action:
            action, arg_s = action.split(":", 1)
            arg = float(arg_s)
        points.append(
            _Failpoint(name.strip(), action.strip(), arg=arg,
                       skip=skip, times=times)
        )
    return points


def configure(spec: str, state_dir: Optional[str] = None) -> None:
    """Replace the active failpoint set from a spec string.

    ``state_dir`` (or the ``REPRO_FAULTS_STATE`` environment variable)
    makes ``*times`` budgets shared across processes via ticket files.
    """
    global _ACTIVE, _state_dir
    points = parse_spec(spec)
    with _lock:
        _points.clear()
        for point in points:
            _points[point.name] = point
        _state_dir = state_dir or os.environ.get("REPRO_FAULTS_STATE") or None
        _ACTIVE = bool(_points)


def activate(name: str, mode: str, arg: float = 0.0, skip: int = 0,
             times: Optional[int] = None) -> None:
    """Arm one failpoint programmatically (adds to the active set)."""
    global _ACTIVE
    point = _Failpoint(name, mode, arg=arg, skip=skip, times=times)
    with _lock:
        _points[name] = point
        _ACTIVE = True


def clear() -> None:
    """Disarm every failpoint (the fast path is restored)."""
    global _ACTIVE, _state_dir
    with _lock:
        _points.clear()
        _fired.clear()
        _state_dir = None
        _ACTIVE = False


def is_active() -> bool:
    return _ACTIVE


def fired_counts() -> Dict[str, int]:
    """``{failpoint: times fired}`` in this process (survives clear of
    the point itself exhausting its budget, not :func:`clear`)."""
    with _lock:
        return dict(_fired)


def _claim_ticket(name: str, times: int) -> bool:
    """Claim one of ``times`` cross-process tickets via ``O_EXCL``."""
    assert _state_dir is not None
    os.makedirs(_state_dir, exist_ok=True)
    for i in range(times):
        path = os.path.join(
            _state_dir, f"{name.replace(os.sep, '_')}.{i}.fired"
        )
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.write(fd, str(os.getpid()).encode("ascii"))
        os.close(fd)
        return True
    return False


def inject(name: str) -> None:
    """Fire the named failpoint if armed; a near-no-op otherwise."""
    if not _ACTIVE:
        return
    with _lock:
        point = _points.get(name)
        if point is None:
            return
        point.hits += 1
        if point.hits <= point.skip:
            return
        if _state_dir is not None and point.times is not None:
            if not _claim_ticket(name, point.times):
                return
        elif point.times is not None:
            if point.fired >= point.times:
                return
        point.fired += 1
        _fired[name] = _fired.get(name, 0) + 1
        mode, arg = point.mode, point.arg
    if mode == "raise":
        raise FaultInjected(name)
    if mode == "delay":
        time.sleep(arg / 1000.0)
        return
    # kill: no atexit, no flush, no cleanup -- like SIGKILL from inside
    os._exit(KILL_EXIT_CODE)


# arm from the environment at import so subprocesses (spawned workers,
# chaos-test children) do not need an explicit configure() call
_env_spec = os.environ.get("REPRO_FAULTS")
if _env_spec:
    configure(_env_spec)
del _env_spec
