"""AST node definitions.

The node vocabulary follows Table I of the Asteria paper: *statement* nodes
control execution flow (``if``, ``block``, loops, ``return`` ...) and
*expression* nodes perform calculations (assignments, comparisons,
arithmetic, and "other" leaf-ish nodes such as variables, numbers, calls and
strings).

A single uniform :class:`Node` class carries an ``op`` string, a tuple of
children, and an optional ``value`` payload (variable name, constant value,
call target ...).  This mirrors how decompiler ctrees are represented in
practice (one ``citem_t`` type with an ``op`` discriminator) and lets the
source AST, the decompiled AST, and Asteria's preprocessing share one
representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple


class Ops:
    """Canonical op names, grouped as in Table I."""

    # -- statements ---------------------------------------------------------
    IF = "if"
    BLOCK = "block"
    FOR = "for"
    WHILE = "while"
    SWITCH = "switch"
    RETURN = "return"
    GOTO = "goto"
    CONTINUE = "continue"
    BREAK = "break"

    # -- assignments ----------------------------------------------------------
    ASG = "asg"
    ASG_OR = "asg_or"
    ASG_XOR = "asg_xor"
    ASG_AND = "asg_and"
    ASG_ADD = "asg_add"
    ASG_SUB = "asg_sub"
    ASG_MUL = "asg_mul"
    ASG_DIV = "asg_div"

    # -- comparisons ----------------------------------------------------------
    EQ = "eq"
    NE = "ne"
    GT = "gt"
    LT = "lt"
    GE = "ge"
    LE = "le"

    # -- arithmetic -------------------------------------------------------------
    OR = "or"
    XOR = "xor"
    AND = "and"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    NOT = "not"
    POST_INC = "post_inc"
    POST_DEC = "post_dec"
    PRE_INC = "pre_inc"
    PRE_DEC = "pre_dec"

    # -- other ------------------------------------------------------------------
    INDEX = "index"
    VAR = "var"
    NUM = "num"
    CALL = "call"
    STR = "str"
    ASM = "asm"
    CAST = "cast"
    REF = "ref"
    DEREF = "deref"
    NEG = "neg"
    LAND = "land"
    LOR = "lor"
    LNOT = "lnot"


STATEMENT_OPS: Tuple[str, ...] = (
    Ops.IF,
    Ops.BLOCK,
    Ops.FOR,
    Ops.WHILE,
    Ops.SWITCH,
    Ops.RETURN,
    Ops.GOTO,
    Ops.CONTINUE,
    Ops.BREAK,
)

ASSIGNMENT_OPS: Tuple[str, ...] = (
    Ops.ASG,
    Ops.ASG_OR,
    Ops.ASG_XOR,
    Ops.ASG_AND,
    Ops.ASG_ADD,
    Ops.ASG_SUB,
    Ops.ASG_MUL,
    Ops.ASG_DIV,
)

COMPARISON_OPS: Tuple[str, ...] = (Ops.EQ, Ops.NE, Ops.GT, Ops.LT, Ops.GE, Ops.LE)

ARITHMETIC_OPS: Tuple[str, ...] = (
    Ops.OR,
    Ops.XOR,
    Ops.AND,
    Ops.ADD,
    Ops.SUB,
    Ops.MUL,
    Ops.DIV,
    Ops.NOT,
    Ops.POST_INC,
    Ops.POST_DEC,
    Ops.PRE_INC,
    Ops.PRE_DEC,
)

OTHER_OPS: Tuple[str, ...] = (
    Ops.INDEX,
    Ops.VAR,
    Ops.NUM,
    Ops.CALL,
    Ops.STR,
    Ops.ASM,
    Ops.CAST,
    Ops.REF,
    Ops.DEREF,
    Ops.NEG,
    Ops.LAND,
    Ops.LOR,
    Ops.LNOT,
)

EXPRESSION_OPS: Tuple[str, ...] = (
    ASSIGNMENT_OPS + COMPARISON_OPS + ARITHMETIC_OPS + OTHER_OPS
)

ALL_OPS: Tuple[str, ...] = STATEMENT_OPS + EXPRESSION_OPS

# Comparison negation / swap tables, used by the compiler (branch inversion)
# and the decompiler (reconstructing conditions from inverted branches).
NEGATED_COMPARISON = {
    Ops.EQ: Ops.NE,
    Ops.NE: Ops.EQ,
    Ops.GT: Ops.LE,
    Ops.LE: Ops.GT,
    Ops.LT: Ops.GE,
    Ops.GE: Ops.LT,
}

SWAPPED_COMPARISON = {
    Ops.EQ: Ops.EQ,
    Ops.NE: Ops.NE,
    Ops.GT: Ops.LT,
    Ops.LT: Ops.GT,
    Ops.GE: Ops.LE,
    Ops.LE: Ops.GE,
}


@dataclass(frozen=True)
class Node:
    """A single AST node.

    Attributes:
        op: the node kind, one of :data:`ALL_OPS`.
        children: child nodes, in source order.
        value: payload for leaf-ish nodes -- the variable name for ``var``,
            the integer for ``num``, the literal for ``str``, the callee name
            for ``call`` (whose children are the arguments).
    """

    op: str
    children: Tuple["Node", ...] = ()
    value: Optional[object] = None

    def __post_init__(self):
        if self.op not in _OP_SET:
            raise ValueError(f"unknown op: {self.op!r}")
        if not isinstance(self.children, tuple):
            object.__setattr__(self, "children", tuple(self.children))

    # -- structure ----------------------------------------------------------

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this subtree."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def size(self) -> int:
        """Number of nodes in this subtree."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Height of this subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def is_statement(self) -> bool:
        return self.op in STATEMENT_OPS

    def is_expression(self) -> bool:
        return self.op in EXPRESSION_OPS

    def is_leaf(self) -> bool:
        return not self.children

    def count_ops(self) -> dict:
        """Histogram of op kinds in this subtree."""
        counts: dict = {}
        for node in self.walk():
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def replace_children(self, children: Sequence["Node"]) -> "Node":
        """Return a copy of this node with new children."""
        return Node(self.op, tuple(children), self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.value is not None and not self.children:
            return f"Node({self.op}={self.value!r})"
        if self.value is not None:
            return f"Node({self.op}={self.value!r}, {len(self.children)} children)"
        return f"Node({self.op}, {len(self.children)} children)"


_OP_SET = frozenset(ALL_OPS)


# -- convenience constructors -----------------------------------------------


def var(name: str) -> Node:
    return Node(Ops.VAR, value=name)


def num(value: int) -> Node:
    return Node(Ops.NUM, value=int(value))


def string(text: str) -> Node:
    return Node(Ops.STR, value=text)


def call(target: str, *args: Node) -> Node:
    return Node(Ops.CALL, tuple(args), value=target)


def asg(lhs: Node, rhs: Node) -> Node:
    return Node(Ops.ASG, (lhs, rhs))


def block(*stmts: Node) -> Node:
    return Node(Ops.BLOCK, tuple(stmts))


def if_(cond: Node, then: Node, els: Optional[Node] = None) -> Node:
    children = (cond, then) if els is None else (cond, then, els)
    return Node(Ops.IF, children)


def while_(cond: Node, body: Node) -> Node:
    return Node(Ops.WHILE, (cond, body))


def for_(init: Node, cond: Node, step: Node, body: Node) -> Node:
    return Node(Ops.FOR, (init, cond, step, body))


def ret(value: Optional[Node] = None) -> Node:
    return Node(Ops.RETURN, () if value is None else (value,))


def binop(op: str, lhs: Node, rhs: Node) -> Node:
    return Node(op, (lhs, rhs))


@dataclass
class FunctionDef:
    """A function definition: signature plus body.

    Attributes:
        name: function name (symbol).
        params: parameter names, in order.
        local_vars: declared local variable names.
        body: a ``block`` node.
        return_type: textual return type ("int" or "void").
    """

    name: str
    params: Tuple[str, ...]
    local_vars: Tuple[str, ...]
    body: Node
    return_type: str = "int"

    def ast(self) -> Node:
        """The function body AST (the unit Asteria operates on)."""
        return self.body

    def callee_names(self) -> Tuple[str, ...]:
        """Names of functions called (statically) in the body, with repeats."""
        return tuple(
            node.value for node in self.body.walk() if node.op == Ops.CALL
        )

    def variables(self) -> Tuple[str, ...]:
        return tuple(self.params) + tuple(self.local_vars)


@dataclass
class Package:
    """A software package: a named collection of functions.

    Mirrors one open-source project in the paper's buildroot corpus.
    """

    name: str
    functions: list = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function {name!r} in package {self.name!r}")

    def function_names(self) -> Tuple[str, ...]:
        return tuple(fn.name for fn in self.functions)

    def __len__(self) -> int:
        return len(self.functions)
