"""A miniature C-like language.

This package is the source-level substrate of the reproduction: the paper
cross-compiles 260 open-source packages; we instead generate synthetic
packages in this language and compile them for four architectures with
:mod:`repro.compiler`.  The node taxonomy mirrors Table I of the paper, so
decompiled ASTs and source ASTs share one vocabulary.
"""

from repro.lang.nodes import (
    Node,
    FunctionDef,
    Package,
    Ops,
    STATEMENT_OPS,
    EXPRESSION_OPS,
    ALL_OPS,
)
from repro.lang.types import IntType, PtrType, VoidType, ArrayType, FunctionType
from repro.lang.generator import GeneratorConfig, ProgramGenerator
from repro.lang.printer import to_source

__all__ = [
    "Node",
    "FunctionDef",
    "Package",
    "Ops",
    "STATEMENT_OPS",
    "EXPRESSION_OPS",
    "ALL_OPS",
    "IntType",
    "PtrType",
    "VoidType",
    "ArrayType",
    "FunctionType",
    "GeneratorConfig",
    "ProgramGenerator",
    "to_source",
]
