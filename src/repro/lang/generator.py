"""Random program generator.

The paper's training corpus is 260 real open-source packages cross-compiled
by buildroot.  We do not have those sources (or a network), so this module
generates synthetic packages: each package is a set of functions with
structured bodies (nested conditionals, loops, arithmetic, intra-package
calls).  Two properties matter for the reproduction and are preserved:

* **semantic identity across architectures** -- one generated function is
  compiled for all four ISAs, giving ground-truth homologous pairs;
* **diversity between functions** -- distinct functions have distinct
  shapes, so non-homologous pairs are genuinely dissimilar.

Generation is fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.lang import nodes as N
from repro.lang.nodes import FunctionDef, Node, Ops, Package
from repro.utils.rng import RNG

# Leaf library functions every package may call, as (name, arity) pairs.
# These model libc-style externals; the compiler pipeline appends tiny
# deterministic bodies for them so call targets always resolve.
LIBRARY_FUNCTIONS = (
    ("lib_log", 1),
    ("lib_checksum", 2),
    ("lib_read", 1),
    ("lib_write", 2),
    ("lib_alloc", 1),
    ("lib_free", 1),
)

_STRING_POOL = (
    "error",
    "ok",
    "%s:%d",
    "out of memory",
    "invalid argument",
    "timeout",
)


@dataclass
class GeneratorConfig:
    """Knobs controlling the shape of generated programs."""

    functions_per_package: int = 12
    min_statements: int = 3
    max_statements: int = 8
    max_depth: int = 3
    max_expr_depth: int = 3
    max_params: int = 3
    max_locals: int = 4
    call_probability: float = 0.35
    loop_probability: float = 0.30
    if_probability: float = 0.45
    string_probability: float = 0.15
    include_library_calls: bool = True

    def __post_init__(self):
        if self.min_statements < 1 or self.max_statements < self.min_statements:
            raise ValueError("invalid statement count bounds")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")


@dataclass
class _FunctionContext:
    """Mutable state while generating one function body."""

    variables: List[str]
    callables: List[tuple]  # (name, arity)
    in_loop: bool = False
    temp_counter: int = 0

    loop_locals: List[str] = field(default_factory=list)

    def fresh_local(self) -> str:
        """A loop-private counter variable.

        Deliberately NOT added to ``variables``: if other statements could
        target a counter the loop might not terminate, and if statements
        could read one created inside a conditional arm it might be used
        unassigned.
        """
        self.temp_counter += 1
        name = f"t{self.temp_counter}"
        self.loop_locals.append(name)
        return name


class ProgramGenerator:
    """Generates :class:`~repro.lang.nodes.Package` objects.

    Example:
        >>> gen = ProgramGenerator(seed=7)
        >>> pkg = gen.generate_package("zlib0")
        >>> len(pkg) > 0
        True
    """

    def __init__(self, seed: int, config: Optional[GeneratorConfig] = None):
        self.rng = RNG(seed)
        self.config = config or GeneratorConfig()

    # -- public API ----------------------------------------------------------

    def generate_package(self, name: str) -> Package:
        """Generate one package with ``functions_per_package`` functions.

        Functions earlier in the list may be called by later ones, yielding a
        DAG-shaped intra-package call graph (no recursion), plus optional
        calls to the library leaf functions.
        """
        rng = self.rng.child("package", name)
        package = Package(name=name)
        callables: List[tuple] = (
            list(LIBRARY_FUNCTIONS) if self.config.include_library_calls else []
        )
        for index in range(self.config.functions_per_package):
            fn_name = f"{name}_fn{index}"
            fn = self._generate_function(rng.child("fn", index), fn_name, callables)
            package.functions.append(fn)
            callables.append((fn_name, len(fn.params)))
        return package

    def generate_function(
        self, name: str, callables: Optional[List[tuple]] = None
    ) -> FunctionDef:
        """Generate a single standalone function.

        ``callables`` is a list of ``(name, arity)`` pairs the function may
        call; defaults to the library leaf functions.
        """
        pool = list(callables) if callables else list(LIBRARY_FUNCTIONS)
        return self._generate_function(self.rng.child("lone", name), name, pool)

    # -- internals -----------------------------------------------------------

    def _generate_function(
        self, rng: RNG, name: str, callables: List[tuple]
    ) -> FunctionDef:
        cfg = self.config
        n_params = rng.randint(1, cfg.max_params)
        n_locals = rng.randint(1, cfg.max_locals)
        params = tuple(f"a{i}" for i in range(n_params))
        local_vars = [f"v{i}" for i in range(n_locals)]
        ctx = _FunctionContext(
            variables=list(params) + local_vars,
            callables=list(callables),
        )

        stmts: List[Node] = []
        # Initialise locals so every variable is defined before use.
        for local in local_vars:
            stmts.append(N.asg(N.var(local), self._init_expr(rng, params)))
        n_stmts = rng.randint(cfg.min_statements, cfg.max_statements)
        for i in range(n_stmts):
            stmts.append(self._statement(rng.child("stmt", i), ctx, depth=1))
        stmts.append(N.ret(self._leaf_expr(rng.child("retval"), ctx)))

        return FunctionDef(
            name=name,
            params=params,
            local_vars=tuple(ctx.variables[len(params):]) + tuple(ctx.loop_locals),
            body=N.block(*stmts),
            return_type="int",
        )

    def _init_expr(self, rng: RNG, params) -> Node:
        if rng.random() < 0.5:
            return N.num(rng.randint(0, 255))
        return N.var(rng.choice(params))

    def _statement(self, rng: RNG, ctx: _FunctionContext, depth: int) -> Node:
        cfg = self.config
        roll = rng.random()
        nested_allowed = depth < cfg.max_depth
        if nested_allowed and roll < cfg.if_probability:
            return self._if_statement(rng, ctx, depth)
        if nested_allowed and roll < cfg.if_probability + cfg.loop_probability:
            return self._loop_statement(rng, ctx, depth)
        return self._simple_statement(rng, ctx)

    def _if_statement(self, rng: RNG, ctx: _FunctionContext, depth: int) -> Node:
        cond = self._comparison(rng.child("cond"), ctx)
        then_body = self._small_block(rng.child("then"), ctx, depth + 1)
        if rng.random() < 0.5:
            else_body = self._small_block(rng.child("else"), ctx, depth + 1)
            return N.if_(cond, then_body, else_body)
        return N.if_(cond, then_body)

    def _loop_statement(self, rng: RNG, ctx: _FunctionContext, depth: int) -> Node:
        was_in_loop = ctx.in_loop
        ctx.in_loop = True
        try:
            bound = rng.randint(2, 16)
            # Generate the body BEFORE allocating the counter so body
            # statements can never assign the counter (which would make the
            # loop non-terminating).
            body_stmts = [
                self._simple_statement(rng.child("lbody", i), ctx)
                for i in range(rng.randint(1, 2))
            ]
            if rng.random() < 0.15:
                guard = self._comparison(rng.child("brk"), ctx)
                body_stmts.append(N.if_(guard, N.block(Node(Ops.BREAK))))
            counter = ctx.fresh_local()
            if rng.random() < 0.5:
                # for (counter = 0; counter < bound; counter = counter + 1)
                init = N.asg(N.var(counter), N.num(0))
                cond = N.binop(Ops.LT, N.var(counter), N.num(bound))
                step = N.asg(
                    N.var(counter), N.binop(Ops.ADD, N.var(counter), N.num(1))
                )
                return N.for_(init, cond, step, N.block(*body_stmts))
            # while (counter < bound) { ...; counter = counter + 1; }
            cond = N.binop(Ops.LT, N.var(counter), N.num(bound))
            body_stmts.append(
                N.asg(N.var(counter), N.binop(Ops.ADD, N.var(counter), N.num(1)))
            )
            loop = N.while_(cond, N.block(*body_stmts))
            init = N.asg(N.var(counter), N.num(0))
            return N.block(init, loop)
        finally:
            ctx.in_loop = was_in_loop

    def _small_block(self, rng: RNG, ctx: _FunctionContext, depth: int) -> Node:
        n = rng.randint(1, 2)
        stmts = [self._statement(rng.child(i), ctx, depth) for i in range(n)]
        return N.block(*stmts)

    def _simple_statement(self, rng: RNG, ctx: _FunctionContext) -> Node:
        cfg = self.config
        target = N.var(rng.choice(ctx.variables))
        if ctx.callables and rng.random() < cfg.call_probability:
            return N.asg(target, self._call_expr(rng, ctx))
        if rng.random() < 0.2:
            op = rng.choice(
                (Ops.ASG_ADD, Ops.ASG_SUB, Ops.ASG_XOR, Ops.ASG_AND, Ops.ASG_OR)
            )
            return N.binop(op, target, self._leaf_expr(rng.child("rhs"), ctx))
        return N.asg(target, self._expression(rng.child("rhs"), ctx, depth=1))

    def _call_expr(self, rng: RNG, ctx: _FunctionContext) -> Node:
        callee, arity = rng.choice(ctx.callables)
        args = []
        for i in range(arity):
            if rng.random() < self.config.string_probability:
                args.append(N.string(rng.choice(_STRING_POOL)))
            else:
                args.append(self._leaf_expr(rng.child("arg", i), ctx))
        return N.call(callee, *args)

    def _comparison(self, rng: RNG, ctx: _FunctionContext) -> Node:
        op = rng.choice((Ops.EQ, Ops.NE, Ops.GT, Ops.LT, Ops.GE, Ops.LE))
        lhs = N.var(rng.choice(ctx.variables))
        rhs = (
            N.num(rng.randint(0, 64))
            if rng.random() < 0.6
            else N.var(rng.choice(ctx.variables))
        )
        return N.binop(op, lhs, rhs)

    def _expression(self, rng: RNG, ctx: _FunctionContext, depth: int) -> Node:
        if depth >= self.config.max_expr_depth or rng.random() < 0.35:
            return self._leaf_expr(rng, ctx)
        op = rng.choice(
            (Ops.ADD, Ops.SUB, Ops.MUL, Ops.AND, Ops.OR, Ops.XOR, Ops.DIV)
        )
        lhs = self._expression(rng.child("l"), ctx, depth + 1)
        rhs = self._expression(rng.child("r"), ctx, depth + 1)
        if op == Ops.DIV and rhs.op == Ops.NUM and rhs.value == 0:
            rhs = N.num(1)
        if op == Ops.DIV and rhs.op != Ops.NUM:
            # Keep generated programs free of potential division by zero.
            rhs = N.num(rng.randint(1, 16))
        if rng.random() < 0.1:
            return Node(Ops.NEG, (N.binop(op, lhs, rhs),))
        return N.binop(op, lhs, rhs)

    def _leaf_expr(self, rng: RNG, ctx: _FunctionContext) -> Node:
        if rng.random() < 0.5:
            return N.var(rng.choice(ctx.variables))
        return N.num(rng.randint(0, 1023))


def generate_corpus(
    seed: int,
    n_packages: int,
    config: Optional[GeneratorConfig] = None,
    name_prefix: str = "pkg",
) -> List[Package]:
    """Generate ``n_packages`` packages deterministically."""
    gen = ProgramGenerator(seed=seed, config=config)
    return [gen.generate_package(f"{name_prefix}{i}") for i in range(n_packages)]
