"""C-like pretty printer for ASTs.

Used by examples and debugging output; the printer is intentionally close to
the decompiler pseudocode shown in the paper's Figure 1.
"""

from __future__ import annotations

from repro.lang.nodes import FunctionDef, Node, Ops

_BINOP_SYMBOLS = {
    Ops.ASG: "=",
    Ops.ASG_OR: "|=",
    Ops.ASG_XOR: "^=",
    Ops.ASG_AND: "&=",
    Ops.ASG_ADD: "+=",
    Ops.ASG_SUB: "-=",
    Ops.ASG_MUL: "*=",
    Ops.ASG_DIV: "/=",
    Ops.EQ: "==",
    Ops.NE: "!=",
    Ops.GT: ">",
    Ops.LT: "<",
    Ops.GE: ">=",
    Ops.LE: "<=",
    Ops.OR: "|",
    Ops.XOR: "^",
    Ops.AND: "&",
    Ops.ADD: "+",
    Ops.SUB: "-",
    Ops.MUL: "*",
    Ops.DIV: "/",
    Ops.LAND: "&&",
    Ops.LOR: "||",
}

_UNARY_SYMBOLS = {
    Ops.NOT: "~",
    Ops.NEG: "-",
    Ops.LNOT: "!",
    Ops.REF: "&",
    Ops.DEREF: "*",
}


def expr_to_source(node: Node) -> str:
    """Render an expression node as C-like source text."""
    if node.op == Ops.VAR:
        return str(node.value)
    if node.op == Ops.NUM:
        return str(node.value)
    if node.op == Ops.STR:
        return f'"{node.value}"'
    if node.op == Ops.CALL:
        args = ", ".join(expr_to_source(a) for a in node.children)
        return f"{node.value}({args})"
    if node.op == Ops.INDEX:
        base, index = node.children
        return f"{expr_to_source(base)}[{expr_to_source(index)}]"
    if node.op == Ops.CAST:
        return f"({node.value}){expr_to_source(node.children[0])}"
    if node.op in _UNARY_SYMBOLS:
        return f"{_UNARY_SYMBOLS[node.op]}({expr_to_source(node.children[0])})"
    if node.op in (Ops.POST_INC, Ops.POST_DEC):
        suffix = "++" if node.op == Ops.POST_INC else "--"
        return f"{expr_to_source(node.children[0])}{suffix}"
    if node.op in (Ops.PRE_INC, Ops.PRE_DEC):
        prefix = "++" if node.op == Ops.PRE_INC else "--"
        return f"{prefix}{expr_to_source(node.children[0])}"
    if node.op in _BINOP_SYMBOLS and len(node.children) == 2:
        lhs, rhs = node.children
        symbol = _BINOP_SYMBOLS[node.op]
        left = expr_to_source(lhs)
        right = expr_to_source(rhs)
        if node.op.startswith("asg"):
            return f"{left} {symbol} {right}"
        return f"({left} {symbol} {right})"
    raise ValueError(f"cannot render expression op {node.op!r}")


def _stmt_lines(node: Node, indent: int) -> list:
    pad = "    " * indent
    if node.op == Ops.BLOCK:
        lines = []
        for child in node.children:
            lines.extend(_stmt_lines(child, indent))
        return lines
    if node.op == Ops.IF:
        cond = expr_to_source(node.children[0])
        lines = [f"{pad}if ({cond}) {{"]
        lines.extend(_stmt_lines(node.children[1], indent + 1))
        if len(node.children) == 3:
            lines.append(f"{pad}}} else {{")
            lines.extend(_stmt_lines(node.children[2], indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if node.op == Ops.WHILE:
        cond = expr_to_source(node.children[0])
        lines = [f"{pad}while ({cond}) {{"]
        lines.extend(_stmt_lines(node.children[1], indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if node.op == Ops.FOR:
        init, cond, step, body = node.children
        header = (
            f"{pad}for ({expr_to_source(init)}; "
            f"{expr_to_source(cond)}; {expr_to_source(step)}) {{"
        )
        lines = [header]
        lines.extend(_stmt_lines(body, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if node.op == Ops.RETURN:
        if node.children:
            return [f"{pad}return {expr_to_source(node.children[0])};"]
        return [f"{pad}return;"]
    if node.op == Ops.BREAK:
        return [f"{pad}break;"]
    if node.op == Ops.CONTINUE:
        return [f"{pad}continue;"]
    if node.op == Ops.GOTO:
        return [f"{pad}goto {node.value};"]
    # expression statement
    return [f"{pad}{expr_to_source(node)};"]


def to_source(fn: FunctionDef) -> str:
    """Render a full function definition as C-like source."""
    params = ", ".join(f"int {p}" for p in fn.params)
    lines = [f"{fn.return_type} {fn.name}({params})", "{"]
    for local in fn.local_vars:
        lines.append(f"    int {local};")
    lines.extend(_stmt_lines(fn.body, 1))
    lines.append("}")
    return "\n".join(lines)
