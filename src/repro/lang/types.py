"""A deliberately small type system for the mini language.

The compiler only distinguishes value widths and pointer-ness; that is all
the four target ISAs need for instruction selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class IntType:
    """A signed integer of ``bits`` width (8/16/32/64)."""

    bits: int = 32

    def __post_init__(self):
        if self.bits not in (8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: {self.bits}")

    def __str__(self) -> str:
        return f"i{self.bits}"


@dataclass(frozen=True)
class PtrType:
    """A pointer to some pointee type."""

    pointee: object = IntType(32)

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class VoidType:
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class ArrayType:
    element: object
    length: int

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class FunctionType:
    params: Tuple[object, ...]
    returns: object

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"{self.returns}({params})"
